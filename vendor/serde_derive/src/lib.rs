//! Vendored `#[derive(Serialize, Deserialize)]` macros for the offline build.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`):
//! the item is parsed into a small shape model (named/tuple/unit structs,
//! enums with unit/newtype/tuple/struct variants) and the impls are emitted
//! as source strings. Supported field attributes:
//! `#[serde(skip)]`, `#[serde(skip, default = "path")]`,
//! `#[serde(default)]` / `#[serde(default = "path")]` on serialized fields
//! (a missing field deserializes to the default instead of erroring), and
//! `#[serde(skip_serializing_if = "path")]` (the field is omitted from the
//! serialized object when the predicate returns true — pair it with
//! `default` so the omitted form round-trips).
//!
//! Generics are intentionally unsupported — nothing in this workspace
//! derives serde on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default)]
struct FieldAttrs {
    skip: bool,
    /// Bare `default`: deserialize a missing field via `Default::default()`.
    default: bool,
    /// `default = "path"`: deserialize a missing (or skipped) field via `path()`.
    default_fn: Option<String>,
    /// `skip_serializing_if = "path"`: omit the field when `path(&value)`.
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Attributes collected before an item/field/variant; only `#[serde(...)]`
/// contents are retained.
fn take_attrs(tokens: &[TokenTree], mut idx: usize) -> (usize, FieldAttrs) {
    let mut attrs = FieldAttrs::default();
    while idx < tokens.len() {
        match &tokens[idx] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(idx + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    parse_serde_args(args, &mut attrs);
                                }
                            }
                        }
                        idx += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (idx, attrs)
}

fn parse_serde_args(args: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    // `word = "literal"` at position i+1/i+2, returning the unquoted literal.
    let string_arg = |i: usize| -> Option<String> {
        match (toks.get(i + 1), toks.get(i + 2)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit))) if p.as_char() == '=' => {
                Some(lit.to_string().trim_matches('"').to_string())
            }
            _ => None,
        }
    };
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "skip" {
                    attrs.skip = true;
                    i += 1;
                } else if word == "default" {
                    // `default` or `default = "path"`.
                    if let Some(path) = string_arg(i) {
                        attrs.default_fn = Some(path);
                        i += 3;
                    } else {
                        attrs.default = true;
                        i += 1;
                    }
                } else if word == "skip_serializing_if" {
                    let path = string_arg(i).unwrap_or_else(|| {
                        panic!("vendored serde_derive: `skip_serializing_if` needs = \"path\"")
                    });
                    attrs.skip_serializing_if = Some(path);
                    i += 3;
                } else {
                    panic!("vendored serde_derive: unsupported serde attribute `{word}`");
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("vendored serde_derive: unexpected token in serde attribute: {other}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], mut idx: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(idx) {
        if id.to_string() == "pub" {
            idx += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(idx) {
                if g.delimiter() == Delimiter::Parenthesis {
                    idx += 1;
                }
            }
        }
    }
    idx
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut idx, _) = take_attrs(&tokens, 0);
    idx = skip_visibility(&tokens, idx);
    let kind = match &tokens[idx] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected `struct` or `enum`, got {other}"),
    };
    idx += 1;
    let name = match &tokens[idx] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("vendored serde_derive: expected item name, got {other}"),
    };
    idx += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(idx) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic types are not supported ({name})");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("vendored serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("vendored serde_derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("vendored serde_derive: expected struct/enum, got `{other}`"),
    };
    Item { name, shape }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let (next, attrs) = take_attrs(&tokens, idx);
        idx = skip_visibility(&tokens, next);
        let name = match &tokens[idx] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("vendored serde_derive: expected field name, got {other}"),
        };
        idx += 1;
        match &tokens[idx] {
            TokenTree::Punct(p) if p.as_char() == ':' => idx += 1,
            other => {
                panic!("vendored serde_derive: expected `:` after field `{name}`, got {other}")
            }
        }
        idx = skip_type(&tokens, idx);
        // Optional trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(idx) {
            if p.as_char() == ',' {
                idx += 1;
            }
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// Advance past one type, stopping at a top-level `,` (angle brackets nest).
fn skip_type(tokens: &[TokenTree], mut idx: usize) -> usize {
    let mut angle_depth = 0i32;
    while idx < tokens.len() {
        match &tokens[idx] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        idx += 1;
    }
    idx
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut idx = 0;
    while idx < tokens.len() {
        let (next, _) = take_attrs(&tokens, idx);
        idx = skip_visibility(&tokens, next);
        idx = skip_type(&tokens, idx);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(idx) {
            if p.as_char() == ',' {
                idx += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        let (next, _) = take_attrs(&tokens, idx);
        idx = next;
        let name = match &tokens[idx] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("vendored serde_derive: expected variant name, got {other}"),
        };
        idx += 1;
        let kind = match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                idx += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                idx += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible discriminant and the separating comma.
        while idx < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[idx] {
                if p.as_char() == ',' {
                    idx += 1;
                    break;
                }
            }
            idx += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s =
                String::from("let mut fields: Vec<(String, serde::value::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.attrs.skip) {
                let push = format!(
                    "fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                );
                match &f.attrs.skip_serializing_if {
                    Some(path) => {
                        s.push_str(&format!("if !{path}(&self.{n}) {{ {push} }}\n", n = f.name))
                    }
                    None => s.push_str(&push),
                }
            }
            s.push_str("serde::value::Value::Object(fields)");
            s
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::value::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => serde::value::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => serde::value::Value::Object(vec![(\"{vn}\".to_string(), serde::value::Value::Array(vec![{v}]))]),\n",
                            b = binds.join(", "),
                            v = vals.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut fields: Vec<(String, serde::value::Value)> = Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.attrs.skip) {
                            let push = format!(
                                "fields.push((\"{n}\".to_string(), serde::Serialize::to_value({n})));\n",
                                n = f.name
                            );
                            match &f.attrs.skip_serializing_if {
                                Some(path) => inner.push_str(&format!(
                                    "if !{path}({n}) {{ {push} }}\n",
                                    n = f.name
                                )),
                                None => inner.push_str(&push),
                            }
                        }
                        for f in fields.iter().filter(|f| f.attrs.skip) {
                            inner.push_str(&format!("let _ = {};\n", f.name));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => {{ {inner} serde::value::Value::Object(vec![(\"{vn}\".to_string(), serde::value::Value::Object(fields))]) }},\n",
                            b = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_expr(owner: &str, f: &Field) -> String {
    let default = match &f.attrs.default_fn {
        Some(path) => Some(format!("{path}()")),
        None if f.attrs.skip || f.attrs.default => Some("Default::default()".to_string()),
        None => None,
    };
    if f.attrs.skip {
        return format!(
            "{n}: {d},",
            n = f.name,
            d = default.expect("skip always has a default")
        );
    }
    let missing = match default {
        Some(d) => d,
        None => format!(
            "return Err(serde::value::Error::custom(\"{owner}: missing field `{n}`\"))",
            n = f.name
        ),
    };
    format!(
        "{n}: match obj.iter().find(|kv| kv.0 == \"{n}\") {{\n\
         Some(kv) => serde::Deserialize::from_value(&kv.1)?,\n\
         None => {missing},\n\
         }},",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let assigns: Vec<String> = fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| serde::value::Error::custom(\"{name}: expected object\"))?;\n\
                 Ok({name} {{\n{}\n}})",
                assigns.join("\n")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| serde::value::Error::custom(\"{name}: expected array\"))?;\n\
                 if items.len() != {n} {{ return Err(serde::value::Error::custom(\"{name}: wrong tuple arity\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => payload_arms.push_str(&format!(
                        "\"{vn}\" => {{\n\
                         let items = payload.as_array().ok_or_else(|| serde::value::Error::custom(\"{name}::{vn}: expected array\"))?;\n\
                         if items.len() != {n} {{ return Err(serde::value::Error::custom(\"{name}::{vn}: wrong arity\")); }}\n\
                         Ok({name}::{vn}({}))\n}}\n",
                        (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                    VariantKind::Struct(fields) => {
                        let assigns: Vec<String> =
                            fields.iter().map(|f| field_expr(name, f)).collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let obj = payload.as_object().ok_or_else(|| serde::value::Error::custom(\"{name}::{vn}: expected object\"))?;\n\
                             Ok({name}::{vn} {{\n{}\n}})\n}}\n",
                            assigns.join("\n")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 serde::value::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 _ => Err(serde::value::Error::custom(\"{name}: unknown variant\")),\n}},\n\
                 serde::value::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (key, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match key.as_str() {{\n{payload_arms}\
                 _ => Err(serde::value::Error::custom(\"{name}: unknown variant\")),\n}}\n}},\n\
                 _ => Err(serde::value::Error::custom(\"{name}: expected string or single-key object\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::value::Value) -> std::result::Result<Self, serde::value::Error> {{\n{body}\n}}\n}}\n"
    )
}
