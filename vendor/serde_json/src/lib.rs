//! Vendored minimal `serde_json`: renders the vendored [`serde`] value model
//! to JSON text and parses it back.
//!
//! Numbers round-trip exactly: integers are written without a decimal point
//! and floats use Rust's shortest-roundtrip formatting, so
//! `f32 -> f64 -> text -> f64 -> f32` recovers the original bits.

pub use serde::value::{Error, Value};
use serde::{Deserialize, Serialize};

/// A `Result` alias matching real serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to its JSON text.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the real
/// serde_json API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to JSON bytes.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Convert any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] when the tree does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Parse a typed value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse(s)?)
}

/// Parse a typed value from JSON bytes.
///
/// # Errors
///
/// Same as [`from_str`], plus invalid UTF-8.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid utf-8"))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep a marker so the parser knows this was a float even for
                // integral values like `2.0` (Rust already prints `2` as `2`,
                // so add `.0` when no fractional marker survived).
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; `null` parses back to NaN.
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first malformed construct.
pub fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<()> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::custom(format!(
            "expected `{}` at byte {}",
            byte as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom("expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom("expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid keyword at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| Error::custom("empty char"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("invalid number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid float `{text}`")))
    } else if text.starts_with('-') {
        match text.parse::<i64>() {
            Ok(n) => Ok(Value::Int(n)),
            Err(_) => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid integer `{text}`"))),
        }
    } else {
        match text.parse::<u64>() {
            Ok(n) => Ok(Value::UInt(n)),
            Err(_) => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid integer `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_string())
        );
    }

    #[test]
    fn roundtrip_float_bits() {
        for &x in &[0.1f32, 1.0e-7, -3.25, f32::MIN_POSITIVE, 123_456.79] {
            let mut s = String::new();
            write_value(&Value::Float(f64::from(x)), &mut s);
            let back = match parse(&s).unwrap() {
                Value::Float(f) => f,
                Value::Int(n) => n as f64,
                Value::UInt(n) => n as f64,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(back as f32, x, "via {s}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Null]),
            ),
            ("b".to_string(), Value::String("x\"y".to_string())),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        assert_eq!(parse(&s).unwrap(), v);
    }
}
