//! Vendored, offline-friendly stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses: `SmallRng` /
//! `StdRng` seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] over half-open ranges, the [`distributions::Uniform`]
//! inclusive distribution and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xorshift64* seeded through splitmix64 — not the same
//! stream as upstream rand's `SmallRng`, which is fine: every experiment in
//! the workspace only relies on determinism for a fixed seed, never on a
//! particular stream.

use std::ops::Range;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Splitmix64: used to expand seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! xorshift_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            state: u64,
        }

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                let mut s = seed;
                let mut state = splitmix64(&mut s);
                if state == 0 {
                    state = 0xDEAD_BEEF_CAFE_F00D;
                }
                Self { state }
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                // xorshift64*
                let mut x = self.state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.state = x;
                x.wrapping_mul(0x2545_F491_4F6C_DD1D)
            }
        }
    };
}

/// Named RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    xorshift_rng! {
        /// A small, fast, deterministic generator (API analogue of
        /// `rand::rngs::SmallRng`).
        SmallRng
    }
    xorshift_rng! {
        /// The "standard" generator (API analogue of `rand::rngs::StdRng`).
        StdRng
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: distributions::SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_half_open(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Distributions and uniform sampling.
pub mod distributions {
    use super::{uniform_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform `[0,1)` floats, uniform integers,
    /// fair bools.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            uniform_f64(rng)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Uniform sample from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high - low) as u64;
                    low + (rng.next_u64() % span) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high - low) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    low + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    impl_uniform_int!(usize, u64, u32);

    impl SampleUniform for f32 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
            assert!(low < high, "gen_range: empty range");
            // Generate the fraction with f32 mantissa precision directly:
            // casting a wider f64 fraction down could round up to exactly 1.0
            // and violate the half-open contract.
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            low + u * (high - low)
        }
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
            assert!(low <= high, "gen_range: empty range");
            // 24-bit grid over the closed interval.
            let steps = (1u64 << 24) as f32;
            let u = (rng.next_u64() >> 40) as f32 / (steps - 1.0);
            low + u * (high - low)
        }
    }

    impl SampleUniform for f64 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
            assert!(low < high, "gen_range: empty range");
            low + uniform_f64(rng) * (high - low)
        }
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
            assert!(low <= high, "gen_range: empty range");
            // 53-bit grid over the closed interval.
            let steps = (1u64 << 53) as f64;
            let u = (rng.next_u64() >> 11) as f64 / (steps - 1.0);
            low + u * (high - low)
        }
    }

    /// Uniform distribution over a fixed interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T: SampleUniform> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Self {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            Self {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                T::sample_inclusive(rng, self.low, self.high)
            } else {
                T::sample_half_open(rng, self.low, self.high)
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub use distributions::Distribution;

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&g));
        }
    }

    #[test]
    fn uniform_inclusive_stays_in_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dist = Uniform::new_inclusive(-0.5f32, 0.5);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
