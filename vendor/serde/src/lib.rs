//! Vendored, offline-friendly stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the workspace vendors the *minimal* subset of serde it
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, driven through a JSON-shaped [`value::Value`] data model that
//! `serde_json` (also vendored) renders to and parses from text.
//!
//! The public surface intentionally mirrors real serde's import paths
//! (`use serde::{Deserialize, Serialize}`) so that swapping the real crates
//! back in later is a one-line manifest change.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Error, Value};

/// Types that can render themselves into the JSON-shaped [`Value`] model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}
impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_i64()
            .ok_or_else(|| Error::custom("expected integer for i64"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_i64()
            .ok_or_else(|| Error::custom("expected integer for isize"))?;
        isize::try_from(n).map_err(|_| Error::custom("integer out of range for isize"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom(concat!("expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}
impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
            .ok_or_else(|| Error::custom("expected unsigned integer for u64"))
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_u64()
            .ok_or_else(|| Error::custom("expected unsigned integer for usize"))?;
        usize::try_from(n).map_err(|_| Error::custom("integer out of range for usize"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()
            .ok_or_else(|| Error::custom("expected number for f32"))? as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom("expected number for f64"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}
impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(std::path::PathBuf::from(s)),
            _ => Err(Error::custom("expected string for PathBuf")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element array for tuple")),
        }
    }
}

/// Map keys rendered as JSON object keys (serde_json stringifies integers).
pub trait MapKey: Sized + Ord {
    /// The JSON object key for this map key.
    fn to_key(&self) -> String;
    /// Parse the map key back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom("invalid integer map key"))
            }
        }
    )*};
}
impl_map_key_int!(usize, u64, u32, i64, i32);

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object for map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
