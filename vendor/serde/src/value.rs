//! The JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` crates, plus the error type both report through.

use std::fmt;

/// A JSON-shaped dynamic value.
///
/// Objects preserve insertion order (like `serde_json` with `preserve_order`);
/// equality is therefore order-sensitive, which is fine because both sides of
/// every comparison in this workspace are produced by the same derive.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as an `i64`, if it is an integer that fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer that fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.9e19 => Some(*f as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an ordered object, if it is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying a free-form message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}
