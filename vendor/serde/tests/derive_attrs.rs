//! Behavior of the vendored derive's field attributes: `default` on
//! serialized fields and `skip_serializing_if`, the pair that lets a struct
//! grow a new field whose default form serializes byte-identically to the
//! old layout (the sweep manifest and campaign config rely on this for
//! journal backward compatibility).

use serde::value::Value;
use serde::{Deserialize, Serialize};

fn is_zero(v: &u32) -> bool {
    *v == 0
}

fn seven() -> u32 {
    7
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Versioned {
    name: String,
    #[serde(default, skip_serializing_if = "is_zero")]
    extra: u32,
    #[serde(default = "seven")]
    lucky: u32,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum Tagged {
    One {
        base: u32,
        #[serde(default, skip_serializing_if = "is_zero")]
        extra: u32,
    },
}

fn field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    v.as_object()
        .and_then(|o| o.iter().find(|kv| kv.0 == name))
        .map(|kv| &kv.1)
}

#[test]
fn default_field_is_omitted_and_restored() {
    let v = Versioned {
        name: "a".into(),
        extra: 0,
        lucky: 7,
    }
    .to_value();
    // The default-valued field vanishes from the serialized object, so the
    // bytes match a build that predates the field.
    assert!(field(&v, "extra").is_none());
    // `default = "path"` without skip_serializing_if still serializes.
    assert!(field(&v, "lucky").is_some());
    let back = Versioned::from_value(&v).expect("round trip");
    assert_eq!(back.extra, 0);
    assert_eq!(back.lucky, 7);
}

#[test]
fn non_default_field_round_trips() {
    let original = Versioned {
        name: "b".into(),
        extra: 3,
        lucky: 9,
    };
    let v = original.to_value();
    assert!(field(&v, "extra").is_some());
    assert_eq!(Versioned::from_value(&v).expect("round trip"), original);
}

#[test]
fn missing_fields_take_their_defaults() {
    // An object written by an old build that knows neither field.
    let old = Value::Object(vec![("name".to_string(), Value::String("c".into()))]);
    let back = Versioned::from_value(&old).expect("old layout parses");
    assert_eq!(back.extra, 0, "bare `default` uses Default::default()");
    assert_eq!(back.lucky, 7, "`default = \"path\"` calls the path");
}

#[test]
fn missing_field_without_default_still_errors() {
    let v = Value::Object(vec![("extra".to_string(), Value::UInt(1))]);
    assert!(Versioned::from_value(&v).is_err(), "`name` has no default");
}

#[test]
fn enum_struct_variant_supports_the_same_attributes() {
    let v = Tagged::One { base: 1, extra: 0 }.to_value();
    let payload = field(&v, "One").expect("externally tagged");
    assert!(field(payload, "extra").is_none());
    let back = Tagged::from_value(&v).expect("round trip");
    assert_eq!(back, Tagged::One { base: 1, extra: 0 });

    let v = Tagged::One { base: 1, extra: 5 }.to_value();
    let payload = field(&v, "One").expect("externally tagged");
    assert!(field(payload, "extra").is_some());
    assert_eq!(
        Tagged::from_value(&v).expect("round trip"),
        Tagged::One { base: 1, extra: 5 }
    );
}
