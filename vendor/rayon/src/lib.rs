//! Vendored, offline-friendly stand-in for `rayon`'s parallel iterators.
//!
//! Provides the small API surface this workspace uses —
//! `into_par_iter()` / `par_iter()` followed by `map`, `sum`, `collect` or
//! `reduce`-style folding — implemented with `std::thread::scope` over
//! contiguous chunks. `map` is *eager*: the closure runs in parallel at the
//! `map` call and results are returned in input order, so downstream
//! `sum`/`collect` are deterministic regardless of thread count.
//!
//! Thread count comes from `std::thread::available_parallelism`, and honours
//! the real rayon's `RAYON_NUM_THREADS` environment variable
//! (`RAYON_NUM_THREADS=1` forces fully serial execution, which the tests use
//! to check bit-identical parallel vs serial results).

use std::iter::{FromIterator, Sum};

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads the pool would use, mirroring
/// `rayon::current_num_threads` (honours `RAYON_NUM_THREADS`).
#[must_use]
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Number of worker threads to use for `len` items.
fn thread_count(len: usize) -> usize {
    current_num_threads().min(len).max(1)
}

/// A materialized parallel iterator: operations consume an ordered `Vec`.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving input order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n_threads = thread_count(self.items.len());
        if n_threads <= 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let len = self.items.len();
        let chunk_size = len.div_ceil(n_threads);
        // Collect chunk inputs so each worker owns its slice of items.
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n_threads);
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(chunk_size.min(items.len()));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let f = &f;
        let mapped: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        ParIter {
            items: mapped.into_iter().flatten().collect(),
        }
    }

    /// Keep only items matching the predicate (evaluated serially — the
    /// expensive work should live in `map`).
    #[must_use]
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().filter(|x| f(x)).collect(),
        }
    }

    /// Sum the items in input order.
    pub fn sum<S: Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Collect the items in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    #[must_use]
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Pair every item with its index, mirroring
    /// `IndexedParallelIterator::enumerate`.
    #[must_use]
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }
}

/// Parallel iteration over immutable slice chunks, mirroring
/// `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of at most `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks: chunk_size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Parallel iteration over mutable slice chunks, mirroring
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of at most `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk_size must be positive"
        );
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;

    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The produced item type.
    type Item: Send + 'a;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_serial() {
        let par: u64 = (0..10_000).into_par_iter().map(|i| i as u64).sum();
        assert_eq!(par, (0..10_000u64).sum());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().map(|&x| x * x).sum();
        assert_eq!(s, 30);
    }

    #[test]
    fn enumerate_pairs_items_with_indices() {
        let out: Vec<(usize, char)> = vec!['a', 'b', 'c']
            .into_par_iter()
            .enumerate()
            .map(|(i, c)| (i, c))
            .collect();
        assert_eq!(out, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn par_chunks_covers_the_slice_in_order() {
        let v: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = v
            .par_chunks(4)
            .map(|chunk| chunk.iter().sum::<u32>())
            .collect();
        assert_eq!(sums, vec![6, 22, 17]);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut v = vec![0usize; 7];
        v.par_chunks_mut(3)
            .enumerate()
            .map(|(i, chunk)| {
                for value in chunk.iter_mut() {
                    *value = i + 1;
                }
            })
            .collect::<Vec<()>>();
        assert_eq!(v, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
