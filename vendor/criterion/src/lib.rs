//! Vendored, offline-friendly stand-in for the `criterion` benchmark harness.
//!
//! Mirrors the subset of the criterion 0.5 API this workspace uses
//! (`Criterion`, `benchmark_group`, `sample_size`, `bench_function`,
//! `criterion_group!`, `criterion_main!`) with a simple
//! warmup-then-measure loop. Every completed benchmark is kept in
//! [`Criterion::results`] so bench mains can export machine-readable
//! artifacts (e.g. `BENCH_kernels.json`).

use std::time::Instant;

/// Measured statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of measured samples.
    pub samples: usize,
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let result = run_bench(id, 10, f);
        self.results.push(result);
        self
    }

    /// All results measured through this handle so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let result = run_bench(&full, self.sample_size, f);
        self.criterion.results.push(result);
        self
    }

    /// Finish the group (kept for API compatibility; results live on the
    /// parent [`Criterion`]).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) -> BenchResult {
    // Calibrate the per-sample iteration count so one sample takes ~20 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        if b.elapsed_ns > 2.0e7 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        per_iter.push(b.elapsed_ns / iters as f64);
    }
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min_ns = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "bench {id}: mean {:.1} ns/iter, min {:.1} ns/iter ({samples} samples)",
        mean_ns, min_ns
    );
    BenchResult {
        id: id.to_string(),
        mean_ns,
        min_ns,
        samples,
    }
}

/// Declare a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Produce a `main` that runs the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}
