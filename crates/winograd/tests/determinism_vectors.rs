//! Canonical cross-platform determinism vectors.
//!
//! Each vector fixes an input (derived from an integer LCG, so the input
//! bits themselves are platform-independent), runs one of the
//! consensus-capable engines, and compares an FNV-1a hash of the output's
//! exact bit patterns against a pinned constant. The same constants must
//! hold on every IEEE-754 platform and under every codegen flag set — CI
//! runs this file both with the workspace's default `target-cpu=native`
//! build and with `RUSTFLAGS=""` — because:
//!
//! * the quantized fast path (`quantized-exact-v1`) is integer end to end;
//! * the deterministic-f32 kernels (`f32-det`) accumulate in a fixed order
//!   with one rounding step per multiply and add, and Rust never contracts
//!   `a*b + c` into an FMA;
//! * the blocked production f32 kernel preserves the det kernel's
//!   accumulation order, which the cross-assertions here make executable.
//!
//! If a hash ever changes, a kernel reassociated its arithmetic — that is a
//! consensus break for distributed sweeps, not a tolerable perturbation.

use wgft_tensor::{gemm_f32, gemm_f32_det, ConvGeometry};
use wgft_winograd::{
    ConvShape, PreparedConvF32, PreparedConvQuantizedFast, WinogradVariant, WinogradWeights,
};

/// 64-bit FNV-1a (the journal's content-hash function).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn hash_f32(values: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn hash_i64(values: &[i64]) -> u64 {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Deterministic integer LCG (Knuth MMIX constants); the float streams are
/// derived from its integer output by exact power-of-two scaling.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// A float in `[-2, 2)` whose bits are identical on every platform:
    /// small-integer → f32 conversion and division by 256 are exact.
    fn next_f32(&mut self) -> f32 {
        let raw = (self.next_u64() >> 33) as i64 % 1024;
        (raw - 512) as f32 / 256.0
    }

    /// A quantized word in `[-100, 100]`.
    fn next_i32(&mut self) -> i32 {
        ((self.next_u64() >> 33) as i64 % 201 - 100) as i32
    }
}

fn f32_stream(seed: u64, len: usize) -> Vec<f32> {
    let mut lcg = Lcg(seed);
    (0..len).map(|_| lcg.next_f32()).collect()
}

fn i32_stream(seed: u64, len: usize) -> Vec<i32> {
    let mut lcg = Lcg(seed);
    (0..len).map(|_| lcg.next_i32()).collect()
}

/// Pinned output hash of the det-f32 GEMM vector (and of the blocked
/// production kernel, which must match it bit for bit).
const GEMM_F32_DET_VECTOR_HASH: u64 = 0xb0aa_1ee4_fc86_9bde;
/// Pinned output hash of the deterministic-f32 F(2x2) convolution vector.
const CONV_F32_DET_F2X2_HASH: u64 = 0x7551_9c9d_aad2_0ab8;
/// Pinned output hash of the deterministic-f32 F(4x4) convolution vector
/// (generated transforms, fractional points).
const CONV_F32_DET_F4X4_HASH: u64 = 0x6b5a_7222_8eb6_2ea4;
/// Pinned output hash of the quantized fast-path F(2x2) vector.
const CONV_QUANTIZED_FAST_HASH: u64 = 0x0f87_efa5_72ad_c0d1;

fn assert_pinned(actual: u64, pinned: u64, what: &str) {
    assert_eq!(
        actual, pinned,
        "{what}: output bits drifted — got 0x{actual:016x}, pinned 0x{pinned:016x}. \
         A changed hash means a kernel reassociated its arithmetic; that breaks the \
         distributed merge guarantee and must not be waved through by re-pinning \
         without understanding why."
    );
}

#[test]
fn gemm_vector_is_bit_pinned_for_det_and_blocked_kernels() {
    let (m, k, n) = (48usize, 96usize, 160usize);
    let a = f32_stream(0x5eed_0001, m * k);
    let b = f32_stream(0x5eed_0002, k * n);
    let mut det = vec![0.0f32; m * n];
    gemm_f32_det(&a, &b, &mut det, m, k, n);
    assert_pinned(
        hash_f32(&det),
        GEMM_F32_DET_VECTOR_HASH,
        "gemm_f32_det vector",
    );
    let mut blocked = vec![0.0f32; m * n];
    gemm_f32(&a, &b, &mut blocked, m, k, n);
    assert_eq!(
        det, blocked,
        "the blocked kernel must reproduce the det spec bit for bit"
    );
}

fn conv_f32_vector(variant: WinogradVariant) -> (Vec<f32>, Vec<f32>) {
    let (c, o, size, images) = (3usize, 4usize, 16usize, 2usize);
    let shape = ConvShape::new(c, o, ConvGeometry::square(size, 3, 1, 1));
    let weights = f32_stream(0x5eed_0003, o * c * 9);
    let input = f32_stream(0x5eed_0004, images * shape.input_len());

    let mut det_plan = PreparedConvF32::new(&weights, &shape, variant).expect("plan");
    det_plan.set_deterministic(true);
    assert!(det_plan.deterministic());
    let mut det_out = vec![0.0f32; images * shape.output_len()];
    det_plan
        .execute_batch_into(&input, images, &mut det_out)
        .expect("det execute");

    let mut fast_plan = PreparedConvF32::new(&weights, &shape, variant).expect("plan");
    let mut fast_out = vec![0.0f32; images * shape.output_len()];
    fast_plan
        .execute_batch_into(&input, images, &mut fast_out)
        .expect("fast execute");
    (det_out, fast_out)
}

#[test]
fn conv_f2x2_det_vector_is_bit_pinned_and_matched_by_the_fast_path() {
    let (det, fast) = conv_f32_vector(WinogradVariant::F2x2);
    assert_pinned(
        hash_f32(&det),
        CONV_F32_DET_F2X2_HASH,
        "F(2x2) det conv vector",
    );
    assert_eq!(
        det, fast,
        "blocked/parallel engine must match det mode bit for bit"
    );
}

#[test]
fn conv_f4x4_det_vector_is_bit_pinned_and_matched_by_the_fast_path() {
    let (det, fast) = conv_f32_vector(WinogradVariant::F4x4);
    assert_pinned(
        hash_f32(&det),
        CONV_F32_DET_F4X4_HASH,
        "F(4x4) det conv vector",
    );
    assert_eq!(
        det, fast,
        "blocked/parallel engine must match det mode bit for bit"
    );
}

#[test]
fn quantized_fast_vector_is_bit_pinned() {
    let (c, o, size, images) = (3usize, 4usize, 16usize, 2usize);
    let variant = WinogradVariant::F2x2;
    let t2 = variant.input_tile() * variant.input_tile();
    let shape = ConvShape::new(c, o, ConvGeometry::square(size, 3, 1, 1));
    let weights =
        WinogradWeights::new(variant, o, c, i32_stream(0x5eed_0005, o * c * t2)).expect("weights");
    let input = i32_stream(0x5eed_0006, images * shape.input_len());
    let mut plan = PreparedConvQuantizedFast::new(&weights, &shape).expect("plan");
    let output = plan.execute_batch(&input, images).expect("execute");
    assert_pinned(
        hash_i64(&output),
        CONV_QUANTIZED_FAST_HASH,
        "quantized fast-path vector",
    );
}
