//! Winograd convolution transforms, kernels and operation-count models.
//!
//! Winograd convolution computes a 2-D convolution by linearly transforming
//! the input tile and the filter into a different domain, multiplying
//! element-wise, and transforming back:
//!
//! ```text
//! Y = At [ (G g Gt) . (Bt d B) ] A          (Equation 1 of the paper)
//! ```
//!
//! which trades expensive multiplications for cheap additions. The DAC'22
//! paper studies a second, previously overlooked consequence of that trade:
//! because multiplications are the operations whose soft-error corruption
//! hurts model accuracy the most, winograd convolution is also *more fault
//! tolerant* than standard convolution.
//!
//! This crate provides:
//!
//! * [`WinogradVariant`] and the constant transform matrices
//!   (F(2x2,3x3), F(4x4,3x3) and the 1-D F(2,3)),
//! * floating-point reference kernels ([`direct_conv_f32`],
//!   [`winograd_conv_f32`]) used by training and by correctness tests,
//! * quantized kernels ([`direct_conv_quantized`],
//!   [`winograd_conv_quantized`]) that execute every primitive multiply and
//!   add through a [`wgft_faultsim::Arithmetic`] backend so that faults can
//!   be injected at operation level,
//! * analytic operation-count models ([`ConvOpModel`]) used by the
//!   fine-grained TMR overhead accounting and the accelerator timing model,
//! * the decomposable winograd method ([`dwm`](crate::decompose_kernel)) that
//!   splits larger kernels into 3x3 tiles so they can also ride the winograd
//!   datapath.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv_standard;
mod conv_winograd;
mod dwm;
mod error;
mod opcount;
mod plan;
mod quantized_fast;
mod transform;

pub use conv_standard::{direct_conv_f32, direct_conv_quantized, ConvShape};
pub use conv_winograd::{
    integer_transform, transform_weights_f32, winograd_conv_f32, winograd_conv_f32_reference,
    winograd_conv_quantized, winograd_conv_quantized_with_scratch, MatrixSide, WinogradWeights,
};
pub use dwm::{decompose_kernel, dwm_conv_f32, KernelTile};
pub use error::WinogradError;
pub use opcount::{ConvAlgorithm, ConvOpModel};
pub use plan::{
    GemmObserver, PreparedConvF32, PreparedConvQuantized, WinogradPlan, WinogradScratch,
};
pub use quantized_fast::{PreparedConvQuantizedFast, QuantizedRangeRecord, MAX_FAST_INPUT};
pub use transform::{WinogradVariant, F2X2_3X3, F4X4_3X3, F6X6_3X3};
