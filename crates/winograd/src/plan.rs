//! Planned winograd execution: cached transforms, scatter–GEMM–gather
//! scheduling and reusable scratch buffers.
//!
//! The naive kernels in [`crate::conv_winograd`] re-derive the filter
//! transform `U = G g Gᵀ` on every call and walk the image tile by tile,
//! which is fine for correctness tests but far too slow for fault-injection
//! campaigns that run thousands of inferences. The planned path splits the
//! work the way production winograd implementations (cuDNN, oneDNN, NNPACK)
//! do:
//!
//! 1. **Prepare** (once per layer): validate the geometry, transform the
//!    weights and repack them as a `(t², O, C)` tensor;
//! 2. **Scatter** (per image): transform all `P` input tiles into a
//!    `(t², C, P)` tensor;
//! 3. **GEMM**: `t²` independent `(O×C)·(C×P)` matrix multiplies — the only
//!    O(C·O·P) work, done by [`wgft_tensor::gemm_f32`];
//! 4. **Gather**: inverse-transform each `(t², 1, 1)` fibre back to an
//!    `m×m` output tile.
//!
//! No step allocates inside its per-tile loop; all scratch lives in the
//! prepared object and is reused across calls.

use crate::conv_standard::ConvShape;
use crate::conv_winograd::{transform_weights_f32, WinogradWeights};
use crate::transform::{mat_mul_into, mat_mul_rt_into, WinogradVariant};
use crate::WinogradError;
use wgft_faultsim::Arithmetic;
use wgft_tensor::{gemm_f32, gemm_f32_det};

/// Observes (and may mutate) every GEMM product of a planned winograd
/// execution, right after the GEMM writes it and before the gather phase
/// consumes it.
///
/// This is the fast path's fault-injection and protection hook: a
/// `wgft_faultsim::GemmFaultInjector` corrupts the product buffer the way a
/// soft error in a matrix engine's output latches would, and the `wgft-abft`
/// checksum guard verifies/repairs it — both without slowing down the
/// unobserved hot path, which never takes this entry point.
pub trait GemmObserver {
    /// Called once per winograd-coordinate GEMM with the operands
    /// `a (m×k)`, `b (k×p)` and the freshly computed product `out (m×p)`.
    fn after_gemm(&mut self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, p: usize);
}

/// Tile-level execution geometry of one planned winograd convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinogradPlan {
    shape: ConvShape,
    variant: WinogradVariant,
    tiles_y: usize,
    tiles_x: usize,
}

impl WinogradPlan {
    /// Plan a winograd execution for the given convolution shape.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::UnsupportedGeometry`] unless the layer is a
    /// unit-stride 3x3 convolution.
    pub fn new(shape: &ConvShape, variant: WinogradVariant) -> Result<Self, WinogradError> {
        let g = &shape.geometry;
        if !g.is_unit_stride_3x3() {
            return Err(WinogradError::UnsupportedGeometry {
                kernel: g.k_h,
                stride: g.stride,
            });
        }
        let m = variant.output_tile();
        Ok(Self {
            shape: *shape,
            variant,
            tiles_y: g.out_h().div_ceil(m),
            tiles_x: g.out_w().div_ceil(m),
        })
    }

    /// The convolution shape this plan executes.
    #[must_use]
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The tile variant.
    #[must_use]
    pub fn variant(&self) -> WinogradVariant {
        self.variant
    }

    /// Tile grid rows.
    #[must_use]
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Tile grid columns.
    #[must_use]
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Total number of tiles `P` (the GEMM free dimension).
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.tiles_y * self.tiles_x
    }

    /// Extract one `t×t` input tile (with zero padding) into `out` — shared
    /// by the f32 engine and the fast uninstrumented quantized engine, so the
    /// border/padding logic cannot desynchronize between them.
    ///
    /// `tile` indexes the row-major tile grid; `channel` selects the input
    /// feature map.
    pub(crate) fn load_tile<T: Copy + Default>(
        &self,
        input: &[T],
        tile: usize,
        channel: usize,
        out: &mut [T],
    ) {
        let g = &self.shape.geometry;
        let t = self.variant.input_tile();
        let m = self.variant.output_tile();
        let ty = tile / self.tiles_x;
        let tx = tile % self.tiles_x;
        let pad = g.padding as isize;
        let base_y = (ty * m) as isize - pad;
        let base_x = (tx * m) as isize - pad;
        let plane = &input[channel * g.in_h * g.in_w..(channel + 1) * g.in_h * g.in_w];
        // Fast path: the tile lies fully inside the image (the overwhelmingly
        // common case away from the border) — plain row copies, no
        // per-element bounds checks.
        if base_y >= 0
            && base_x >= 0
            && base_y as usize + t <= g.in_h
            && base_x as usize + t <= g.in_w
        {
            let (y0, x0) = (base_y as usize, base_x as usize);
            for dy in 0..t {
                let src = &plane[(y0 + dy) * g.in_w + x0..(y0 + dy) * g.in_w + x0 + t];
                out[dy * t..(dy + 1) * t].copy_from_slice(src);
            }
            return;
        }
        for dy in 0..t {
            let iy = base_y + dy as isize;
            let row = &mut out[dy * t..(dy + 1) * t];
            if iy < 0 || iy >= g.in_h as isize {
                row.fill(T::default());
                continue;
            }
            let irow = &plane[(iy as usize) * g.in_w..(iy as usize + 1) * g.in_w];
            for (dx, value) in row.iter_mut().enumerate() {
                let ix = base_x + dx as isize;
                *value = if ix >= 0 && ix < g.in_w as isize {
                    irow[ix as usize]
                } else {
                    T::default()
                };
            }
        }
    }
}

/// A planned floating-point winograd convolution with cached transformed
/// weights and owned scratch buffers.
///
/// Prepare once per layer, execute once per image:
///
/// ```
/// use wgft_tensor::ConvGeometry;
/// use wgft_winograd::{ConvShape, PreparedConvF32, F2X2_3X3};
///
/// # fn main() -> Result<(), wgft_winograd::WinogradError> {
/// let shape = ConvShape::new(2, 4, ConvGeometry::square(8, 3, 1, 1));
/// let weights = vec![0.1f32; shape.weight_len()];
/// let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3)?;
/// let input = vec![1.0f32; shape.input_len()];
/// let output = prepared.execute(&input)?;
/// assert_eq!(output.len(), shape.output_len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PreparedConvF32 {
    plan: WinogradPlan,
    /// Transformed weights in `(t², O, C)` layout: one `(O×C)` GEMM operand
    /// per winograd-domain coordinate.
    u: Vec<f32>,
    /// `Bᵀ` as f32, `t×t`.
    bt: Vec<f32>,
    /// `Aᵀ` as f32, `m×t`.
    at: Vec<f32>,
    /// Cache-budget tile count per scatter→GEMM→gather block: how many tiles
    /// keep one block's scatter and product buffers cache-resident. The
    /// effective block of a call is this clamped to the tiles actually
    /// available, so batched calls get full blocks where a single small image
    /// would leave a ragged tail.
    block_budget: usize,
    /// Scatter buffer for one block, `(t², C, block)`; grown on demand.
    v: Vec<f32>,
    /// GEMM product buffer for one block, `(t², O, block)`; grown on demand.
    prod: Vec<f32>,
    /// Number of times the batched engine entry point has run (the
    /// silent-fallback guard of the batched inference path checks this).
    batched_executions: u64,
    /// Deterministic-f32 mode: route every winograd-coordinate GEMM through
    /// [`wgft_tensor::gemm_f32_det`] (the strictly ordered naive spec loop)
    /// and keep the whole execution serial. The fast path is asserted
    /// bit-identical to this mode, but only this mode *is* the spec — CI
    /// pins its output bits across codegen flags.
    deterministic: bool,
}

/// Largest per-tile buffer any variant needs (`t² = 64` for F(6x6,3x3)).
pub(crate) const MAX_TILE: usize = 64;

/// Target size (in f32 elements) of the per-block scatter buffer — roughly
/// half a typical L2 so the product buffer fits alongside it.
pub(crate) const BLOCK_BUDGET: usize = 64 * 1024;

/// Minimum `O·C·bp` per GEMM before a block's t² GEMMs fan out across the
/// rayon pool; below this the fork/join costs more than the multiply.
pub(crate) const PAR_GEMM_MIN_BLOCK: usize = 1 << 16;

/// Equality is defined by what the plan *computes* — the geometry and the
/// cached transformed weights — not by whatever a previous `execute` left in
/// the scratch buffers.
impl PartialEq for PreparedConvF32 {
    fn eq(&self, other: &Self) -> bool {
        self.plan == other.plan && self.u == other.u
    }
}

impl PreparedConvF32 {
    /// Transform and cache `(O, C, 3, 3)` weights for the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::UnsupportedGeometry`] for non-3x3/strided
    /// layers and [`WinogradError::BufferSizeMismatch`] for a wrong weight
    /// buffer length.
    pub fn new(
        weights: &[f32],
        shape: &ConvShape,
        variant: WinogradVariant,
    ) -> Result<Self, WinogradError> {
        let plan = WinogradPlan::new(shape, variant)?;
        let (o, c) = (shape.out_channels, shape.in_channels);
        let t = variant.input_tile();
        let t2 = t * t;
        // (O, C, t, t) -> (t², O, C)
        let u_oc = transform_weights_f32(weights, o, c, variant)?;
        let mut u = vec![0.0f32; t2 * o * c];
        for oc in 0..o {
            for ic in 0..c {
                let src = &u_oc[(oc * c + ic) * t2..(oc * c + ic + 1) * t2];
                for (k, &value) in src.iter().enumerate() {
                    u[(k * o + oc) * c + ic] = value;
                }
            }
        }
        let p = plan.num_tiles();
        let block_budget = (BLOCK_BUDGET / (t2 * c.max(o)).max(1)).max(8);
        let block = block_budget.min(p.max(8));
        Ok(Self {
            plan,
            u,
            bt: variant.bt().iter().map(|&x| x as f32).collect(),
            at: variant.at().iter().map(|&x| x as f32).collect(),
            block_budget,
            v: vec![0.0; t2 * c * block],
            prod: vec![0.0; t2 * o * block],
            batched_executions: 0,
            deterministic: false,
        })
    }

    /// Switch this plan into (or out of) deterministic-f32 mode: every GEMM
    /// runs the naive fixed-order [`wgft_tensor::gemm_f32_det`] kernel and
    /// execution stays on one thread, so the output bits are a pure function
    /// of the inputs on any IEEE-754 platform and codegen. This is the
    /// `f32-det` arithmetic mode the sweep manifest can record; the default
    /// blocked kernel is asserted bit-identical to it in tests, so flipping
    /// the flag must never change a result — only the evidence class.
    pub fn set_deterministic(&mut self, deterministic: bool) {
        self.deterministic = deterministic;
    }

    /// Whether deterministic-f32 mode is on.
    #[must_use]
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// The plan geometry.
    #[must_use]
    pub fn plan(&self) -> &WinogradPlan {
        &self.plan
    }

    /// The cached transformed weights in `(t², O, C)` layout.
    #[must_use]
    pub fn transformed_weights(&self) -> &[f32] {
        &self.u
    }

    /// Execute the convolution into a freshly allocated output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input length.
    pub fn execute(&mut self, input: &[f32]) -> Result<Vec<f32>, WinogradError> {
        let mut output = vec![0.0f32; self.plan.shape.output_len()];
        self.execute_into(input, &mut output)?;
        Ok(output)
    }

    /// Execute the convolution into a caller-provided output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input or
    /// output length.
    pub fn execute_into(&mut self, input: &[f32], output: &mut [f32]) -> Result<(), WinogradError> {
        self.validate_batch(input, 1, output)?;
        self.execute_batch_chunked(input, 1, output, 1);
        Ok(())
    }

    /// Execute the convolution on a batch of `n_images` images into a
    /// freshly allocated `(N, O, H, W)` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input length.
    pub fn execute_batch(
        &mut self,
        input: &[f32],
        n_images: usize,
    ) -> Result<Vec<f32>, WinogradError> {
        let mut output = vec![0.0f32; n_images * self.plan.shape.output_len()];
        self.execute_batch_into(input, n_images, &mut output)?;
        Ok(output)
    }

    /// Execute the convolution on a batch of `n_images` images laid out
    /// contiguously as `(N, C, H, W)`, writing `(N, O, H', W')` to `output`.
    ///
    /// All `N·P` input tiles share the scatter→GEMM→gather schedule: tile
    /// blocks span image boundaries, so the `t²` GEMMs always run with a full
    /// free dimension even when one image yields few tiles, and the cached
    /// weight transform plus block scheduling are paid once for the whole
    /// batch. When the rayon pool has threads to spare the batch is split
    /// into image-aligned chunks processed in parallel with worker-local
    /// scratch. Results are bit-identical to `n_images` single-image
    /// [`PreparedConvF32::execute_into`] calls for every chunking and thread
    /// count, because each output element's floating-point accumulation
    /// order is independent of both.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input or
    /// output length.
    pub fn execute_batch_into(
        &mut self,
        input: &[f32],
        n_images: usize,
        output: &mut [f32],
    ) -> Result<(), WinogradError> {
        self.validate_batch(input, n_images, output)?;
        self.batched_executions += 1;
        if n_images == 0 {
            return Ok(());
        }
        let threads = rayon::current_num_threads();
        let chunk = if threads <= 1 || self.deterministic {
            n_images
        } else {
            n_images.div_ceil(threads)
        };
        self.execute_batch_chunked(input, n_images, output, chunk);
        Ok(())
    }

    /// Execute a single image with a [`GemmObserver`] attached to every
    /// winograd-coordinate GEMM.
    ///
    /// Runs the serial single-chunk schedule (observation points must be
    /// deterministic and ordered), so the observed execution is bit-identical
    /// to [`PreparedConvF32::execute_into`] whenever the observer leaves the
    /// product untouched.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input or
    /// output length.
    pub fn execute_observed(
        &mut self,
        input: &[f32],
        output: &mut [f32],
        obs: &mut dyn GemmObserver,
    ) -> Result<(), WinogradError> {
        self.validate_batch(input, 1, output)?;
        let shape = self.plan.shape;
        let (o, c) = (shape.out_channels, shape.in_channels);
        let t2 = self.plan.variant.input_tile() * self.plan.variant.input_tile();
        let bp = self.block_for(self.plan.num_tiles());
        if self.v.len() < t2 * c * bp {
            self.v.resize(t2 * c * bp, 0.0);
        }
        if self.prod.len() < t2 * o * bp {
            self.prod.resize(t2 * o * bp, 0.0);
        }
        run_images_f32(
            &self.plan,
            &self.u,
            &self.bt,
            &self.at,
            bp,
            &mut self.v,
            &mut self.prod,
            input,
            1,
            output,
            false,
            self.deterministic,
            Some(obs),
        );
        Ok(())
    }

    /// How many times [`PreparedConvF32::execute_batch_into`] has run. The
    /// batched inference layers assert on this to catch a silent fallback to
    /// per-image execution.
    #[must_use]
    pub fn batched_executions(&self) -> u64 {
        self.batched_executions
    }

    fn validate_batch(
        &self,
        input: &[f32],
        n_images: usize,
        output: &[f32],
    ) -> Result<(), WinogradError> {
        let shape = self.plan.shape;
        if input.len() != n_images * shape.input_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "input",
                expected: n_images * shape.input_len(),
                actual: input.len(),
            });
        }
        if output.len() != n_images * shape.output_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "output",
                expected: n_images * shape.output_len(),
                actual: output.len(),
            });
        }
        Ok(())
    }

    /// Effective tiles-per-block for a range holding `total_tiles`.
    fn block_for(&self, total_tiles: usize) -> usize {
        self.block_budget.min(total_tiles.max(1))
    }

    /// Run the batch split into chunks of `images_per_chunk` images.
    ///
    /// A single chunk executes in place on the plan's own scratch (no
    /// allocation; with a multi-thread pool each block's t² independent
    /// GEMMs fan out across it); multiple chunks fan out across the rayon
    /// pool, each worker with its own scratch, writing disjoint image
    /// ranges of `output`.
    fn execute_batch_chunked(
        &mut self,
        input: &[f32],
        n_images: usize,
        output: &mut [f32],
        images_per_chunk: usize,
    ) {
        let shape = self.plan.shape;
        let (in_len, out_len) = (shape.input_len(), shape.output_len());
        let (o, c) = (shape.out_channels, shape.in_channels);
        let t2 = self.plan.variant.input_tile() * self.plan.variant.input_tile();
        let images_per_chunk = images_per_chunk.clamp(1, n_images.max(1));
        // Degenerate geometries (empty input or output planes) cannot be
        // chunked by slice length; they carry no per-image work anyway.
        if images_per_chunk >= n_images || in_len == 0 || out_len == 0 {
            // One chunk: reuse the plan's scratch, growing it if batching
            // enlarged the effective block beyond the single-image size.
            let bp = self.block_for(n_images * self.plan.num_tiles());
            if self.v.len() < t2 * c * bp {
                self.v.resize(t2 * c * bp, 0.0);
            }
            if self.prod.len() < t2 * o * bp {
                self.prod.resize(t2 * o * bp, 0.0);
            }
            // No image chunks to fan out: parallelize across the block's t²
            // independent GEMMs instead (the low-latency single-image path).
            let parallel_gemms = !self.deterministic
                && rayon::current_num_threads() > 1
                && o * c * bp >= PAR_GEMM_MIN_BLOCK;
            run_images_f32(
                &self.plan,
                &self.u,
                &self.bt,
                &self.at,
                bp,
                &mut self.v,
                &mut self.prod,
                input,
                n_images,
                output,
                parallel_gemms,
                self.deterministic,
                None,
            );
            return;
        }
        use rayon::prelude::*;
        let plan = &self.plan;
        let (u, bt, at) = (&self.u, &self.bt, &self.at);
        let bp = self.block_for(images_per_chunk * plan.num_tiles());
        let jobs: Vec<(&[f32], &mut [f32])> = input
            .chunks(images_per_chunk * in_len)
            .zip(output.chunks_mut(images_per_chunk * out_len))
            .collect();
        jobs.into_par_iter()
            .map(|(in_chunk, out_chunk)| {
                let images = in_chunk.len() / in_len.max(1);
                let mut v = vec![0.0f32; t2 * c * bp];
                let mut prod = vec![0.0f32; t2 * o * bp];
                // Workers are the parallelism here; their GEMMs stay serial.
                run_images_f32(
                    plan, u, bt, at, bp, &mut v, &mut prod, in_chunk, images, out_chunk, false,
                    false, None,
                );
            })
            .collect::<Vec<()>>();
    }
}

/// Scatter→GEMM→gather over all `n_images · P` tiles of a contiguous image
/// range. `block` bounds the tiles per scatter/product buffer fill; `v` and
/// `prod` must hold `t²·C·block` and `t²·O·block` elements. With `det` set
/// the winograd-coordinate GEMMs run the naive fixed-order
/// [`wgft_tensor::gemm_f32_det`] spec kernel instead of the blocked one
/// (callers also keep `parallel_gemms` off in that mode).
#[allow(clippy::too_many_arguments)]
fn run_images_f32(
    plan: &WinogradPlan,
    u: &[f32],
    bt: &[f32],
    at: &[f32],
    block: usize,
    v: &mut [f32],
    prod: &mut [f32],
    input: &[f32],
    n_images: usize,
    output: &mut [f32],
    parallel_gemms: bool,
    det: bool,
    mut obs: Option<&mut dyn GemmObserver>,
) {
    let shape = plan.shape;
    let (o, c) = (shape.out_channels, shape.in_channels);
    let (in_len, out_len) = (shape.input_len(), shape.output_len());
    let variant = plan.variant;
    let t = variant.input_tile();
    let m = variant.output_tile();
    let t2 = t * t;
    let p = plan.num_tiles();
    let total_tiles = n_images * p;
    let (out_h, out_w) = (shape.geometry.out_h(), shape.geometry.out_w());

    // Per-tile scratch lives on the stack: the compiler can prove it
    // never aliases the big scatter/product buffers, which keeps the
    // transform arithmetic in registers.
    let mut tile_d = [0.0f32; MAX_TILE];
    let mut tile_tmp = [0.0f32; MAX_TILE];
    let mut tile_tmp2 = [0.0f32; MAX_TILE];
    let mut tile_y = [0.0f32; MAX_TILE];

    // Tiles are processed in blocks so that one block's scatter buffer,
    // GEMM product and cached weights all stay cache-resident across the
    // three phases. Blocks deliberately span image boundaries: the GEMM
    // free dimension stays full even when one image has few tiles.
    let mut block_start = 0usize;
    while block_start < total_tiles {
        let bp = block.min(total_tiles - block_start);

        // ---- Scatter: V[k][ic][b] = (Bᵀ d B)[k] for every tile/channel
        // of the block. The tile index is innermost so each of the t²
        // destination streams `v[(k·C + ic)·bp ..]` is written
        // contiguously — t² sequential write cursors instead of t²
        // random accesses per tile. Full groups of [`SOA_GROUP`] tiles run
        // through a lane-per-tile runtime-t SoA kernel (vector adds and
        // mul-adds, contiguous group-wide stores); ragged tails take the
        // per-tile path.
        for ic in 0..c {
            let mut b = 0usize;
            while b < bp {
                if b + SOA_GROUP <= bp {
                    scatter_group(plan, input, in_len, block_start + b, ic, v, c, bp, b, bt);
                    b += SOA_GROUP;
                    continue;
                }
                let g = block_start + b;
                let image_input = &input[(g / p) * in_len..(g / p + 1) * in_len];
                plan.load_tile(image_input, g % p, ic, &mut tile_d[..t2]);
                mat_mul_into(bt, &tile_d, &mut tile_tmp, t, t, t);
                mat_mul_rt_into(&tile_tmp, bt, &mut tile_tmp2, t, t, t);
                for (k, &value) in tile_tmp2[..t2].iter().enumerate() {
                    v[(k * c + ic) * bp + b] = value;
                }
                b += 1;
            }
        }

        // ---- Batched GEMM: one (O×C)·(C×bp) multiply per winograd
        // coordinate, with the batch folded into the free dimension. In
        // parallel mode the t² independent GEMMs fan out across the pool in
        // a single fork/join per block (disjoint `prod` chunks); striping
        // inside each GEMM would pay t² fork/joins plus stitch copies.
        if parallel_gemms {
            debug_assert!(obs.is_none(), "observed execution is always serial");
            debug_assert!(!det, "deterministic mode keeps GEMMs serial");
            use rayon::prelude::*;
            let v_ro: &[f32] = v;
            let jobs: Vec<(usize, &mut [f32])> =
                prod[..t2 * o * bp].chunks_mut(o * bp).enumerate().collect();
            jobs.into_par_iter()
                .map(|(k, prod_k)| {
                    gemm_f32(
                        &u[k * o * c..(k + 1) * o * c],
                        &v_ro[k * c * bp..(k + 1) * c * bp],
                        prod_k,
                        o,
                        c,
                        bp,
                    );
                })
                .collect::<Vec<()>>();
        } else {
            for k in 0..t2 {
                let gemm = if det { gemm_f32_det } else { gemm_f32 };
                gemm(
                    &u[k * o * c..(k + 1) * o * c],
                    &v[k * c * bp..(k + 1) * c * bp],
                    &mut prod[k * o * bp..(k + 1) * o * bp],
                    o,
                    c,
                    bp,
                );
                if let Some(observer) = obs.as_deref_mut() {
                    observer.after_gemm(
                        &u[k * o * c..(k + 1) * o * c],
                        &v[k * c * bp..(k + 1) * c * bp],
                        &mut prod[k * o * bp..(k + 1) * o * bp],
                        o,
                        c,
                        bp,
                    );
                }
            }
        }

        // ---- Gather: inverse-transform each (oc, tile) fibre. Tile is
        // again innermost so the t² source streams are read sequentially;
        // groups of [`SOA_GROUP`] tiles use the runtime-t SoA kernel
        // (contiguous group-wide loads from `prod`, vector adds/mul-adds).
        for oc in 0..o {
            let mut b = 0usize;
            while b < bp {
                if b + SOA_GROUP <= bp {
                    gather_group(
                        plan,
                        prod,
                        o,
                        bp,
                        oc,
                        b,
                        block_start + b,
                        out_len,
                        output,
                        at,
                    );
                    b += SOA_GROUP;
                    continue;
                }
                let g = block_start + b;
                let tile = g % p;
                let out_base = (g / p) * out_len;
                let ty = tile / plan.tiles_x;
                let tx = tile % plan.tiles_x;
                for (k, value) in tile_tmp[..t2].iter_mut().enumerate() {
                    *value = prod[(k * o + oc) * bp + b];
                }
                mat_mul_into(at, &tile_tmp, &mut tile_tmp2, m, t, t);
                mat_mul_rt_into(&tile_tmp2, at, &mut tile_y, m, t, m);
                store_output_tile(output, out_base, &tile_y, oc, ty, tx, m, out_h, out_w);
                b += 1;
            }
        }

        block_start += bp;
    }
}

/// Tiles per SoA transform group: one f32 lane per tile, sized to a full
/// AVX-512 register (and two AVX2 registers) so the transforms' adds and
/// mul-adds vectorize across tiles.
pub(crate) const SOA_GROUP: usize = 16;

/// Lane-wise `acc += coef · src`, specialized on the coefficient: winograd
/// transform matrices are dominated by 0/±1 entries, so most terms are a
/// skipped column, a vector add or a vector subtract; only genuinely
/// fractional-scaled entries pay a multiply. `1·x`, `(-1)·x` and skipping
/// `0·x` are exact in IEEE f32, so this is bit-identical to the
/// multiply-accumulate the per-tile [`mat_mul_into`] path performs.
#[inline]
fn lane_axpy_f32(acc: &mut [f32; SOA_GROUP], coef: f32, src: &[f32; SOA_GROUP]) {
    if coef == 0.0 {
        return;
    }
    if coef == 1.0 {
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            *a += s;
        }
    } else if coef == -1.0 {
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            *a -= s;
        }
    } else {
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            *a += coef * s;
        }
    }
}

/// Input transform `Bᵀ d B` for [`SOA_GROUP`] consecutive tiles of one
/// channel, lane-per-tile at any tile size: each transform term becomes a
/// group-wide vector op and the t² winograd-domain stores become contiguous
/// group-wide `memcpy`s into the scatter buffer (the per-tile path writes
/// them with stride `bp`). Term-for-term identical arithmetic to the
/// per-tile [`mat_mul_into`]/[`mat_mul_rt_into`] path, so results agree.
#[allow(clippy::too_many_arguments)]
#[inline]
fn scatter_group(
    plan: &WinogradPlan,
    input: &[f32],
    in_len: usize,
    g0: usize,
    ic: usize,
    v: &mut [f32],
    c: usize,
    bp: usize,
    b0: usize,
    bt: &[f32],
) {
    let p = plan.num_tiles();
    let t = plan.variant.input_tile();
    let t2 = t * t;
    let mut dsoa = [[0.0f32; SOA_GROUP]; MAX_TILE];
    let mut tile_d = [0.0f32; MAX_TILE];
    #[allow(clippy::needless_range_loop)] // `gi` is the SoA lane, not a row
    for gi in 0..SOA_GROUP {
        let g = g0 + gi;
        let image_input = &input[(g / p) * in_len..(g / p + 1) * in_len];
        plan.load_tile(image_input, g % p, ic, &mut tile_d[..t2]);
        for (pos, &value) in tile_d[..t2].iter().enumerate() {
            dsoa[pos][gi] = value;
        }
    }
    // tmp = Bᵀ d, lane-wise: tmp[i][j] = Σ_k Bᵀ[i][k] · d[k][j].
    let mut tmp = [[0.0f32; SOA_GROUP]; MAX_TILE];
    for i in 0..t {
        for j in 0..t {
            let mut acc = [0.0f32; SOA_GROUP];
            for k in 0..t {
                lane_axpy_f32(&mut acc, bt[i * t + k], &dsoa[k * t + j]);
            }
            tmp[i * t + j] = acc;
        }
    }
    // v_rows = tmp B (B = Bᵀᵀ), lane-wise, stored straight into the scatter
    // buffer: out[i][j] = Σ_k tmp[i][k] · Bᵀ[j][k].
    for i in 0..t {
        for j in 0..t {
            let mut acc = [0.0f32; SOA_GROUP];
            for k in 0..t {
                lane_axpy_f32(&mut acc, bt[j * t + k], &tmp[i * t + k]);
            }
            v[((i * t + j) * c + ic) * bp + b0..][..SOA_GROUP].copy_from_slice(&acc);
        }
    }
}

/// Output transform `Aᵀ m A` for [`SOA_GROUP`] consecutive tiles of one
/// output channel, lane-per-tile at any tile size: the group-wide reads from
/// the GEMM product are contiguous (the per-tile path reads them with stride
/// `bp`) and every transform term vectorizes across tiles. Term-for-term
/// identical arithmetic to the per-tile path, so results agree.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gather_group(
    plan: &WinogradPlan,
    prod: &[f32],
    o: usize,
    bp: usize,
    oc: usize,
    b0: usize,
    g0: usize,
    out_len: usize,
    output: &mut [f32],
    at: &[f32],
) {
    let p = plan.num_tiles();
    let g = &plan.shape.geometry;
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let t = plan.variant.input_tile();
    let m = plan.variant.output_tile();
    let t2 = t * t;
    let mut msoa = [[0.0f32; SOA_GROUP]; MAX_TILE];
    for (k, row) in msoa.iter_mut().enumerate().take(t2) {
        row.copy_from_slice(&prod[(k * o + oc) * bp + b0..][..SOA_GROUP]);
    }
    // tmp = Aᵀ m (m×t rows), lane-wise.
    let mut tmp = [[0.0f32; SOA_GROUP]; MAX_TILE];
    for i in 0..m {
        for j in 0..t {
            let mut acc = [0.0f32; SOA_GROUP];
            for k in 0..t {
                lane_axpy_f32(&mut acc, at[i * t + k], &msoa[k * t + j]);
            }
            tmp[i * t + j] = acc;
        }
    }
    // y = tmp A (m×m), lane-wise.
    let mut ysoa = [[0.0f32; SOA_GROUP]; MAX_TILE];
    for i in 0..m {
        for j in 0..m {
            let mut acc = [0.0f32; SOA_GROUP];
            for k in 0..t {
                lane_axpy_f32(&mut acc, at[j * t + k], &tmp[i * t + k]);
            }
            ysoa[i * m + j] = acc;
        }
    }
    let mut tile_y = [0.0f32; MAX_TILE];
    #[allow(clippy::needless_range_loop)] // `gi` is the SoA lane, not a row
    for gi in 0..SOA_GROUP {
        let gt = g0 + gi;
        let tile = gt % p;
        let out_base = (gt / p) * out_len;
        let ty = tile / plan.tiles_x;
        let tx = tile % plan.tiles_x;
        for (pos, value) in tile_y[..m * m].iter_mut().enumerate() {
            *value = ysoa[pos][gi];
        }
        store_output_tile(
            output,
            out_base,
            &tile_y[..m * m],
            oc,
            ty,
            tx,
            m,
            out_h,
            out_w,
        );
    }
}

/// Write one `m×m` output tile, clipping at the feature-map border —
/// shared by the f32 engine and the fast quantized engine (`T = i64`), so
/// the border-clipping logic cannot desynchronize between them.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn store_output_tile<T: Copy>(
    output: &mut [T],
    out_base: usize,
    tile_y: &[T],
    oc: usize,
    ty: usize,
    tx: usize,
    m: usize,
    out_h: usize,
    out_w: usize,
) {
    if (ty + 1) * m <= out_h && (tx + 1) * m <= out_w {
        // Full interior tile: contiguous row copies.
        for dy in 0..m {
            let dst = out_base + (oc * out_h + ty * m + dy) * out_w + tx * m;
            output[dst..dst + m].copy_from_slice(&tile_y[dy * m..(dy + 1) * m]);
        }
    } else {
        for dy in 0..m {
            let oy = ty * m + dy;
            if oy >= out_h {
                break;
            }
            for dx in 0..m {
                let ox = tx * m + dx;
                if ox >= out_w {
                    break;
                }
                output[out_base + (oc * out_h + oy) * out_w + ox] = tile_y[dy * m + dx];
            }
        }
    }
}

/// Reusable scratch buffers for the quantized winograd kernel.
///
/// The quantized kernel streams every primitive operation through an
/// instrumented [`Arithmetic`] backend, so its loop structure is part of the
/// experiment (the op sequence determines where faults land) — but its
/// scratch allocation is not. This object hoists every buffer out of the
/// per-tile/per-channel loops; it grows on demand and can be reused across
/// layers and images.
#[derive(Debug, Clone, Default)]
pub struct WinogradScratch {
    /// Transformed input tiles for all channels, `(C, t, t)`.
    pub(crate) v_tiles: Vec<i64>,
    /// Raw input tile, `t×t`.
    pub(crate) d: Vec<i64>,
    /// Transform intermediate, `t×t`.
    pub(crate) tmp: Vec<i64>,
    /// Channel-accumulated element-wise products, `t×t`.
    pub(crate) acc: Vec<i64>,
    /// Output-transform intermediate, `m×t`.
    pub(crate) tmp_out: Vec<i64>,
    /// Output tile, `m×m`.
    pub(crate) y: Vec<i64>,
}

impl WinogradScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the buffers for one kernel invocation.
    pub(crate) fn prepare(&mut self, variant: WinogradVariant, in_channels: usize) {
        let t = variant.input_tile();
        let m = variant.output_tile();
        resize_fill(&mut self.v_tiles, in_channels * t * t);
        resize_fill(&mut self.d, t * t);
        resize_fill(&mut self.tmp, t * t);
        resize_fill(&mut self.acc, t * t);
        resize_fill(&mut self.tmp_out, m * t);
        resize_fill(&mut self.y, m * m);
    }
}

fn resize_fill(buf: &mut Vec<i64>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// A planned quantized winograd convolution: pre-quantized winograd-domain
/// weights plus owned scratch, executable against any [`Arithmetic`] backend.
///
/// The per-call [`crate::winograd_conv_quantized`] entry point wraps this; a
/// long-lived `PreparedConvQuantized` additionally reuses its scratch across
/// images, which is what the fault-injection campaigns want.
#[derive(Debug, Clone)]
pub struct PreparedConvQuantized {
    plan: WinogradPlan,
    weights: WinogradWeights,
    scratch: WinogradScratch,
}

impl PreparedConvQuantized {
    /// Wrap pre-quantized winograd weights for the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::UnsupportedGeometry`] for unsupported layers
    /// and [`WinogradError::BufferSizeMismatch`] if the weights disagree with
    /// the shape's channel counts.
    pub fn new(weights: WinogradWeights, shape: &ConvShape) -> Result<Self, WinogradError> {
        let plan = WinogradPlan::new(shape, weights.variant())?;
        if weights.out_channels() != shape.out_channels
            || weights.in_channels() != shape.in_channels
        {
            return Err(WinogradError::BufferSizeMismatch {
                what: "winograd weight",
                expected: shape.out_channels * shape.in_channels,
                actual: weights.out_channels() * weights.in_channels(),
            });
        }
        Ok(Self {
            plan,
            weights,
            scratch: WinogradScratch::new(),
        })
    }

    /// The plan geometry.
    #[must_use]
    pub fn plan(&self) -> &WinogradPlan {
        &self.plan
    }

    /// The cached winograd-domain weights.
    #[must_use]
    pub fn weights(&self) -> &WinogradWeights {
        &self.weights
    }

    /// Execute the convolution through `arith`, attributing operations to
    /// `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input length.
    pub fn execute<A: Arithmetic>(
        &mut self,
        arith: &mut A,
        layer: usize,
        input: &[i32],
    ) -> Result<Vec<i64>, WinogradError> {
        crate::conv_winograd::winograd_conv_quantized_with_scratch(
            arith,
            layer,
            input,
            &self.weights,
            &self.plan.shape,
            &mut self.scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_standard::direct_conv_f32;
    use crate::transform::{F2X2_3X3, F4X4_3X3, F6X6_3X3};
    use wgft_tensor::ConvGeometry;

    fn fixture(
        in_c: usize,
        out_c: usize,
        size: usize,
        pad: usize,
    ) -> (ConvShape, Vec<f32>, Vec<f32>) {
        let shape = ConvShape::new(in_c, out_c, ConvGeometry::square(size, 3, 1, pad));
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i * 31 % 23) as f32) * 0.17 - 1.9)
            .collect();
        let weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i * 17 % 13) as f32) * 0.11 - 0.7)
            .collect();
        (shape, input, weights)
    }

    #[test]
    fn plan_rejects_unsupported_geometry() {
        let strided = ConvShape::new(1, 1, ConvGeometry::square(8, 3, 2, 1));
        assert!(WinogradPlan::new(&strided, F2X2_3X3).is_err());
        let five = ConvShape::new(1, 1, ConvGeometry::square(8, 5, 1, 1));
        assert!(WinogradPlan::new(&five, F2X2_3X3).is_err());
    }

    #[test]
    fn plan_tile_grid_covers_output() {
        let shape = ConvShape::new(1, 1, ConvGeometry::square(5, 3, 1, 1));
        let plan = WinogradPlan::new(&shape, F2X2_3X3).unwrap();
        // 5x5 output, 2x2 tiles -> 3x3 grid.
        assert_eq!(plan.tiles_y(), 3);
        assert_eq!(plan.tiles_x(), 3);
        assert_eq!(plan.num_tiles(), 9);
        assert_eq!(plan.variant(), F2X2_3X3);
        assert_eq!(plan.shape(), &shape);
    }

    /// The planned scatter-GEMM path must agree with direct convolution over
    /// a grid of shapes: odd sizes, non-tile-multiple outputs, padding 0/1
    /// and every tile variant.
    ///
    /// F(6x6) runs its transforms with integer-scaled matrices whose row
    /// sums reach 72, so winograd-domain intermediates are ~3 decimal orders
    /// larger than the outputs and the f32 round-off budget is accordingly
    /// wider than for the small tiles.
    #[test]
    fn planned_f32_matches_direct_across_shape_grid() {
        for &(in_c, out_c) in &[(1usize, 1usize), (2, 3), (3, 2)] {
            for &size in &[4usize, 5, 6, 7, 9, 11] {
                for &pad in &[0usize, 1] {
                    let (shape, input, weights) = fixture(in_c, out_c, size, pad);
                    if shape.geometry.out_h() == 0 {
                        continue;
                    }
                    let direct = direct_conv_f32(&input, &weights, &shape).unwrap();
                    for variant in [F2X2_3X3, F4X4_3X3, F6X6_3X3] {
                        let tol = match variant {
                            WinogradVariant::F6x6 => 2e-1,
                            _ => 2e-2,
                        };
                        let mut prepared = PreparedConvF32::new(&weights, &shape, variant).unwrap();
                        let out = prepared.execute(&input).unwrap();
                        for (i, (d, w)) in direct.iter().zip(out.iter()).enumerate() {
                            assert!(
                                (d - w).abs() < tol,
                                "{variant} c{in_c}->{out_c} s{size} p{pad} idx {i}: direct {d} vs planned {w}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Exact integer filter transform `G g Gᵀ` through the generator's
    /// rational `G`: weights divisible by [`WinogradVariant::weight_divisor`]
    /// transform to exactly integral winograd-domain weights. The f32 path
    /// cannot express this for F(6x6) (scaled weights exceed the 24-bit
    /// mantissa), so exact tests go through rationals.
    pub(super) fn exact_winograd_weights(
        weights_q: &[i32],
        o: usize,
        c: usize,
        variant: WinogradVariant,
    ) -> Vec<i32> {
        use wgft_tile::Rational;
        let transforms = variant.tile_spec().generate();
        let g = transforms.g();
        let t = variant.input_tile();
        let mut out = vec![0i32; o * c * t * t];
        for filt in 0..o * c {
            let w = &weights_q[filt * 9..(filt + 1) * 9];
            for i in 0..t {
                for j in 0..t {
                    let mut acc = Rational::ZERO;
                    for a in 0..3 {
                        for b in 0..3 {
                            acc = acc
                                + g[i * 3 + a]
                                    * Rational::integer(i64::from(w[a * 3 + b]))
                                    * g[j * 3 + b];
                        }
                    }
                    let exact = acc
                        .as_integer()
                        .expect("divisor-multiple weights transform exactly");
                    out[filt * t * t + i * t + j] =
                        i32::try_from(exact).expect("winograd weight fits i32");
                }
            }
        }
        out
    }

    /// Planned quantized winograd must reproduce direct quantized convolution
    /// bit-for-bit across the same shape grid, for every tile variant.
    ///
    /// Exactness requires winograd-domain weights that are exactly integral,
    /// i.e. raw weights divisible by the per-variant
    /// [`WinogradVariant::weight_divisor`] (4 / 576 / 360²).
    #[test]
    fn planned_quantized_matches_direct_across_shape_grid() {
        use crate::conv_standard::direct_conv_quantized;
        use wgft_faultsim::ExactArithmetic;

        for variant in [F2X2_3X3, F4X4_3X3, F6X6_3X3] {
            let scale = i32::try_from(variant.weight_divisor()).unwrap();
            for &(in_c, out_c) in &[(1usize, 1usize), (2, 3)] {
                for &size in &[4usize, 5, 7, 8] {
                    for &pad in &[0usize, 1] {
                        let shape =
                            ConvShape::new(in_c, out_c, ConvGeometry::square(size, 3, 1, pad));
                        if shape.geometry.out_h() == 0 {
                            continue;
                        }
                        let input_q: Vec<i32> = (0..shape.input_len())
                            .map(|i| ((i * 7 % 23) as i32) - 11)
                            .collect();
                        let weights_q: Vec<i32> = (0..shape.weight_len())
                            .map(|i| scale.saturating_mul(((i * 5 % 9) as i32) - 4))
                            .collect();

                        let mut exact = ExactArithmetic::new();
                        let direct =
                            direct_conv_quantized(&mut exact, 0, &input_q, &weights_q, &shape)
                                .unwrap();

                        let u_q = exact_winograd_weights(&weights_q, out_c, in_c, variant);
                        if variant != WinogradVariant::F6x6 {
                            // The f32 transform stays exact for the small
                            // divisors; pin the two paths to each other.
                            let weights_f: Vec<f32> = weights_q.iter().map(|&w| w as f32).collect();
                            let u =
                                transform_weights_f32(&weights_f, out_c, in_c, variant).unwrap();
                            for (uf, &uq) in u.iter().zip(u_q.iter()) {
                                assert!(
                                    (uf - uq as f32).abs() < 1e-3,
                                    "{variant}: f32 transform diverged ({uf} vs {uq})"
                                );
                            }
                        }
                        let wino = WinogradWeights::new(variant, out_c, in_c, u_q).unwrap();
                        let mut prepared = PreparedConvQuantized::new(wino, &shape).unwrap();
                        let mut exact2 = ExactArithmetic::new();
                        let out = prepared.execute(&mut exact2, 0, &input_q).unwrap();
                        assert_eq!(
                            direct, out,
                            "{variant} c{in_c}->{out_c} s{size} p{pad}: quantized mismatch"
                        );

                        // Scratch reuse across images must not leak state.
                        let mut exact3 = ExactArithmetic::new();
                        let again = prepared.execute(&mut exact3, 0, &input_q).unwrap();
                        assert_eq!(out, again);
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_quantized_validates_channel_mismatch() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(4, 3, 1, 1));
        let weights = WinogradWeights::new(F2X2_3X3, 1, 1, vec![0; 16]).unwrap();
        assert!(PreparedConvQuantized::new(weights, &shape).is_err());
    }

    #[test]
    fn prepared_conv_is_reusable_across_images() {
        let (shape, input, weights) = fixture(2, 2, 8, 1);
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let first = prepared.execute(&input).unwrap();
        let other: Vec<f32> = input.iter().map(|x| x * 0.5 + 0.1).collect();
        let _ = prepared.execute(&other).unwrap();
        let again = prepared.execute(&input).unwrap();
        assert_eq!(
            first, again,
            "scratch reuse must not leak state between images"
        );
    }

    /// Build a batch of `n` distinct images for a shape.
    fn batch_input(shape: &ConvShape, n: usize) -> Vec<f32> {
        (0..n * shape.input_len())
            .map(|i| ((i * 29 % 31) as f32) * 0.23 - 2.1)
            .collect()
    }

    /// The batched engine must be bit-identical to N independent
    /// single-image executions across the shape/padding/variant grid,
    /// including ragged sizes where tile blocks straddle image boundaries.
    #[test]
    fn batched_execution_matches_per_image_bit_for_bit() {
        for &(in_c, out_c) in &[(1usize, 1usize), (2, 3), (3, 2)] {
            for &size in &[4usize, 5, 7, 9] {
                for &pad in &[0usize, 1] {
                    let (shape, _, weights) = fixture(in_c, out_c, size, pad);
                    if shape.geometry.out_h() == 0 {
                        continue;
                    }
                    for variant in [F2X2_3X3, F4X4_3X3, F6X6_3X3] {
                        for n in [1usize, 2, 3, 5] {
                            let batch = batch_input(&shape, n);
                            let mut prepared =
                                PreparedConvF32::new(&weights, &shape, variant).unwrap();
                            let batched = prepared.execute_batch(&batch, n).unwrap();
                            let mut single =
                                PreparedConvF32::new(&weights, &shape, variant).unwrap();
                            for img in 0..n {
                                let out = single
                                    .execute(&batch[img * shape.input_len()..][..shape.input_len()])
                                    .unwrap();
                                assert_eq!(
                                    out,
                                    &batched[img * shape.output_len()..][..shape.output_len()],
                                    "{variant} c{in_c}->{out_c} s{size} p{pad} n{n} image {img}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Every image-chunking of a batch — including ragged tail chunks (N not
    /// a multiple of the chunk size) — must produce identical bits, since
    /// chunking is exactly what the parallel path does.
    #[test]
    fn batch_chunking_is_bit_identical_for_every_chunk_size() {
        let (shape, _, weights) = fixture(2, 3, 9, 1);
        let n = 5usize;
        let batch = batch_input(&shape, n);
        let mut reference = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let expected = reference.execute_batch(&batch, n).unwrap();
        for chunk in 1..=n + 1 {
            let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
            let mut out = vec![f32::NAN; n * shape.output_len()];
            prepared.execute_batch_chunked(&batch, n, &mut out, chunk);
            assert_eq!(expected, out, "chunk size {chunk}");
        }
    }

    #[test]
    fn batched_executions_counter_tracks_batch_entry_point() {
        let (shape, input, weights) = fixture(1, 1, 6, 1);
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        assert_eq!(prepared.batched_executions(), 0);
        let _ = prepared.execute(&input).unwrap();
        assert_eq!(
            prepared.batched_executions(),
            0,
            "single-image execute is not the batched entry point"
        );
        let batch = batch_input(&shape, 3);
        let _ = prepared.execute_batch(&batch, 3).unwrap();
        assert_eq!(prepared.batched_executions(), 1);
    }

    #[test]
    fn batch_validates_lengths_and_accepts_empty() {
        let (shape, _, weights) = fixture(1, 2, 5, 1);
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let batch = batch_input(&shape, 2);
        // Wrong image count for the buffer length.
        assert!(prepared.execute_batch(&batch, 3).is_err());
        let mut short = vec![0.0f32; 2 * shape.output_len() - 1];
        assert!(prepared.execute_batch_into(&batch, 2, &mut short).is_err());
        // Zero images is a no-op, not an error.
        assert!(prepared.execute_batch(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn execute_into_validates_buffer_lengths() {
        let (shape, input, weights) = fixture(1, 1, 4, 1);
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let mut short = vec![0.0f32; shape.output_len() - 1];
        assert!(prepared.execute_into(&input, &mut short).is_err());
        assert!(prepared.execute(&input[..input.len() - 1]).is_err());
    }

    #[test]
    fn transformed_weight_layout_is_coordinate_major() {
        let (shape, _, weights) = fixture(2, 3, 4, 1);
        let prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let u_oc = transform_weights_f32(&weights, 3, 2, F2X2_3X3).unwrap();
        let t2 = 16;
        // u[(k, oc, ic)] must equal u_oc[(oc, ic, k)].
        for k in 0..t2 {
            for oc in 0..3 {
                for ic in 0..2 {
                    assert_eq!(
                        prepared.transformed_weights()[(k * 3 + oc) * 2 + ic],
                        u_oc[(oc * 2 + ic) * t2 + k]
                    );
                }
            }
        }
    }
}
