//! Planned winograd execution: cached transforms, scatter–GEMM–gather
//! scheduling and reusable scratch buffers.
//!
//! The naive kernels in [`crate::conv_winograd`] re-derive the filter
//! transform `U = G g Gᵀ` on every call and walk the image tile by tile,
//! which is fine for correctness tests but far too slow for fault-injection
//! campaigns that run thousands of inferences. The planned path splits the
//! work the way production winograd implementations (cuDNN, oneDNN, NNPACK)
//! do:
//!
//! 1. **Prepare** (once per layer): validate the geometry, transform the
//!    weights and repack them as a `(t², O, C)` tensor;
//! 2. **Scatter** (per image): transform all `P` input tiles into a
//!    `(t², C, P)` tensor;
//! 3. **GEMM**: `t²` independent `(O×C)·(C×P)` matrix multiplies — the only
//!    O(C·O·P) work, done by [`wgft_tensor::gemm_f32`];
//! 4. **Gather**: inverse-transform each `(t², 1, 1)` fibre back to an
//!    `m×m` output tile.
//!
//! No step allocates inside its per-tile loop; all scratch lives in the
//! prepared object and is reused across calls.

use crate::conv_standard::ConvShape;
use crate::conv_winograd::{transform_weights_f32, WinogradWeights};
use crate::transform::{mat_mul_into, mat_mul_rt_into, WinogradVariant};
use crate::WinogradError;
use wgft_faultsim::Arithmetic;
use wgft_tensor::gemm_f32;

/// Tile-level execution geometry of one planned winograd convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinogradPlan {
    shape: ConvShape,
    variant: WinogradVariant,
    tiles_y: usize,
    tiles_x: usize,
}

impl WinogradPlan {
    /// Plan a winograd execution for the given convolution shape.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::UnsupportedGeometry`] unless the layer is a
    /// unit-stride 3x3 convolution.
    pub fn new(shape: &ConvShape, variant: WinogradVariant) -> Result<Self, WinogradError> {
        let g = &shape.geometry;
        if !g.is_unit_stride_3x3() {
            return Err(WinogradError::UnsupportedGeometry {
                kernel: g.k_h,
                stride: g.stride,
            });
        }
        let m = variant.output_tile();
        Ok(Self {
            shape: *shape,
            variant,
            tiles_y: g.out_h().div_ceil(m),
            tiles_x: g.out_w().div_ceil(m),
        })
    }

    /// The convolution shape this plan executes.
    #[must_use]
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The tile variant.
    #[must_use]
    pub fn variant(&self) -> WinogradVariant {
        self.variant
    }

    /// Tile grid rows.
    #[must_use]
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Tile grid columns.
    #[must_use]
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Total number of tiles `P` (the GEMM free dimension).
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.tiles_y * self.tiles_x
    }

    /// Extract one `t×t` input tile (with zero padding) into `out`.
    ///
    /// `tile` indexes the row-major tile grid; `channel` selects the input
    /// feature map.
    fn load_tile_f32(&self, input: &[f32], tile: usize, channel: usize, out: &mut [f32]) {
        let g = &self.shape.geometry;
        let t = self.variant.input_tile();
        let m = self.variant.output_tile();
        let ty = tile / self.tiles_x;
        let tx = tile % self.tiles_x;
        let pad = g.padding as isize;
        let base_y = (ty * m) as isize - pad;
        let base_x = (tx * m) as isize - pad;
        let plane = &input[channel * g.in_h * g.in_w..(channel + 1) * g.in_h * g.in_w];
        // Fast path: the tile lies fully inside the image (the overwhelmingly
        // common case away from the border) — plain row copies, no
        // per-element bounds checks.
        if base_y >= 0
            && base_x >= 0
            && base_y as usize + t <= g.in_h
            && base_x as usize + t <= g.in_w
        {
            let (y0, x0) = (base_y as usize, base_x as usize);
            for dy in 0..t {
                let src = &plane[(y0 + dy) * g.in_w + x0..(y0 + dy) * g.in_w + x0 + t];
                out[dy * t..(dy + 1) * t].copy_from_slice(src);
            }
            return;
        }
        for dy in 0..t {
            let iy = base_y + dy as isize;
            let row = &mut out[dy * t..(dy + 1) * t];
            if iy < 0 || iy >= g.in_h as isize {
                row.fill(0.0);
                continue;
            }
            let irow = &plane[(iy as usize) * g.in_w..(iy as usize + 1) * g.in_w];
            for (dx, value) in row.iter_mut().enumerate() {
                let ix = base_x + dx as isize;
                *value = if ix >= 0 && ix < g.in_w as isize {
                    irow[ix as usize]
                } else {
                    0.0
                };
            }
        }
    }
}

/// A planned floating-point winograd convolution with cached transformed
/// weights and owned scratch buffers.
///
/// Prepare once per layer, execute once per image:
///
/// ```
/// use wgft_tensor::ConvGeometry;
/// use wgft_winograd::{ConvShape, PreparedConvF32, F2X2_3X3};
///
/// # fn main() -> Result<(), wgft_winograd::WinogradError> {
/// let shape = ConvShape::new(2, 4, ConvGeometry::square(8, 3, 1, 1));
/// let weights = vec![0.1f32; shape.weight_len()];
/// let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3)?;
/// let input = vec![1.0f32; shape.input_len()];
/// let output = prepared.execute(&input)?;
/// assert_eq!(output.len(), shape.output_len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PreparedConvF32 {
    plan: WinogradPlan,
    /// Transformed weights in `(t², O, C)` layout: one `(O×C)` GEMM operand
    /// per winograd-domain coordinate.
    u: Vec<f32>,
    /// `Bᵀ` as f32, `t×t`.
    bt: Vec<f32>,
    /// `Aᵀ` as f32, `m×t`.
    at: Vec<f32>,
    /// Tiles processed per scatter→GEMM→gather block (`≤ num_tiles`); sized
    /// so one block's scatter and product buffers stay cache-resident.
    block: usize,
    /// Scatter buffer for one block, `(t², C, block)`.
    v: Vec<f32>,
    /// GEMM product buffer for one block, `(t², O, block)`.
    prod: Vec<f32>,
}

/// Largest per-tile buffer any variant needs (`t² = 36` for F(4x4,3x3)).
const MAX_TILE: usize = 36;

/// Target size (in f32 elements) of the per-block scatter buffer — roughly
/// half a typical L2 so the product buffer fits alongside it.
const BLOCK_BUDGET: usize = 64 * 1024;

/// Equality is defined by what the plan *computes* — the geometry and the
/// cached transformed weights — not by whatever a previous `execute` left in
/// the scratch buffers.
impl PartialEq for PreparedConvF32 {
    fn eq(&self, other: &Self) -> bool {
        self.plan == other.plan && self.u == other.u
    }
}

impl PreparedConvF32 {
    /// Transform and cache `(O, C, 3, 3)` weights for the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::UnsupportedGeometry`] for non-3x3/strided
    /// layers and [`WinogradError::BufferSizeMismatch`] for a wrong weight
    /// buffer length.
    pub fn new(
        weights: &[f32],
        shape: &ConvShape,
        variant: WinogradVariant,
    ) -> Result<Self, WinogradError> {
        let plan = WinogradPlan::new(shape, variant)?;
        let (o, c) = (shape.out_channels, shape.in_channels);
        let t = variant.input_tile();
        let t2 = t * t;
        // (O, C, t, t) -> (t², O, C)
        let u_oc = transform_weights_f32(weights, o, c, variant)?;
        let mut u = vec![0.0f32; t2 * o * c];
        for oc in 0..o {
            for ic in 0..c {
                let src = &u_oc[(oc * c + ic) * t2..(oc * c + ic + 1) * t2];
                for (k, &value) in src.iter().enumerate() {
                    u[(k * o + oc) * c + ic] = value;
                }
            }
        }
        let p = plan.num_tiles();
        let block = (BLOCK_BUDGET / (t2 * c.max(o)).max(1)).clamp(8, p.max(8));
        Ok(Self {
            plan,
            u,
            bt: variant.bt().iter().map(|&x| x as f32).collect(),
            at: variant.at().iter().map(|&x| x as f32).collect(),
            block,
            v: vec![0.0; t2 * c * block],
            prod: vec![0.0; t2 * o * block],
        })
    }

    /// The plan geometry.
    #[must_use]
    pub fn plan(&self) -> &WinogradPlan {
        &self.plan
    }

    /// The cached transformed weights in `(t², O, C)` layout.
    #[must_use]
    pub fn transformed_weights(&self) -> &[f32] {
        &self.u
    }

    /// Execute the convolution into a freshly allocated output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input length.
    pub fn execute(&mut self, input: &[f32]) -> Result<Vec<f32>, WinogradError> {
        let mut output = vec![0.0f32; self.plan.shape.output_len()];
        self.execute_into(input, &mut output)?;
        Ok(output)
    }

    /// Execute the convolution into a caller-provided output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input or
    /// output length.
    pub fn execute_into(&mut self, input: &[f32], output: &mut [f32]) -> Result<(), WinogradError> {
        let shape = self.plan.shape;
        if input.len() != shape.input_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "input",
                expected: shape.input_len(),
                actual: input.len(),
            });
        }
        if output.len() != shape.output_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "output",
                expected: shape.output_len(),
                actual: output.len(),
            });
        }
        let (o, c) = (shape.out_channels, shape.in_channels);
        let variant = self.plan.variant;
        let t = variant.input_tile();
        let m = variant.output_tile();
        let t2 = t * t;
        let p = self.plan.num_tiles();
        let (out_h, out_w) = (shape.geometry.out_h(), shape.geometry.out_w());

        // Per-tile scratch lives on the stack: the compiler can prove it
        // never aliases the big scatter/product buffers, which keeps the
        // transform arithmetic in registers.
        let mut tile_d = [0.0f32; MAX_TILE];
        let mut tile_tmp = [0.0f32; MAX_TILE];
        let mut tile_tmp2 = [0.0f32; MAX_TILE];
        let mut tile_y = [0.0f32; MAX_TILE];

        // Tiles are processed in blocks so that one block's scatter buffer,
        // GEMM product and cached weights all stay cache-resident across the
        // three phases.
        let mut block_start = 0usize;
        while block_start < p {
            let bp = self.block.min(p - block_start);

            // ---- Scatter: V[k][ic][b] = (Bᵀ d B)[k] for every tile/channel
            // of the block. The tile index is innermost so each of the t²
            // destination streams `v[(k·C + ic)·bp ..]` is written
            // contiguously — t² sequential write cursors instead of t²
            // random accesses per tile.
            for ic in 0..c {
                for b in 0..bp {
                    self.plan
                        .load_tile_f32(input, block_start + b, ic, &mut tile_d[..t2]);
                    match variant {
                        WinogradVariant::F2x2 => {
                            input_transform_f2x2(&tile_d, &mut tile_tmp2, &mut tile_tmp);
                        }
                        WinogradVariant::F4x4 => {
                            mat_mul_into(&self.bt, &tile_d, &mut tile_tmp, t, t, t);
                            mat_mul_rt_into(&tile_tmp, &self.bt, &mut tile_tmp2, t, t, t);
                        }
                    }
                    for (k, &value) in tile_tmp2[..t2].iter().enumerate() {
                        self.v[(k * c + ic) * bp + b] = value;
                    }
                }
            }

            // ---- Batched GEMM: one (O×C)·(C×bp) multiply per winograd
            // coordinate.
            for k in 0..t2 {
                gemm_f32(
                    &self.u[k * o * c..(k + 1) * o * c],
                    &self.v[k * c * bp..(k + 1) * c * bp],
                    &mut self.prod[k * o * bp..(k + 1) * o * bp],
                    o,
                    c,
                    bp,
                );
            }

            // ---- Gather: inverse-transform each (oc, tile) fibre. Tile is
            // again innermost so the t² source streams are read sequentially.
            for oc in 0..o {
                for b in 0..bp {
                    let tile = block_start + b;
                    let ty = tile / self.plan.tiles_x;
                    let tx = tile % self.plan.tiles_x;
                    for (k, value) in tile_tmp[..t2].iter_mut().enumerate() {
                        *value = self.prod[(k * o + oc) * bp + b];
                    }
                    match variant {
                        WinogradVariant::F2x2 => {
                            output_transform_f2x2(&tile_tmp, &mut tile_y, &mut tile_tmp2);
                        }
                        WinogradVariant::F4x4 => {
                            mat_mul_into(&self.at, &tile_tmp, &mut tile_tmp2, m, t, t);
                            mat_mul_rt_into(&tile_tmp2, &self.at, &mut tile_y, m, t, m);
                        }
                    }
                    if (ty + 1) * m <= out_h && (tx + 1) * m <= out_w {
                        // Full interior tile: contiguous row copies.
                        for dy in 0..m {
                            let dst = (oc * out_h + ty * m + dy) * out_w + tx * m;
                            output[dst..dst + m].copy_from_slice(&tile_y[dy * m..(dy + 1) * m]);
                        }
                    } else {
                        for dy in 0..m {
                            let oy = ty * m + dy;
                            if oy >= out_h {
                                break;
                            }
                            for dx in 0..m {
                                let ox = tx * m + dx;
                                if ox >= out_w {
                                    break;
                                }
                                output[(oc * out_h + oy) * out_w + ox] = tile_y[dy * m + dx];
                            }
                        }
                    }
                }
            }

            block_start += bp;
        }
        Ok(())
    }
}

/// Hand-specialized `V = Bᵀ d B` for F(2x2,3x3): both transforms are pure
/// additions/subtractions (all coefficients are 0/±1), so the generic small
/// matmul's multiply-and-test loop collapses to 32 adds.
///
/// `d` is the 4×4 input tile, `v` the 4×4 result, `tmp` a 4×4 intermediate.
#[inline]
fn input_transform_f2x2(d: &[f32], v: &mut [f32], tmp: &mut [f32]) {
    // tmp = Bᵀ d: row combinations.
    for j in 0..4 {
        tmp[j] = d[j] - d[8 + j];
        tmp[4 + j] = d[4 + j] + d[8 + j];
        tmp[8 + j] = d[8 + j] - d[4 + j];
        tmp[12 + j] = d[4 + j] - d[12 + j];
    }
    // v = tmp B: the same combinations along columns (B = Bᵀᵀ).
    for i in 0..4 {
        let r = i * 4;
        v[r] = tmp[r] - tmp[r + 2];
        v[r + 1] = tmp[r + 1] + tmp[r + 2];
        v[r + 2] = tmp[r + 2] - tmp[r + 1];
        v[r + 3] = tmp[r + 1] - tmp[r + 3];
    }
}

/// Hand-specialized `Y = Aᵀ m A` for F(2x2,3x3) (coefficients 0/±1).
///
/// `acc` is the 4×4 winograd-domain tile, `y` the 2×2 output tile, `tmp` a
/// 2×4 intermediate.
#[inline]
fn output_transform_f2x2(acc: &[f32], y: &mut [f32], tmp: &mut [f32]) {
    // tmp = Aᵀ acc (2x4).
    for j in 0..4 {
        tmp[j] = acc[j] + acc[4 + j] + acc[8 + j];
        tmp[4 + j] = acc[4 + j] - acc[8 + j] - acc[12 + j];
    }
    // y = tmp A (2x2).
    for i in 0..2 {
        let r = i * 4;
        y[i * 2] = tmp[r] + tmp[r + 1] + tmp[r + 2];
        y[i * 2 + 1] = tmp[r + 1] - tmp[r + 2] - tmp[r + 3];
    }
}

/// Reusable scratch buffers for the quantized winograd kernel.
///
/// The quantized kernel streams every primitive operation through an
/// instrumented [`Arithmetic`] backend, so its loop structure is part of the
/// experiment (the op sequence determines where faults land) — but its
/// scratch allocation is not. This object hoists every buffer out of the
/// per-tile/per-channel loops; it grows on demand and can be reused across
/// layers and images.
#[derive(Debug, Clone, Default)]
pub struct WinogradScratch {
    /// Transformed input tiles for all channels, `(C, t, t)`.
    pub(crate) v_tiles: Vec<i64>,
    /// Raw input tile, `t×t`.
    pub(crate) d: Vec<i64>,
    /// Transform intermediate, `t×t`.
    pub(crate) tmp: Vec<i64>,
    /// Channel-accumulated element-wise products, `t×t`.
    pub(crate) acc: Vec<i64>,
    /// Output-transform intermediate, `m×t`.
    pub(crate) tmp_out: Vec<i64>,
    /// Output tile, `m×m`.
    pub(crate) y: Vec<i64>,
}

impl WinogradScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the buffers for one kernel invocation.
    pub(crate) fn prepare(&mut self, variant: WinogradVariant, in_channels: usize) {
        let t = variant.input_tile();
        let m = variant.output_tile();
        resize_fill(&mut self.v_tiles, in_channels * t * t);
        resize_fill(&mut self.d, t * t);
        resize_fill(&mut self.tmp, t * t);
        resize_fill(&mut self.acc, t * t);
        resize_fill(&mut self.tmp_out, m * t);
        resize_fill(&mut self.y, m * m);
    }
}

fn resize_fill(buf: &mut Vec<i64>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// A planned quantized winograd convolution: pre-quantized winograd-domain
/// weights plus owned scratch, executable against any [`Arithmetic`] backend.
///
/// The per-call [`crate::winograd_conv_quantized`] entry point wraps this; a
/// long-lived `PreparedConvQuantized` additionally reuses its scratch across
/// images, which is what the fault-injection campaigns want.
#[derive(Debug, Clone)]
pub struct PreparedConvQuantized {
    plan: WinogradPlan,
    weights: WinogradWeights,
    scratch: WinogradScratch,
}

impl PreparedConvQuantized {
    /// Wrap pre-quantized winograd weights for the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::UnsupportedGeometry`] for unsupported layers
    /// and [`WinogradError::BufferSizeMismatch`] if the weights disagree with
    /// the shape's channel counts.
    pub fn new(weights: WinogradWeights, shape: &ConvShape) -> Result<Self, WinogradError> {
        let plan = WinogradPlan::new(shape, weights.variant())?;
        if weights.out_channels() != shape.out_channels
            || weights.in_channels() != shape.in_channels
        {
            return Err(WinogradError::BufferSizeMismatch {
                what: "winograd weight",
                expected: shape.out_channels * shape.in_channels,
                actual: weights.out_channels() * weights.in_channels(),
            });
        }
        Ok(Self {
            plan,
            weights,
            scratch: WinogradScratch::new(),
        })
    }

    /// The plan geometry.
    #[must_use]
    pub fn plan(&self) -> &WinogradPlan {
        &self.plan
    }

    /// The cached winograd-domain weights.
    #[must_use]
    pub fn weights(&self) -> &WinogradWeights {
        &self.weights
    }

    /// Execute the convolution through `arith`, attributing operations to
    /// `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input length.
    pub fn execute<A: Arithmetic>(
        &mut self,
        arith: &mut A,
        layer: usize,
        input: &[i32],
    ) -> Result<Vec<i64>, WinogradError> {
        crate::conv_winograd::winograd_conv_quantized_with_scratch(
            arith,
            layer,
            input,
            &self.weights,
            &self.plan.shape,
            &mut self.scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_standard::direct_conv_f32;
    use crate::transform::{F2X2_3X3, F4X4_3X3};
    use wgft_tensor::ConvGeometry;

    fn fixture(
        in_c: usize,
        out_c: usize,
        size: usize,
        pad: usize,
    ) -> (ConvShape, Vec<f32>, Vec<f32>) {
        let shape = ConvShape::new(in_c, out_c, ConvGeometry::square(size, 3, 1, pad));
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i * 31 % 23) as f32) * 0.17 - 1.9)
            .collect();
        let weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i * 17 % 13) as f32) * 0.11 - 0.7)
            .collect();
        (shape, input, weights)
    }

    #[test]
    fn plan_rejects_unsupported_geometry() {
        let strided = ConvShape::new(1, 1, ConvGeometry::square(8, 3, 2, 1));
        assert!(WinogradPlan::new(&strided, F2X2_3X3).is_err());
        let five = ConvShape::new(1, 1, ConvGeometry::square(8, 5, 1, 1));
        assert!(WinogradPlan::new(&five, F2X2_3X3).is_err());
    }

    #[test]
    fn plan_tile_grid_covers_output() {
        let shape = ConvShape::new(1, 1, ConvGeometry::square(5, 3, 1, 1));
        let plan = WinogradPlan::new(&shape, F2X2_3X3).unwrap();
        // 5x5 output, 2x2 tiles -> 3x3 grid.
        assert_eq!(plan.tiles_y(), 3);
        assert_eq!(plan.tiles_x(), 3);
        assert_eq!(plan.num_tiles(), 9);
        assert_eq!(plan.variant(), F2X2_3X3);
        assert_eq!(plan.shape(), &shape);
    }

    /// The planned scatter-GEMM path must agree with direct convolution over
    /// a grid of shapes: odd sizes, non-tile-multiple outputs, padding 0/1
    /// and both tile variants.
    #[test]
    fn planned_f32_matches_direct_across_shape_grid() {
        for &(in_c, out_c) in &[(1usize, 1usize), (2, 3), (3, 2)] {
            for &size in &[4usize, 5, 6, 7, 9] {
                for &pad in &[0usize, 1] {
                    let (shape, input, weights) = fixture(in_c, out_c, size, pad);
                    if shape.geometry.out_h() == 0 {
                        continue;
                    }
                    let direct = direct_conv_f32(&input, &weights, &shape).unwrap();
                    for variant in [F2X2_3X3, F4X4_3X3] {
                        let mut prepared = PreparedConvF32::new(&weights, &shape, variant).unwrap();
                        let out = prepared.execute(&input).unwrap();
                        for (i, (d, w)) in direct.iter().zip(out.iter()).enumerate() {
                            assert!(
                                (d - w).abs() < 2e-2,
                                "{variant} c{in_c}->{out_c} s{size} p{pad} idx {i}: direct {d} vs planned {w}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Planned quantized winograd must reproduce direct quantized convolution
    /// bit-for-bit across the same shape grid, for both tile variants.
    ///
    /// Exactness requires winograd-domain weights that are exactly integral:
    /// the F(2x2) filter transform halves sums (weights divisible by 4
    /// suffice) and the F(4x4) transform divides by up to 24 in each of two
    /// applications of `G`, so weights divisible by 576 stay exact.
    #[test]
    fn planned_quantized_matches_direct_across_shape_grid() {
        use crate::conv_standard::direct_conv_quantized;
        use wgft_faultsim::ExactArithmetic;

        for variant in [F2X2_3X3, F4X4_3X3] {
            let scale: i32 = match variant {
                WinogradVariant::F2x2 => 4,
                WinogradVariant::F4x4 => 576,
            };
            for &(in_c, out_c) in &[(1usize, 1usize), (2, 3)] {
                for &size in &[4usize, 5, 7] {
                    for &pad in &[0usize, 1] {
                        let shape =
                            ConvShape::new(in_c, out_c, ConvGeometry::square(size, 3, 1, pad));
                        if shape.geometry.out_h() == 0 {
                            continue;
                        }
                        let input_q: Vec<i32> = (0..shape.input_len())
                            .map(|i| ((i * 7 % 23) as i32) - 11)
                            .collect();
                        let weights_q: Vec<i32> = (0..shape.weight_len())
                            .map(|i| scale * (((i * 5 % 9) as i32) - 4))
                            .collect();

                        let mut exact = ExactArithmetic::new();
                        let direct =
                            direct_conv_quantized(&mut exact, 0, &input_q, &weights_q, &shape)
                                .unwrap();

                        let weights_f: Vec<f32> = weights_q.iter().map(|&w| w as f32).collect();
                        let u = transform_weights_f32(&weights_f, out_c, in_c, variant).unwrap();
                        let u_q: Vec<i32> = u.iter().map(|&x| x.round() as i32).collect();
                        for (uf, uq) in u.iter().zip(u_q.iter()) {
                            assert!(
                                (uf - *uq as f32).abs() < 1e-3,
                                "{variant}: transformed weight must be integral ({uf})"
                            );
                        }
                        let wino = WinogradWeights::new(variant, out_c, in_c, u_q).unwrap();
                        let mut prepared = PreparedConvQuantized::new(wino, &shape).unwrap();
                        let mut exact2 = ExactArithmetic::new();
                        let out = prepared.execute(&mut exact2, 0, &input_q).unwrap();
                        assert_eq!(
                            direct, out,
                            "{variant} c{in_c}->{out_c} s{size} p{pad}: quantized mismatch"
                        );

                        // Scratch reuse across images must not leak state.
                        let mut exact3 = ExactArithmetic::new();
                        let again = prepared.execute(&mut exact3, 0, &input_q).unwrap();
                        assert_eq!(out, again);
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_quantized_validates_channel_mismatch() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(4, 3, 1, 1));
        let weights = WinogradWeights::new(F2X2_3X3, 1, 1, vec![0; 16]).unwrap();
        assert!(PreparedConvQuantized::new(weights, &shape).is_err());
    }

    #[test]
    fn prepared_conv_is_reusable_across_images() {
        let (shape, input, weights) = fixture(2, 2, 8, 1);
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let first = prepared.execute(&input).unwrap();
        let other: Vec<f32> = input.iter().map(|x| x * 0.5 + 0.1).collect();
        let _ = prepared.execute(&other).unwrap();
        let again = prepared.execute(&input).unwrap();
        assert_eq!(
            first, again,
            "scratch reuse must not leak state between images"
        );
    }

    #[test]
    fn execute_into_validates_buffer_lengths() {
        let (shape, input, weights) = fixture(1, 1, 4, 1);
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let mut short = vec![0.0f32; shape.output_len() - 1];
        assert!(prepared.execute_into(&input, &mut short).is_err());
        assert!(prepared.execute(&input[..input.len() - 1]).is_err());
    }

    #[test]
    fn transformed_weight_layout_is_coordinate_major() {
        let (shape, _, weights) = fixture(2, 3, 4, 1);
        let prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let u_oc = transform_weights_f32(&weights, 3, 2, F2X2_3X3).unwrap();
        let t2 = 16;
        // u[(k, oc, ic)] must equal u_oc[(oc, ic, k)].
        for k in 0..t2 {
            for oc in 0..3 {
                for ic in 0..2 {
                    assert_eq!(
                        prepared.transformed_weights()[(k * 3 + oc) * 2 + ic],
                        u_oc[(oc * 2 + ic) * t2 + k]
                    );
                }
            }
        }
    }
}
