//! Standard (direct / im2col-equivalent) convolution kernels.
//!
//! These are the baseline the paper compares winograd convolution against
//! ("ST-Conv"). The quantized variant executes every multiply and add through
//! the instrumented [`Arithmetic`] backend so soft errors can be injected at
//! operation level.

use crate::WinogradError;
use serde::{Deserialize, Serialize};
use wgft_faultsim::Arithmetic;
use wgft_tensor::ConvGeometry;

/// Channel and spatial configuration of one convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Spatial geometry (input size, kernel, stride, padding).
    pub geometry: ConvGeometry,
}

impl ConvShape {
    /// Create a shape.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, geometry: ConvGeometry) -> Self {
        Self {
            in_channels,
            out_channels,
            geometry,
        }
    }

    /// Number of elements in the (C, H, W) input buffer.
    #[must_use]
    pub fn input_len(&self) -> usize {
        self.in_channels * self.geometry.in_h * self.geometry.in_w
    }

    /// Number of elements in the (O, C, kh, kw) weight buffer.
    #[must_use]
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.geometry.k_h * self.geometry.k_w
    }

    /// Number of elements in the (O, out_h, out_w) output buffer.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.out_channels * self.geometry.out_pixels()
    }

    fn check_buffers(&self, input_len: usize, weight_len: usize) -> Result<(), WinogradError> {
        if input_len != self.input_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "input",
                expected: self.input_len(),
                actual: input_len,
            });
        }
        if weight_len != self.weight_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "weight",
                expected: self.weight_len(),
                actual: weight_len,
            });
        }
        Ok(())
    }
}

/// Direct floating-point convolution (cross-correlation, as in every DNN
/// framework). Input is `(C, H, W)`, weights `(O, C, kh, kw)`, output
/// `(O, out_h, out_w)`.
///
/// # Errors
///
/// Returns [`WinogradError::BufferSizeMismatch`] if buffer lengths disagree
/// with `shape`.
pub fn direct_conv_f32(
    input: &[f32],
    weights: &[f32],
    shape: &ConvShape,
) -> Result<Vec<f32>, WinogradError> {
    shape.check_buffers(input.len(), weights.len())?;
    let g = &shape.geometry;
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let mut output = vec![0.0f32; shape.output_len()];
    let pad = g.padding as isize;
    for oc in 0..shape.out_channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0f32;
                for ic in 0..shape.in_channels {
                    for ky in 0..g.k_h {
                        for kx in 0..g.k_w {
                            let iy = (oy * g.stride + ky) as isize - pad;
                            let ix = (ox * g.stride + kx) as isize - pad;
                            if iy < 0 || ix < 0 || iy >= g.in_h as isize || ix >= g.in_w as isize {
                                continue;
                            }
                            let xin = input[(ic * g.in_h + iy as usize) * g.in_w + ix as usize];
                            let w =
                                weights[((oc * shape.in_channels + ic) * g.k_h + ky) * g.k_w + kx];
                            acc += xin * w;
                        }
                    }
                }
                output[(oc * out_h + oy) * out_w + ox] = acc;
            }
        }
    }
    Ok(output)
}

/// Direct quantized convolution over an instrumented [`Arithmetic`] backend.
///
/// Input and weights are raw Q-format words; the output is returned in the
/// wide accumulator domain (`frac_bits = input_frac + weight_frac`), ready to
/// be requantized by the caller.
///
/// Every multiply-accumulate issues exactly one `mul` and one `add` on the
/// backend, which is what makes the operation-level fault injection (and the
/// operation counting used by Figures 3 and 5) possible.
///
/// # Errors
///
/// Returns [`WinogradError::BufferSizeMismatch`] if buffer lengths disagree
/// with `shape`.
pub fn direct_conv_quantized<A: Arithmetic>(
    arith: &mut A,
    layer: usize,
    input: &[i32],
    weights: &[i32],
    shape: &ConvShape,
) -> Result<Vec<i64>, WinogradError> {
    shape.check_buffers(input.len(), weights.len())?;
    arith.begin_layer(layer);
    let g = &shape.geometry;
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let mut output = vec![0i64; shape.output_len()];
    let pad = g.padding as isize;
    for oc in 0..shape.out_channels {
        let wbase = oc * shape.in_channels * g.k_h * g.k_w;
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0i64;
                for ic in 0..shape.in_channels {
                    for ky in 0..g.k_h {
                        let iy = (oy * g.stride + ky) as isize - pad;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        let irow = (ic * g.in_h + iy as usize) * g.in_w;
                        let wrow = wbase + (ic * g.k_h + ky) * g.k_w;
                        for kx in 0..g.k_w {
                            let ix = (ox * g.stride + kx) as isize - pad;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let xin = i64::from(input[irow + ix as usize]);
                            let w = i64::from(weights[wrow + kx]);
                            let product = arith.mul(xin, w);
                            acc = arith.add(acc, product);
                        }
                    }
                }
                output[(oc * out_h + oy) * out_w + ox] = acc;
            }
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_faultsim::ExactArithmetic;

    fn small_shape() -> ConvShape {
        ConvShape::new(2, 3, ConvGeometry::square(5, 3, 1, 1))
    }

    fn ramp(n: usize, scale: f32, offset: f32) -> Vec<f32> {
        (0..n).map(|i| i as f32 * scale + offset).collect()
    }

    #[test]
    fn shape_lengths() {
        let s = small_shape();
        assert_eq!(s.input_len(), 2 * 25);
        assert_eq!(s.weight_len(), 3 * 2 * 9);
        assert_eq!(s.output_len(), 3 * 25);
    }

    #[test]
    fn buffer_checks_reject_wrong_sizes() {
        let s = small_shape();
        let input = vec![0.0f32; 3];
        let weights = vec![0.0f32; s.weight_len()];
        assert!(matches!(
            direct_conv_f32(&input, &weights, &s),
            Err(WinogradError::BufferSizeMismatch { what: "input", .. })
        ));
        let input = vec![0.0f32; s.input_len()];
        let weights = vec![0.0f32; 1];
        assert!(matches!(
            direct_conv_f32(&input, &weights, &s),
            Err(WinogradError::BufferSizeMismatch { what: "weight", .. })
        ));
    }

    #[test]
    fn identity_kernel_reproduces_input_channel() {
        // One input channel, one output channel, kernel = delta at centre.
        let geometry = ConvGeometry::square(4, 3, 1, 1);
        let shape = ConvShape::new(1, 1, geometry);
        let input = ramp(16, 1.0, 0.0);
        let mut weights = vec![0.0f32; 9];
        weights[4] = 1.0; // centre tap
        let out = direct_conv_f32(&input, &weights, &shape).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn known_small_convolution() {
        // 1x1x3x3 input, no padding, single 3x3 kernel of all ones -> sum.
        let geometry = ConvGeometry::square(3, 3, 1, 0);
        let shape = ConvShape::new(1, 1, geometry);
        let input = ramp(9, 1.0, 1.0); // 1..9
        let weights = vec![1.0f32; 9];
        let out = direct_conv_f32(&input, &weights, &shape).unwrap();
        assert_eq!(out, vec![45.0]);
    }

    #[test]
    fn quantized_matches_f32_for_integer_data() {
        let shape = small_shape();
        let input_f: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i % 11) as f32) - 5.0)
            .collect();
        let weights_f: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i % 7) as f32) - 3.0)
            .collect();
        let input_q: Vec<i32> = input_f.iter().map(|&x| x as i32).collect();
        let weights_q: Vec<i32> = weights_f.iter().map(|&x| x as i32).collect();

        let fref = direct_conv_f32(&input_f, &weights_f, &shape).unwrap();
        let mut arith = ExactArithmetic::new();
        let qout = direct_conv_quantized(&mut arith, 0, &input_q, &weights_q, &shape).unwrap();
        for (f, q) in fref.iter().zip(qout.iter()) {
            assert_eq!(*f as i64, *q);
        }
    }

    #[test]
    fn quantized_counts_one_mul_and_one_add_per_mac() {
        let geometry = ConvGeometry::square(4, 3, 1, 0);
        let shape = ConvShape::new(2, 3, geometry);
        let input = vec![1i32; shape.input_len()];
        let weights = vec![1i32; shape.weight_len()];
        let mut arith = ExactArithmetic::new();
        direct_conv_quantized(&mut arith, 5, &input, &weights, &shape).unwrap();
        // out 2x2, 3 out channels, 2 in channels, 9 taps, no padding skips.
        let macs = (2 * 2 * 3 * 2 * 9) as u64;
        let counts = arith.counters().layer(5).executed;
        assert_eq!(counts.mul, macs);
        assert_eq!(counts.add, macs);
    }

    #[test]
    fn stride_two_convolution_downsamples() {
        let geometry = ConvGeometry::square(4, 3, 2, 1);
        let shape = ConvShape::new(1, 1, geometry);
        assert_eq!(geometry.out_h(), 2);
        let input = ramp(16, 1.0, 0.0);
        let mut weights = vec![0.0f32; 9];
        weights[4] = 2.0;
        let out = direct_conv_f32(&input, &weights, &shape).unwrap();
        // Centre taps land on input pixels (0,0), (0,2), (2,0), (2,2).
        assert_eq!(out, vec![0.0, 4.0, 16.0, 20.0]);
    }
}
