//! Error type for winograd kernel configuration.

use std::error::Error;
use std::fmt;

/// Errors produced by the convolution kernels in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WinogradError {
    /// The convolution geometry is not supported by the winograd kernel
    /// (winograd requires a 3x3 kernel with unit stride).
    UnsupportedGeometry {
        /// Kernel size found.
        kernel: usize,
        /// Stride found.
        stride: usize,
    },
    /// Input, weight or output buffer lengths disagree with the declared shape.
    BufferSizeMismatch {
        /// What the buffer holds (for diagnostics).
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// A kernel was too small to decompose (DWM needs a kernel larger than 3x3).
    NothingToDecompose {
        /// The kernel size supplied.
        kernel: usize,
    },
}

impl fmt::Display for WinogradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WinogradError::UnsupportedGeometry { kernel, stride } => write!(
                f,
                "winograd convolution requires a 3x3 kernel with unit stride, got {kernel}x{kernel} stride {stride}"
            ),
            WinogradError::BufferSizeMismatch { what, expected, actual } => {
                write!(f, "{what} buffer holds {actual} elements, expected {expected}")
            }
            WinogradError::NothingToDecompose { kernel } => {
                write!(f, "a {kernel}x{kernel} kernel does not need decomposition")
            }
        }
    }
}

impl Error for WinogradError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = WinogradError::UnsupportedGeometry {
            kernel: 5,
            stride: 2,
        };
        assert!(e.to_string().contains("5x5"));
        let e = WinogradError::BufferSizeMismatch {
            what: "input",
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("input"));
        let e = WinogradError::NothingToDecompose { kernel: 3 };
        assert!(e.to_string().contains("3x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<WinogradError>();
    }
}
