//! Decomposable winograd method (DWM) for kernels larger than 3x3.
//!
//! Winograd's minimal filtering algorithm only covers small kernels with unit
//! stride. The paper notes that larger filters and strides "can also be split
//! to small ones according to the decomposable winograd method" (Huang et al.,
//! AAAI 2020), so that winograd convolution — and with it the fault-tolerance
//! benefit — applies without accuracy penalty. This module implements the
//! kernel-splitting half of DWM: a `K x K` kernel is zero-padded to a multiple
//! of 3 and split into 3x3 tiles; each tile convolves a shifted view of the
//! input with the ordinary F(m,3x3) algorithm and the partial outputs are
//! summed.

use crate::conv_standard::ConvShape;
use crate::conv_winograd::winograd_conv_f32;
use crate::transform::WinogradVariant;
use crate::WinogradError;
use serde::{Deserialize, Serialize};
use wgft_tensor::ConvGeometry;

/// One 3x3 tile of a decomposed larger kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTile {
    /// Row offset of this tile inside the original kernel.
    pub dy: usize,
    /// Column offset of this tile inside the original kernel.
    pub dx: usize,
    /// The 3x3 tile weights (row-major, zero-padded where the original kernel
    /// ends).
    pub weights: Vec<f32>,
}

/// Split a single-channel `k x k` kernel into 3x3 tiles.
///
/// # Errors
///
/// Returns [`WinogradError::NothingToDecompose`] if `k <= 3` — such kernels
/// run directly on the winograd datapath.
pub fn decompose_kernel(kernel: &[f32], k: usize) -> Result<Vec<KernelTile>, WinogradError> {
    if k <= 3 {
        return Err(WinogradError::NothingToDecompose { kernel: k });
    }
    if kernel.len() != k * k {
        return Err(WinogradError::BufferSizeMismatch {
            what: "kernel",
            expected: k * k,
            actual: kernel.len(),
        });
    }
    let tiles_per_side = k.div_ceil(3);
    let mut tiles = Vec::with_capacity(tiles_per_side * tiles_per_side);
    for ty in 0..tiles_per_side {
        for tx in 0..tiles_per_side {
            let mut weights = vec![0.0f32; 9];
            let mut non_zero = false;
            for ry in 0..3 {
                for rx in 0..3 {
                    let ky = ty * 3 + ry;
                    let kx = tx * 3 + rx;
                    if ky < k && kx < k {
                        let w = kernel[ky * k + kx];
                        weights[ry * 3 + rx] = w;
                        non_zero |= w != 0.0;
                    }
                }
            }
            if non_zero {
                tiles.push(KernelTile {
                    dy: ty * 3,
                    dx: tx * 3,
                    weights,
                });
            }
        }
    }
    Ok(tiles)
}

/// Convolve with a kernel larger than 3x3 by decomposing it into 3x3 tiles and
/// running each tile through the winograd kernel on a shifted input.
///
/// Only unit stride is supported (the stride half of DWM decomposes the input
/// into interleaved sub-grids and is out of scope for this reproduction — the
/// model zoo uses stride-2 only on 1x1/pooling paths, which never ride the
/// winograd datapath).
///
/// # Errors
///
/// Returns [`WinogradError::UnsupportedGeometry`] for strided convolutions,
/// [`WinogradError::NothingToDecompose`] for kernels that fit winograd
/// directly, and [`WinogradError::BufferSizeMismatch`] for wrong buffer sizes.
pub fn dwm_conv_f32(
    input: &[f32],
    weights: &[f32],
    shape: &ConvShape,
    variant: WinogradVariant,
) -> Result<Vec<f32>, WinogradError> {
    let g = &shape.geometry;
    if g.stride != 1 {
        return Err(WinogradError::UnsupportedGeometry {
            kernel: g.k_h,
            stride: g.stride,
        });
    }
    if g.k_h <= 3 {
        return Err(WinogradError::NothingToDecompose { kernel: g.k_h });
    }
    if input.len() != shape.input_len() {
        return Err(WinogradError::BufferSizeMismatch {
            what: "input",
            expected: shape.input_len(),
            actual: input.len(),
        });
    }
    if weights.len() != shape.weight_len() {
        return Err(WinogradError::BufferSizeMismatch {
            what: "weight",
            expected: shape.weight_len(),
            actual: weights.len(),
        });
    }

    let k = g.k_h;
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let mut output = vec![0.0f32; shape.output_len()];

    // Decompose each (oc, ic) kernel plane and group the tiles by offset so
    // that each shifted input is convolved once per offset with a 3x3 kernel
    // covering all channels.
    let tiles_per_side = k.div_ceil(3);
    for ty in 0..tiles_per_side {
        for tx in 0..tiles_per_side {
            let dy = ty * 3;
            let dx = tx * 3;
            // Build the 3x3 sub-kernel bank (O, C, 3, 3) for this offset.
            let mut sub_weights = vec![0.0f32; shape.out_channels * shape.in_channels * 9];
            let mut any = false;
            for oc in 0..shape.out_channels {
                for ic in 0..shape.in_channels {
                    let kbase = (oc * shape.in_channels + ic) * k * k;
                    let sbase = (oc * shape.in_channels + ic) * 9;
                    for ry in 0..3 {
                        for rx in 0..3 {
                            let ky = dy + ry;
                            let kx = dx + rx;
                            if ky < k && kx < k {
                                let w = weights[kbase + ky * k + kx];
                                sub_weights[sbase + ry * 3 + rx] = w;
                                any |= w != 0.0;
                            }
                        }
                    }
                }
            }
            if !any {
                continue;
            }
            // Build the shifted view the 3x3 sub-kernel convolves:
            // shifted[y][x] = input[y + dy - pad][x + dx - pad] (zero outside),
            // sized (out_h + 2) x (out_w + 2) so an un-padded 3x3 convolution
            // over it produces exactly out_h x out_w partial outputs that line
            // up with the final output grid.
            let (sh, sw) = (out_h + 2, out_w + 2);
            let pad = g.padding as isize;
            let mut shifted = vec![0.0f32; shape.in_channels * sh * sw];
            for ic in 0..shape.in_channels {
                for y in 0..sh {
                    for x in 0..sw {
                        let sy = y as isize + dy as isize - pad;
                        let sx = x as isize + dx as isize - pad;
                        if sy >= 0 && sx >= 0 && (sy as usize) < g.in_h && (sx as usize) < g.in_w {
                            shifted[(ic * sh + y) * sw + x] =
                                input[(ic * g.in_h + sy as usize) * g.in_w + sx as usize];
                        }
                    }
                }
            }
            let sub_geom = ConvGeometry {
                in_h: sh,
                in_w: sw,
                k_h: 3,
                k_w: 3,
                stride: 1,
                padding: 0,
            };
            let sub_shape = ConvShape::new(shape.in_channels, shape.out_channels, sub_geom);
            let partial = winograd_conv_f32(&shifted, &sub_weights, &sub_shape, variant)?;
            let (sub_h, sub_w) = (sub_geom.out_h(), sub_geom.out_w());
            debug_assert_eq!((sub_h, sub_w), (out_h, out_w));
            for oc in 0..shape.out_channels {
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        output[(oc * out_h + oy) * out_w + ox] +=
                            partial[(oc * sub_h + oy) * sub_w + ox];
                    }
                }
            }
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_standard::direct_conv_f32;
    use crate::transform::F2X2_3X3;

    #[test]
    fn decompose_rejects_small_kernels_and_bad_buffers() {
        assert!(matches!(
            decompose_kernel(&[0.0; 9], 3),
            Err(WinogradError::NothingToDecompose { .. })
        ));
        assert!(matches!(
            decompose_kernel(&[0.0; 10], 5),
            Err(WinogradError::BufferSizeMismatch { .. })
        ));
    }

    #[test]
    fn decompose_5x5_produces_four_tiles_covering_all_taps() {
        let kernel: Vec<f32> = (1..=25).map(|x| x as f32).collect();
        let tiles = decompose_kernel(&kernel, 5).unwrap();
        assert_eq!(tiles.len(), 4);
        let total: f32 = tiles.iter().map(|t| t.weights.iter().sum::<f32>()).sum();
        assert_eq!(total, kernel.iter().sum::<f32>());
        assert!(tiles.iter().any(|t| t.dy == 0 && t.dx == 0));
        assert!(tiles.iter().any(|t| t.dy == 3 && t.dx == 3));
    }

    #[test]
    fn decompose_skips_all_zero_tiles() {
        // A 5x5 kernel whose only non-zero taps live in the top-left 3x3.
        let mut kernel = vec![0.0f32; 25];
        kernel[0] = 1.0;
        kernel[6] = 2.0;
        let tiles = decompose_kernel(&kernel, 5).unwrap();
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].dy, 0);
        assert_eq!(tiles[0].dx, 0);
    }

    #[test]
    fn dwm_matches_direct_convolution_for_5x5_kernel() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(10, 5, 1, 2));
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i * 31 % 13) as f32) * 0.17 - 1.0)
            .collect();
        let weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i * 7 % 9) as f32) * 0.11 - 0.4)
            .collect();
        let direct = direct_conv_f32(&input, &weights, &shape).unwrap();
        let dwm = dwm_conv_f32(&input, &weights, &shape, F2X2_3X3).unwrap();
        assert_eq!(direct.len(), dwm.len());
        for (d, w) in direct.iter().zip(dwm.iter()) {
            assert!((d - w).abs() < 1e-3, "direct {d} vs dwm {w}");
        }
    }

    #[test]
    fn dwm_matches_direct_convolution_for_7x7_kernel_without_padding() {
        let shape = ConvShape::new(1, 2, ConvGeometry::square(12, 7, 1, 0));
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i % 19) as f32) * 0.05 - 0.4)
            .collect();
        let weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i % 5) as f32) * 0.2 - 0.4)
            .collect();
        let direct = direct_conv_f32(&input, &weights, &shape).unwrap();
        let dwm = dwm_conv_f32(&input, &weights, &shape, F2X2_3X3).unwrap();
        for (d, w) in direct.iter().zip(dwm.iter()) {
            assert!((d - w).abs() < 1e-3, "direct {d} vs dwm {w}");
        }
    }

    #[test]
    fn dwm_rejects_strided_and_small_kernels() {
        let strided = ConvShape::new(1, 1, ConvGeometry::square(8, 5, 2, 2));
        let input = vec![0.0; strided.input_len()];
        let weights = vec![0.0; strided.weight_len()];
        assert!(matches!(
            dwm_conv_f32(&input, &weights, &strided, F2X2_3X3),
            Err(WinogradError::UnsupportedGeometry { .. })
        ));
        let small = ConvShape::new(1, 1, ConvGeometry::square(8, 3, 1, 1));
        let input = vec![0.0; small.input_len()];
        let weights = vec![0.0; small.weight_len()];
        assert!(matches!(
            dwm_conv_f32(&input, &weights, &small, F2X2_3X3),
            Err(WinogradError::NothingToDecompose { .. })
        ));
    }
}
