//! Analytic operation-count models for standard and winograd convolution.
//!
//! The paper's analyses repeatedly need to know *how many* multiplications and
//! additions each convolution algorithm spends per layer: the layer-wise
//! vulnerability discussion of Figure 3 correlates accuracy with the
//! multiplication count, the fine-grained TMR of Figure 5 charges overhead per
//! protected operation, and the accelerator energy model of Figures 6–7 scales
//! runtime with the arithmetic volume. This module provides those counts
//! analytically; the instrumented kernels report the same numbers through
//! their [`wgft_faultsim::OpCounters`] (boundary pixels aside, see
//! [`ConvOpModel::count`]).

use crate::conv_standard::ConvShape;
use crate::transform::WinogradVariant;
use serde::{Deserialize, Serialize};
use std::fmt;
use wgft_faultsim::OpCount;

/// Which convolution algorithm a layer executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvAlgorithm {
    /// Standard (direct / im2col) convolution — "ST-Conv" in the paper.
    Standard,
    /// Winograd convolution with the given tile variant — "WG-Conv".
    Winograd(WinogradVariant),
}

impl ConvAlgorithm {
    /// The winograd algorithm with the paper's default F(2x2,3x3) tiles.
    #[must_use]
    pub const fn winograd_default() -> Self {
        ConvAlgorithm::Winograd(WinogradVariant::F2x2)
    }

    /// Short label used in reports ("ST-Conv" / "WG-Conv").
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            ConvAlgorithm::Standard => "ST-Conv",
            ConvAlgorithm::Winograd(_) => "WG-Conv",
        }
    }

    /// Whether this algorithm can execute the given layer shape
    /// (winograd needs a 3x3 kernel with unit stride; anything else falls back
    /// to standard convolution, as real winograd-enabled inference stacks do).
    #[must_use]
    pub fn supports(&self, shape: &ConvShape) -> bool {
        match self {
            ConvAlgorithm::Standard => true,
            ConvAlgorithm::Winograd(_) => shape.geometry.is_unit_stride_3x3(),
        }
    }
}

impl fmt::Display for ConvAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvAlgorithm::Standard => write!(f, "ST-Conv"),
            ConvAlgorithm::Winograd(v) => write!(f, "WG-Conv[{v}]"),
        }
    }
}

/// Analytic operation-count model for a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConvOpModel;

impl ConvOpModel {
    /// Count the multiplications and additions algorithm `algo` spends on a
    /// layer of shape `shape`.
    ///
    /// The standard-convolution count assumes interior pixels (boundary pixels
    /// skip the taps that fall on padding, so measured counts are slightly
    /// lower); the winograd count mirrors the instrumented kernel exactly:
    /// input/output transforms cost `nnz - 1` additions per produced element
    /// plus one multiplication per coefficient with magnitude greater than
    /// one, and the element-wise stage costs one multiply and one accumulate
    /// add per tile element per channel pair.
    #[must_use]
    pub fn count(shape: &ConvShape, algo: ConvAlgorithm) -> OpCount {
        match algo {
            ConvAlgorithm::Standard => Self::standard_count(shape),
            ConvAlgorithm::Winograd(variant) if algo.supports(shape) => {
                Self::winograd_count(shape, variant)
            }
            // Unsupported geometry falls back to the standard kernel.
            ConvAlgorithm::Winograd(_) => Self::standard_count(shape),
        }
    }

    fn standard_count(shape: &ConvShape) -> OpCount {
        let g = &shape.geometry;
        let macs = (g.out_pixels() * shape.out_channels * shape.in_channels * g.k_h * g.k_w) as u64;
        OpCount {
            mul: macs,
            add: macs,
        }
    }

    fn winograd_count(shape: &ConvShape, variant: WinogradVariant) -> OpCount {
        let g = &shape.geometry;
        let t = variant.input_tile();
        let m = variant.output_tile();
        let tiles = (g.out_h().div_ceil(m) * g.out_w().div_ceil(m)) as u64;
        let c = shape.in_channels as u64;
        let o = shape.out_channels as u64;

        // Input transform: Bt * d (t x t) then result * B.
        let bt_cost = transform_cost(variant.bt(), t, t, t);
        let input_transform = OpCount {
            mul: 2 * bt_cost.mul * tiles * c,
            add: 2 * bt_cost.add * tiles * c,
        };
        // Element-wise multiply-accumulate over input channels.
        let elementwise = OpCount {
            mul: tiles * c * o * (t * t) as u64,
            add: tiles * c * o * (t * t) as u64,
        };
        // Output transform: At * M (m x t) then result * A (m x m).
        let at_left = transform_cost(variant.at(), m, t, t);
        let at_right = transform_cost(variant.at(), m, t, m);
        let output_transform = OpCount {
            mul: (at_left.mul + at_right.mul) * tiles * o,
            add: (at_left.add + at_right.add) * tiles * o,
        };
        input_transform + elementwise + output_transform
    }
}

/// Cost of multiplying a constant integer matrix of shape `(rows x inner)` by
/// a dense matrix with `cols` columns, mirroring the instrumented
/// `integer_transform` kernel.
fn transform_cost(coef: &[i32], rows: usize, inner: usize, cols: usize) -> OpCount {
    let mut per_row_adds = 0u64;
    let mut per_row_muls = 0u64;
    for r in 0..rows {
        let row = &coef[r * inner..(r + 1) * inner];
        let nnz = row.iter().filter(|&&c| c != 0).count() as u64;
        let non_unit = row.iter().filter(|&&c| c != 0 && c != 1 && c != -1).count() as u64;
        per_row_adds += nnz.saturating_sub(1);
        per_row_muls += non_unit;
    }
    OpCount {
        mul: per_row_muls * cols as u64,
        add: per_row_adds * cols as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_winograd::{transform_weights_f32, winograd_conv_quantized, WinogradWeights};
    use crate::direct_conv_quantized;
    use crate::transform::F2X2_3X3;
    use wgft_faultsim::{Arithmetic, ExactArithmetic};
    use wgft_tensor::ConvGeometry;

    #[test]
    fn algorithm_labels_and_support() {
        assert_eq!(ConvAlgorithm::Standard.label(), "ST-Conv");
        assert_eq!(ConvAlgorithm::winograd_default().label(), "WG-Conv");
        assert_eq!(
            ConvAlgorithm::winograd_default().to_string(),
            "WG-Conv[F(2x2,3x3)]"
        );
        let conv3 = ConvShape::new(4, 4, ConvGeometry::square(8, 3, 1, 1));
        let conv1 = ConvShape::new(4, 4, ConvGeometry::square(8, 1, 1, 0));
        assert!(ConvAlgorithm::winograd_default().supports(&conv3));
        assert!(!ConvAlgorithm::winograd_default().supports(&conv1));
        assert!(ConvAlgorithm::Standard.supports(&conv1));
    }

    #[test]
    fn standard_count_is_macs() {
        let shape = ConvShape::new(8, 16, ConvGeometry::square(16, 3, 1, 1));
        let c = ConvOpModel::count(&shape, ConvAlgorithm::Standard);
        let macs = (16 * 16 * 16 * 8 * 9) as u64;
        assert_eq!(c.mul, macs);
        assert_eq!(c.add, macs);
    }

    #[test]
    fn winograd_reduces_multiplications_by_roughly_2_25x() {
        let shape = ConvShape::new(16, 16, ConvGeometry::square(16, 3, 1, 1));
        let st = ConvOpModel::count(&shape, ConvAlgorithm::Standard);
        let wg = ConvOpModel::count(&shape, ConvAlgorithm::winograd_default());
        let ratio = st.mul as f64 / wg.mul as f64;
        // The asymptotic gain is 36/16 = 2.25; transforms eat a little of it.
        assert!(ratio > 1.7 && ratio < 2.3, "mul reduction ratio {ratio}");
        assert!(wg.mul < st.mul);
    }

    #[test]
    fn unsupported_winograd_falls_back_to_standard_counts() {
        let shape = ConvShape::new(4, 4, ConvGeometry::square(8, 1, 1, 0));
        let st = ConvOpModel::count(&shape, ConvAlgorithm::Standard);
        let wg = ConvOpModel::count(&shape, ConvAlgorithm::winograd_default());
        assert_eq!(st, wg);
    }

    #[test]
    fn analytic_winograd_count_matches_instrumented_kernel() {
        let shape = ConvShape::new(3, 5, ConvGeometry::square(8, 3, 1, 1));
        let input = vec![1i32; shape.input_len()];
        let weights_f = vec![4.0f32; shape.weight_len()];
        let u = transform_weights_f32(&weights_f, 5, 3, F2X2_3X3).unwrap();
        let w =
            WinogradWeights::new(F2X2_3X3, 5, 3, u.iter().map(|&x| x as i32).collect()).unwrap();
        let mut arith = ExactArithmetic::new();
        winograd_conv_quantized(&mut arith, 0, &input, &w, &shape).unwrap();
        let measured = arith.counters().total();
        let analytic = ConvOpModel::count(&shape, ConvAlgorithm::winograd_default());
        assert_eq!(measured.mul, analytic.mul);
        assert_eq!(measured.add, analytic.add);
    }

    #[test]
    fn analytic_standard_count_matches_instrumented_kernel_without_padding() {
        // With no padding there are no boundary skips, so the counts agree exactly.
        let shape = ConvShape::new(2, 3, ConvGeometry::square(8, 3, 1, 0));
        let input = vec![1i32; shape.input_len()];
        let weights = vec![1i32; shape.weight_len()];
        let mut arith = ExactArithmetic::new();
        direct_conv_quantized(&mut arith, 0, &input, &weights, &shape).unwrap();
        let measured = arith.counters().total();
        let analytic = ConvOpModel::count(&shape, ConvAlgorithm::Standard);
        assert_eq!(measured, analytic);
    }

    #[test]
    fn f4x4_needs_fewer_elementwise_muls_than_f2x2() {
        let shape = ConvShape::new(16, 16, ConvGeometry::square(16, 3, 1, 1));
        let f2 = ConvOpModel::count(&shape, ConvAlgorithm::Winograd(WinogradVariant::F2x2));
        let f4 = ConvOpModel::count(&shape, ConvAlgorithm::Winograd(WinogradVariant::F4x4));
        assert!(
            f4.mul < f2.mul,
            "F4x4 {} should use fewer muls than F2x2 {}",
            f4.mul,
            f2.mul
        );
    }
}
