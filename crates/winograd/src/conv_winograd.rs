//! Winograd convolution kernels (floating point and quantized/instrumented).

use crate::conv_standard::ConvShape;
use crate::plan::{PreparedConvF32, WinogradScratch};
use crate::transform::{mat_mul_f32, transpose_f32, WinogradVariant};
use crate::WinogradError;
use serde::{Deserialize, Serialize};
use wgft_faultsim::Arithmetic;

/// Winograd-domain weights for the quantized datapath.
///
/// Holds the raw quantized words of `U = G g Gᵀ` for every
/// (output channel, input channel) pair, laid out as
/// `(out_channels, in_channels, tile, tile)`. The filter transform is applied
/// in floating point (it contains halving / division by 6) *before*
/// quantization, exactly as production int8/int16 winograd implementations do.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WinogradWeights {
    variant: WinogradVariant,
    out_channels: usize,
    in_channels: usize,
    data: Vec<i32>,
}

impl WinogradWeights {
    /// Wrap pre-quantized winograd-domain weights.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] if `data` does not hold
    /// `out_channels * in_channels * tile * tile` words.
    pub fn new(
        variant: WinogradVariant,
        out_channels: usize,
        in_channels: usize,
        data: Vec<i32>,
    ) -> Result<Self, WinogradError> {
        let t = variant.input_tile();
        let expected = out_channels * in_channels * t * t;
        if data.len() != expected {
            return Err(WinogradError::BufferSizeMismatch {
                what: "winograd weight",
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            variant,
            out_channels,
            in_channels,
            data,
        })
    }

    /// The tile variant these weights were transformed for.
    #[must_use]
    pub fn variant(&self) -> WinogradVariant {
        self.variant
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Number of input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Raw winograd-domain words.
    #[must_use]
    pub fn data(&self) -> &[i32] {
        &self.data
    }

    fn tile(&self, oc: usize, ic: usize) -> &[i32] {
        let t2 = self.variant.input_tile() * self.variant.input_tile();
        let base = (oc * self.in_channels + ic) * t2;
        &self.data[base..base + t2]
    }
}

/// Apply the filter transform `U = G g Gᵀ` to floating-point weights laid out
/// as `(out_channels, in_channels, 3, 3)`, producing
/// `(out_channels, in_channels, tile, tile)`.
///
/// # Errors
///
/// Returns [`WinogradError::BufferSizeMismatch`] if the weight buffer does not
/// hold `out_channels * in_channels * 9` values.
pub fn transform_weights_f32(
    weights: &[f32],
    out_channels: usize,
    in_channels: usize,
    variant: WinogradVariant,
) -> Result<Vec<f32>, WinogradError> {
    let expected = out_channels * in_channels * 9;
    if weights.len() != expected {
        return Err(WinogradError::BufferSizeMismatch {
            what: "weight",
            expected,
            actual: weights.len(),
        });
    }
    let t = variant.input_tile();
    let g = variant.g();
    let gt = transpose_f32(g, t, 3);
    let mut out = vec![0.0f32; out_channels * in_channels * t * t];
    for oc in 0..out_channels {
        for ic in 0..in_channels {
            let kbase = (oc * in_channels + ic) * 9;
            let kernel = &weights[kbase..kbase + 9];
            let gg = mat_mul_f32(g, kernel, t, 3, 3);
            let u = mat_mul_f32(&gg, &gt, t, 3, t);
            let obase = (oc * in_channels + ic) * t * t;
            out[obase..obase + t * t].copy_from_slice(&u);
        }
    }
    Ok(out)
}

/// Floating-point winograd convolution.
///
/// Takes *untransformed* weights `(O, C, 3, 3)` and produces the same output
/// as [`crate::direct_conv_f32`] up to floating-point rounding. Only 3x3 /
/// stride-1 geometries are supported — larger kernels go through the
/// decomposable winograd method ([`crate::dwm_conv_f32`]).
///
/// This is a convenience wrapper that builds a [`PreparedConvF32`] plan and
/// executes it once; callers running more than one image through the same
/// layer should prepare the plan themselves so the weight transform is paid
/// once.
///
/// # Errors
///
/// Returns [`WinogradError::UnsupportedGeometry`] for non-3x3 or strided
/// convolutions and [`WinogradError::BufferSizeMismatch`] for wrong buffer
/// lengths.
pub fn winograd_conv_f32(
    input: &[f32],
    weights: &[f32],
    shape: &ConvShape,
    variant: WinogradVariant,
) -> Result<Vec<f32>, WinogradError> {
    PreparedConvF32::new(weights, shape, variant)?.execute(input)
}

/// The seed's naive per-tile floating-point winograd kernel, kept as a
/// correctness and performance reference.
///
/// Unlike the planned path it re-derives the weight transform on every call
/// and allocates inside its tile loops; the `naive-vs-planned` micro-bench
/// quantifies exactly what the scatter–GEMM rewrite buys.
///
/// # Errors
///
/// Same as [`winograd_conv_f32`].
pub fn winograd_conv_f32_reference(
    input: &[f32],
    weights: &[f32],
    shape: &ConvShape,
    variant: WinogradVariant,
) -> Result<Vec<f32>, WinogradError> {
    let g = &shape.geometry;
    if !g.is_unit_stride_3x3() {
        return Err(WinogradError::UnsupportedGeometry {
            kernel: g.k_h,
            stride: g.stride,
        });
    }
    if input.len() != shape.input_len() {
        return Err(WinogradError::BufferSizeMismatch {
            what: "input",
            expected: shape.input_len(),
            actual: input.len(),
        });
    }
    let u_all = transform_weights_f32(weights, shape.out_channels, shape.in_channels, variant)?;
    let t = variant.input_tile();
    let m = variant.output_tile();
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let tiles_y = out_h.div_ceil(m);
    let tiles_x = out_w.div_ceil(m);
    let bt: Vec<f32> = variant.bt().iter().map(|&x| x as f32).collect();
    let b = transpose_f32(&bt, t, t);
    let at: Vec<f32> = variant.at().iter().map(|&x| x as f32).collect();
    let a = transpose_f32(&at, m, t);
    let pad = g.padding as isize;
    let mut output = vec![0.0f32; shape.output_len()];
    let mut v_tiles = vec![0.0f32; shape.in_channels * t * t];

    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            // Input transform for every channel of this tile.
            for ic in 0..shape.in_channels {
                let mut d = vec![0.0f32; t * t];
                for dy in 0..t {
                    for dx in 0..t {
                        let iy = (ty * m + dy) as isize - pad;
                        let ix = (tx * m + dx) as isize - pad;
                        d[dy * t + dx] = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < g.in_h
                            && (ix as usize) < g.in_w
                        {
                            input[(ic * g.in_h + iy as usize) * g.in_w + ix as usize]
                        } else {
                            0.0
                        };
                    }
                }
                let tmp = mat_mul_f32(&bt, &d, t, t, t);
                let v = mat_mul_f32(&tmp, &b, t, t, t);
                v_tiles[ic * t * t..(ic + 1) * t * t].copy_from_slice(&v);
            }
            // Element-wise multiply, accumulate over channels, inverse transform.
            for oc in 0..shape.out_channels {
                let mut acc = vec![0.0f32; t * t];
                for ic in 0..shape.in_channels {
                    let u = &u_all[(oc * shape.in_channels + ic) * t * t..][..t * t];
                    let v = &v_tiles[ic * t * t..(ic + 1) * t * t];
                    for k in 0..t * t {
                        acc[k] += u[k] * v[k];
                    }
                }
                let tmp = mat_mul_f32(&at, &acc, m, t, t);
                let y = mat_mul_f32(&tmp, &a, m, t, m);
                for dy in 0..m {
                    for dx in 0..m {
                        let oy = ty * m + dy;
                        let ox = tx * m + dx;
                        if oy < out_h && ox < out_w {
                            output[(oc * out_h + oy) * out_w + ox] = y[dy * m + dx];
                        }
                    }
                }
            }
        }
    }
    Ok(output)
}

/// Quantized winograd convolution over an instrumented [`Arithmetic`] backend.
///
/// * `input` — raw Q-format activation words, layout `(C, H, W)`;
/// * `weights` — pre-transformed, pre-quantized winograd-domain weights;
/// * the output is returned in the wide accumulator domain with
///   `frac_bits = input_frac + winograd_weight_frac`.
///
/// The input transform `Bᵀ d B` and the output transform `Aᵀ M A` have small
/// integer coefficients: multiplications by ±1 are free (sign handling), and
/// the few non-unit coefficients of F(4x4,3x3) are issued as `mul` operations.
/// Element-wise products issue one `mul` and one accumulate `add` each, so the
/// multiplication count per output pixel drops from `9·C` (direct) to
/// `(t²/m²)·C` — the reduction the paper's fault-tolerance benefit stems from.
///
/// # Errors
///
/// Returns [`WinogradError::UnsupportedGeometry`] for non-3x3 or strided
/// convolutions and [`WinogradError::BufferSizeMismatch`] for wrong buffer
/// lengths.
pub fn winograd_conv_quantized<A: Arithmetic>(
    arith: &mut A,
    layer: usize,
    input: &[i32],
    weights: &WinogradWeights,
    shape: &ConvShape,
) -> Result<Vec<i64>, WinogradError> {
    let mut scratch = WinogradScratch::new();
    winograd_conv_quantized_with_scratch(arith, layer, input, weights, shape, &mut scratch)
}

/// [`winograd_conv_quantized`] with caller-owned scratch buffers.
///
/// The instrumented kernel's loop structure is part of the experiment (the
/// operation sequence determines where injected faults land), but its
/// buffers are not: this entry point lets long-running callers — the
/// quantized network forward pass, fault campaigns, benches — reuse one
/// [`WinogradScratch`] across layers and images so nothing inside the
/// per-tile loops touches the heap.
///
/// # Errors
///
/// Same as [`winograd_conv_quantized`].
pub fn winograd_conv_quantized_with_scratch<A: Arithmetic>(
    arith: &mut A,
    layer: usize,
    input: &[i32],
    weights: &WinogradWeights,
    shape: &ConvShape,
    scratch: &mut WinogradScratch,
) -> Result<Vec<i64>, WinogradError> {
    let g = &shape.geometry;
    if !g.is_unit_stride_3x3() {
        return Err(WinogradError::UnsupportedGeometry {
            kernel: g.k_h,
            stride: g.stride,
        });
    }
    if input.len() != shape.input_len() {
        return Err(WinogradError::BufferSizeMismatch {
            what: "input",
            expected: shape.input_len(),
            actual: input.len(),
        });
    }
    if weights.out_channels() != shape.out_channels || weights.in_channels() != shape.in_channels {
        return Err(WinogradError::BufferSizeMismatch {
            what: "winograd weight",
            expected: shape.out_channels * shape.in_channels,
            actual: weights.out_channels() * weights.in_channels(),
        });
    }
    arith.begin_layer(layer);
    let variant = weights.variant();
    let t = variant.input_tile();
    let m = variant.output_tile();
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let tiles_y = out_h.div_ceil(m);
    let tiles_x = out_w.div_ceil(m);
    let bt = variant.bt();
    let at = variant.at();
    let pad = g.padding as isize;
    let mut output = vec![0i64; shape.output_len()];
    scratch.prepare(variant, shape.in_channels);
    let WinogradScratch {
        v_tiles,
        d,
        tmp,
        acc,
        tmp_out,
        y,
    } = scratch;

    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            // ---- Input transform: V_c = Bt d B (additions, small integer coefficients).
            for ic in 0..shape.in_channels {
                for dy in 0..t {
                    for dx in 0..t {
                        let iy = (ty * m + dy) as isize - pad;
                        let ix = (tx * m + dx) as isize - pad;
                        d[dy * t + dx] = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < g.in_h
                            && (ix as usize) < g.in_w
                        {
                            i64::from(input[(ic * g.in_h + iy as usize) * g.in_w + ix as usize])
                        } else {
                            0
                        };
                    }
                }
                // tmp = Bt * d
                integer_transform(arith, bt, d, tmp, t, t, t, MatrixSide::Left);
                // v = tmp * B  (B = Btᵀ, so v[i][j] = sum_k tmp[i][k] * Bt[j][k])
                let v_slice = &mut v_tiles[ic * t * t..(ic + 1) * t * t];
                integer_transform(
                    arith,
                    bt,
                    tmp,
                    v_slice,
                    t,
                    t,
                    t,
                    MatrixSide::RightTransposed,
                );
            }
            // ---- Element-wise multiply + channel accumulation + output transform.
            for oc in 0..shape.out_channels {
                acc.iter_mut().for_each(|v| *v = 0);
                for ic in 0..shape.in_channels {
                    let u = weights.tile(oc, ic);
                    let v = &v_tiles[ic * t * t..(ic + 1) * t * t];
                    for k in 0..t * t {
                        let product = arith.mul(i64::from(u[k]), v[k]);
                        acc[k] = arith.add(acc[k], product);
                    }
                }
                // tmp_out = At * acc  (m x t)
                integer_transform(arith, at, acc, tmp_out, m, t, t, MatrixSide::Left);
                // y = tmp_out * A  (m x m), A = Atᵀ.
                integer_transform(arith, at, tmp_out, y, m, t, m, MatrixSide::RightTransposed);
                for dy in 0..m {
                    for dx in 0..m {
                        let oy = ty * m + dy;
                        let ox = tx * m + dx;
                        if oy < out_h && ox < out_w {
                            output[(oc * out_h + oy) * out_w + ox] = y[dy * m + dx];
                        }
                    }
                }
            }
        }
    }
    Ok(output)
}

/// Which side the constant matrix sits on in an integer transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixSide {
    /// `out = Coef (rows x inner) * data (inner x cols)`.
    Left,
    /// `out = data (rows x inner) * Coefᵀ`, i.e.
    /// `out[i][j] = Σ_k data[i][k] · Coef[j][k]`, with `Coef` of shape `(cols x inner)`.
    RightTransposed,
}

/// Multiply a data tile by a constant integer matrix through the instrumented
/// backend. Coefficients 0 are skipped, ±1 are additions/subtractions, other
/// small integers are issued as multiplications (they are shift-add networks
/// in hardware, but a latch fault corrupts them the same way).
///
/// Public because the executable ABFT engine (`wgft-abft`) re-runs the same
/// instrumented transforms around its checksummed GEMMs — protected and
/// unprotected execution must corrupt the transform stage identically.
#[allow(clippy::too_many_arguments)]
pub fn integer_transform<A: Arithmetic>(
    arith: &mut A,
    coef: &[i32],
    data: &[i64],
    out: &mut [i64],
    rows: usize,
    inner: usize,
    cols: usize,
    side: MatrixSide,
) {
    for i in 0..rows {
        for j in 0..cols {
            let mut acc: Option<i64> = None;
            for k in 0..inner {
                let (c, x) = match side {
                    MatrixSide::Left => (coef[i * inner + k], data[k * cols + j]),
                    MatrixSide::RightTransposed => (coef[j * inner + k], data[i * inner + k]),
                };
                if c == 0 {
                    continue;
                }
                let term = match c {
                    1 => x,
                    -1 => -x,
                    _ => arith.mul(x, i64::from(c)),
                };
                acc = Some(match acc {
                    None => term,
                    Some(a) => arith.add(a, term),
                });
            }
            out[i * cols + j] = acc.unwrap_or(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_standard::direct_conv_f32;
    use crate::transform::{F2X2_3X3, F4X4_3X3};
    use wgft_faultsim::{Arithmetic, ExactArithmetic};
    use wgft_tensor::ConvGeometry;

    fn test_case(in_c: usize, out_c: usize, size: usize) -> (ConvShape, Vec<f32>, Vec<f32>) {
        let shape = ConvShape::new(in_c, out_c, ConvGeometry::square(size, 3, 1, 1));
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i * 37 % 17) as f32) * 0.21 - 1.7)
            .collect();
        let weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i * 13 % 11) as f32) * 0.07 - 0.35)
            .collect();
        (shape, input, weights)
    }

    #[test]
    fn weight_transform_shape_and_errors() {
        let u = transform_weights_f32(&vec![0.0; 2 * 3 * 9], 2, 3, F2X2_3X3).unwrap();
        assert_eq!(u.len(), 2 * 3 * 16);
        assert!(transform_weights_f32(&[0.0; 10], 2, 3, F2X2_3X3).is_err());
    }

    #[test]
    fn winograd_weights_constructor_validates_length() {
        assert!(WinogradWeights::new(F2X2_3X3, 2, 2, vec![0; 2 * 2 * 16]).is_ok());
        assert!(WinogradWeights::new(F2X2_3X3, 2, 2, vec![0; 63]).is_err());
        let w = WinogradWeights::new(F4X4_3X3, 1, 1, vec![0; 36]).unwrap();
        assert_eq!(w.variant(), F4X4_3X3);
        assert_eq!(w.out_channels(), 1);
        assert_eq!(w.in_channels(), 1);
        assert_eq!(w.data().len(), 36);
    }

    #[test]
    fn f32_winograd_matches_direct_for_f2x2() {
        let (shape, input, weights) = test_case(3, 4, 8);
        let direct = direct_conv_f32(&input, &weights, &shape).unwrap();
        let wino = winograd_conv_f32(&input, &weights, &shape, F2X2_3X3).unwrap();
        for (d, w) in direct.iter().zip(wino.iter()) {
            assert!((d - w).abs() < 1e-3, "direct {d} vs winograd {w}");
        }
    }

    #[test]
    fn f32_winograd_matches_direct_for_f4x4() {
        let (shape, input, weights) = test_case(2, 3, 9);
        let direct = direct_conv_f32(&input, &weights, &shape).unwrap();
        let wino = winograd_conv_f32(&input, &weights, &shape, F4X4_3X3).unwrap();
        for (d, w) in direct.iter().zip(wino.iter()) {
            assert!((d - w).abs() < 1e-2, "direct {d} vs winograd {w}");
        }
    }

    #[test]
    fn f32_winograd_handles_non_tile_multiple_outputs() {
        // 5x5 output is not a multiple of the 2x2 (or 4x4) tile.
        let (shape, input, weights) = test_case(2, 2, 5);
        let direct = direct_conv_f32(&input, &weights, &shape).unwrap();
        for variant in [F2X2_3X3, F4X4_3X3] {
            let wino = winograd_conv_f32(&input, &weights, &shape, variant).unwrap();
            for (d, w) in direct.iter().zip(wino.iter()) {
                assert!(
                    (d - w).abs() < 1e-2,
                    "{variant}: direct {d} vs winograd {w}"
                );
            }
        }
    }

    #[test]
    fn winograd_rejects_unsupported_geometry() {
        let shape = ConvShape::new(1, 1, ConvGeometry::square(8, 5, 1, 2));
        let input = vec![0.0; shape.input_len()];
        let weights = vec![0.0; shape.weight_len()];
        assert!(matches!(
            winograd_conv_f32(&input, &weights, &shape, F2X2_3X3),
            Err(WinogradError::UnsupportedGeometry { .. })
        ));
        let strided = ConvShape::new(1, 1, ConvGeometry::square(8, 3, 2, 1));
        let input = vec![0.0; strided.input_len()];
        let weights = vec![0.0; strided.weight_len()];
        assert!(winograd_conv_f32(&input, &weights, &strided, F2X2_3X3).is_err());
    }

    /// Quantized winograd with exactly-representable integer weights must
    /// reproduce the direct quantized convolution bit-for-bit (the filter
    /// transform halves sums, so weights divisible by 4 stay exact).
    #[test]
    fn quantized_winograd_matches_direct_quantized_exactly() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(6, 3, 1, 1));
        let input_q: Vec<i32> = (0..shape.input_len())
            .map(|i| ((i * 7 % 23) as i32) - 11)
            .collect();
        let weights_q: Vec<i32> = (0..shape.weight_len())
            .map(|i| 4 * (((i * 5 % 9) as i32) - 4))
            .collect();

        // Direct reference.
        let mut exact = ExactArithmetic::new();
        let direct =
            crate::direct_conv_quantized(&mut exact, 0, &input_q, &weights_q, &shape).unwrap();

        // Winograd path: transform the (integer-valued) weights in f32 — every
        // entry of U is an integer because the weights are multiples of 4.
        let weights_f: Vec<f32> = weights_q.iter().map(|&w| w as f32).collect();
        let u = transform_weights_f32(&weights_f, 3, 2, F2X2_3X3).unwrap();
        let u_q: Vec<i32> = u.iter().map(|&x| x.round() as i32).collect();
        for (uf, uq) in u.iter().zip(u_q.iter()) {
            assert!(
                (uf - *uq as f32).abs() < 1e-4,
                "transformed weight must be integral"
            );
        }
        let wino_weights = WinogradWeights::new(F2X2_3X3, 3, 2, u_q).unwrap();
        let mut exact2 = ExactArithmetic::new();
        let wino =
            winograd_conv_quantized(&mut exact2, 0, &input_q, &wino_weights, &shape).unwrap();

        assert_eq!(direct, wino);
    }

    #[test]
    fn quantized_winograd_uses_fewer_multiplications() {
        let shape = ConvShape::new(4, 4, ConvGeometry::square(8, 3, 1, 1));
        let input_q = vec![3i32; shape.input_len()];
        let weights_q = vec![2i32; shape.weight_len()];
        let mut direct_arith = ExactArithmetic::new();
        crate::direct_conv_quantized(&mut direct_arith, 0, &input_q, &weights_q, &shape).unwrap();

        let weights_f: Vec<f32> = weights_q.iter().map(|&w| w as f32).collect();
        let u = transform_weights_f32(&weights_f, 4, 4, F2X2_3X3).unwrap();
        let u_q: Vec<i32> = u.iter().map(|&x| x.round() as i32).collect();
        let wino_weights = WinogradWeights::new(F2X2_3X3, 4, 4, u_q).unwrap();
        let mut wino_arith = ExactArithmetic::new();
        winograd_conv_quantized(&mut wino_arith, 0, &input_q, &wino_weights, &shape).unwrap();

        let direct_mul = direct_arith.counters().total().mul;
        let wino_mul = wino_arith.counters().total().mul;
        assert!(
            (wino_mul as f64) < 0.55 * direct_mul as f64,
            "winograd should use far fewer multiplications: {wino_mul} vs {direct_mul}"
        );
    }

    #[test]
    fn quantized_winograd_validates_channel_mismatch() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(4, 3, 1, 1));
        let wino_weights = WinogradWeights::new(F2X2_3X3, 1, 1, vec![0; 16]).unwrap();
        let input = vec![0i32; shape.input_len()];
        let mut arith = ExactArithmetic::new();
        assert!(winograd_conv_quantized(&mut arith, 0, &input, &wino_weights, &shape).is_err());
    }

    #[test]
    fn quantized_winograd_records_ops_in_the_given_layer() {
        let shape = ConvShape::new(1, 1, ConvGeometry::square(4, 3, 1, 1));
        let input = vec![1i32; shape.input_len()];
        let u = transform_weights_f32(&[4.0; 9], 1, 1, F2X2_3X3).unwrap();
        let wino_weights =
            WinogradWeights::new(F2X2_3X3, 1, 1, u.iter().map(|&x| x as i32).collect()).unwrap();
        let mut arith = ExactArithmetic::new();
        winograd_conv_quantized(&mut arith, 7, &input, &wino_weights, &shape).unwrap();
        assert!(arith.counters().layer(7).executed.mul > 0);
        assert!(arith.counters().layer(7).executed.add > 0);
        assert_eq!(arith.counters().layer(0).executed.mul, 0);
    }
}
