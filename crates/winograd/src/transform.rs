//! Winograd transform matrices and tile geometry.
//!
//! The minimal filtering algorithm F(m x m, r x r) computes an `m x m` output
//! tile from an `(m + r - 1) x (m + r - 1)` input tile with
//! `(m + r - 1)^2` multiplications. The matrices below are the standard
//! Lavin & Gray constructions for the two tile sizes used with 3x3 kernels.
//!
//! The input transform `Bᵀ d B` and output transform `Aᵀ M A` have integer
//! coefficients and are therefore executed exactly on the quantized datapath
//! (through the instrumented [`wgft_faultsim::Arithmetic`] backend); the
//! filter transform `G g Gᵀ` has fractional coefficients and is applied
//! offline to the floating-point weights before they are quantized.

use serde::{Deserialize, Serialize};
use std::fmt;

/// F(2x2, 3x3): 4x4 input tile, 2x2 output tile, 16 multiplications
/// (2.25x fewer than the 36 a direct 3x3 convolution would need).
pub const F2X2_3X3: WinogradVariant = WinogradVariant::F2x2;

/// F(4x4, 3x3): 6x6 input tile, 4x4 output tile, 36 multiplications
/// (4x fewer than direct convolution) at the cost of a wider dynamic range in
/// the transformed domain.
pub const F4X4_3X3: WinogradVariant = WinogradVariant::F4x4;

/// Supported winograd tile sizes for 3x3 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WinogradVariant {
    /// F(2x2, 3x3) — the variant the paper (and most int8/int16 deployments)
    /// uses because its transforms only involve additions and halving.
    #[default]
    F2x2,
    /// F(4x4, 3x3) — larger tiles, fewer multiplications, larger numeric range.
    F4x4,
}

impl WinogradVariant {
    /// Output tile size `m`.
    #[must_use]
    pub const fn output_tile(&self) -> usize {
        match self {
            WinogradVariant::F2x2 => 2,
            WinogradVariant::F4x4 => 4,
        }
    }

    /// Input tile size `m + r - 1`.
    #[must_use]
    pub const fn input_tile(&self) -> usize {
        self.output_tile() + 2
    }

    /// Kernel size `r` (always 3).
    #[must_use]
    pub const fn kernel(&self) -> usize {
        3
    }

    /// Number of element-wise multiplications per tile.
    #[must_use]
    pub const fn muls_per_tile(&self) -> usize {
        self.input_tile() * self.input_tile()
    }

    /// The input transform matrix `Bᵀ` (row-major, `input_tile x input_tile`),
    /// with exactly representable integer coefficients.
    #[must_use]
    pub fn bt(&self) -> &'static [i32] {
        match self {
            WinogradVariant::F2x2 => &BT_F2X2,
            WinogradVariant::F4x4 => &BT_F4X4,
        }
    }

    /// The output transform matrix `Aᵀ` (row-major,
    /// `output_tile x input_tile`), with integer coefficients.
    #[must_use]
    pub fn at(&self) -> &'static [i32] {
        match self {
            WinogradVariant::F2x2 => &AT_F2X2,
            WinogradVariant::F4x4 => &AT_F4X4,
        }
    }

    /// The filter transform matrix `G` (row-major, `input_tile x 3`),
    /// applied to floating-point weights offline.
    #[must_use]
    pub fn g(&self) -> &'static [f32] {
        match self {
            WinogradVariant::F2x2 => &G_F2X2,
            WinogradVariant::F4x4 => &G_F4X4,
        }
    }

    /// Both supported variants.
    #[must_use]
    pub const fn all() -> [WinogradVariant; 2] {
        [WinogradVariant::F2x2, WinogradVariant::F4x4]
    }
}

impl fmt::Display for WinogradVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WinogradVariant::F2x2 => write!(f, "F(2x2,3x3)"),
            WinogradVariant::F4x4 => write!(f, "F(4x4,3x3)"),
        }
    }
}

#[rustfmt::skip]
const BT_F2X2: [i32; 16] = [
    1,  0, -1,  0,
    0,  1,  1,  0,
    0, -1,  1,  0,
    0,  1,  0, -1,
];

#[rustfmt::skip]
const G_F2X2: [f32; 12] = [
    1.0,  0.0, 0.0,
    0.5,  0.5, 0.5,
    0.5, -0.5, 0.5,
    0.0,  0.0, 1.0,
];

#[rustfmt::skip]
const AT_F2X2: [i32; 8] = [
    1, 1,  1,  0,
    0, 1, -1, -1,
];

#[rustfmt::skip]
const BT_F4X4: [i32; 36] = [
    4,  0, -5,  0, 1, 0,
    0, -4, -4,  1, 1, 0,
    0,  4, -4, -1, 1, 0,
    0, -2, -1,  2, 1, 0,
    0,  2, -1, -2, 1, 0,
    0,  4,  0, -5, 0, 1,
];

#[rustfmt::skip]
const G_F4X4: [f32; 18] = [
     1.0 / 4.0,   0.0,         0.0,
    -1.0 / 6.0,  -1.0 / 6.0,  -1.0 / 6.0,
    -1.0 / 6.0,   1.0 / 6.0,  -1.0 / 6.0,
     1.0 / 24.0,  1.0 / 12.0,  1.0 / 6.0,
     1.0 / 24.0, -1.0 / 12.0,  1.0 / 6.0,
     0.0,         0.0,         1.0,
];

#[rustfmt::skip]
const AT_F4X4: [i32; 24] = [
    1, 1,  1, 1,  1, 0,
    0, 1, -1, 2, -2, 0,
    0, 1,  1, 4,  4, 0,
    0, 1, -1, 8, -8, 1,
];

/// Multiply two small row-major f32 matrices: `C (m x n) = A (m x k) * B (k x n)`.
///
/// # Panics
///
/// Panics (debug assertion) if the slices are shorter than the declared shapes.
#[must_use]
pub(crate) fn mat_mul_f32(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert!(a.len() >= m * k && b.len() >= k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Non-allocating small matmul: `out (m x n) = a (m x k) * b (k x n)`.
///
/// Used inside the planned winograd per-tile loops, which must not touch the
/// heap.
pub(crate) fn mat_mul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && out.len() >= m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Non-allocating small matmul against a transposed coefficient matrix:
/// `out[i][j] = Σ_p a[i][p] * coef[j][p]`, with `a` of shape `(m x k)` and
/// `coef` of shape `(n x k)` (i.e. `out = a · coefᵀ`).
///
/// The winograd transforms store `Bᵀ` and `Aᵀ` row-major; multiplying by `B`
/// or `A` on the right is exactly this transposed access pattern, so the
/// planned kernels never materialize the transposes.
pub(crate) fn mat_mul_rt_into(
    a: &[f32],
    coef: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert!(a.len() >= m * k && coef.len() >= n * k && out.len() >= m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * coef[j * k + p];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Transpose a small row-major matrix.
#[must_use]
pub(crate) fn transpose_f32(a: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_geometry() {
        assert_eq!(F2X2_3X3.output_tile(), 2);
        assert_eq!(F2X2_3X3.input_tile(), 4);
        assert_eq!(F2X2_3X3.muls_per_tile(), 16);
        assert_eq!(F4X4_3X3.output_tile(), 4);
        assert_eq!(F4X4_3X3.input_tile(), 6);
        assert_eq!(F4X4_3X3.muls_per_tile(), 36);
        assert_eq!(F2X2_3X3.kernel(), 3);
        assert_eq!(WinogradVariant::all().len(), 2);
        assert_eq!(WinogradVariant::default(), WinogradVariant::F2x2);
    }

    #[test]
    fn matrix_dimensions_match_geometry() {
        for v in WinogradVariant::all() {
            let t = v.input_tile();
            let m = v.output_tile();
            assert_eq!(v.bt().len(), t * t);
            assert_eq!(v.at().len(), m * t);
            assert_eq!(v.g().len(), t * 3);
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(F2X2_3X3.to_string(), "F(2x2,3x3)");
        assert_eq!(F4X4_3X3.to_string(), "F(4x4,3x3)");
    }

    /// The defining property of the winograd matrices: for any 1-D signal `d`
    /// (length input_tile) and kernel `g` (length 3),
    /// `Aᵀ [(G g) ⊙ (Bᵀ d)]` equals the valid 1-D convolution (correlation)
    /// of `d` with `g`.
    #[test]
    fn one_dimensional_agreement_with_direct_convolution() {
        for v in WinogradVariant::all() {
            let t = v.input_tile();
            let m = v.output_tile();
            let d: Vec<f32> = (0..t).map(|i| (i as f32) * 0.7 - 1.3).collect();
            let g = [0.4f32, -0.2, 0.9];

            // Transformed operands.
            let bt: Vec<f32> = v.bt().iter().map(|&x| x as f32).collect();
            let at: Vec<f32> = v.at().iter().map(|&x| x as f32).collect();
            let u = mat_mul_f32(v.g(), &g, t, 3, 1);
            let vdom = mat_mul_f32(&bt, &d, t, t, 1);
            let elem: Vec<f32> = u.iter().zip(&vdom).map(|(a, b)| a * b).collect();
            let y = mat_mul_f32(&at, &elem, m, t, 1);

            // Direct correlation.
            for (i, &yi) in y.iter().enumerate() {
                let direct: f32 = (0..3).map(|j| d[i + j] * g[j]).sum();
                assert!(
                    (yi - direct).abs() < 1e-4,
                    "{v}: output {i} winograd {yi} direct {direct}"
                );
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let t = transpose_f32(&a, 3, 4);
        let back = transpose_f32(&t, 4, 3);
        assert_eq!(a, back);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 4.0);
    }
}
