//! Fast, **uninstrumented** quantized winograd execution.
//!
//! The instrumented quantized kernel
//! ([`crate::winograd_conv_quantized_with_scratch`]) issues every primitive
//! multiply and add through an [`wgft_faultsim::Arithmetic`] backend so that
//! soft errors can strike individual operations — which makes it inherently
//! scalar and by far the slowest path in the system. Every *fault-free*
//! evaluation (campaign clean baselines, ABFT range calibration, BER=0 sweep
//! cells) pays that cost for nothing: with no faults to inject, the backend
//! is a pure pass-through.
//!
//! [`PreparedConvQuantizedFast`] is the uninstrumented twin, mirroring the
//! planned `f32` engine ([`crate::PreparedConvF32`]): cached `(t², O, C)`
//! winograd-domain weights, a cache-blocked scatter→GEMM→gather schedule with
//! zero per-tile allocation, lane-per-tile SoA F(2x2) transforms, the blocked
//! [`wgft_tensor::gemm_i32`] microkernel (`i32` operands, `i64` accumulators)
//! and rayon batch chunking.
//!
//! # Bit-identity guarantee
//!
//! Integer arithmetic is exact and associative, so the fast path computes
//! **bit-identical** `i64` accumulators to the instrumented kernel running on
//! [`wgft_faultsim::ExactArithmetic`] — for every block size, batch chunking
//! and thread count — provided no intermediate overflows. Inputs bounded by
//! the per-variant [`WinogradVariant::max_fast_input`] (far above any
//! quantized storage width for every tile size) keep the `i32` winograd
//! domain exact; the bound is checked by a debug assertion. This is the
//! property that lets fault-free campaign work route onto this engine
//! without perturbing a single journaled result.

use crate::conv_standard::ConvShape;
use crate::conv_winograd::WinogradWeights;
use crate::plan::{
    store_output_tile, WinogradPlan, BLOCK_BUDGET, MAX_TILE, PAR_GEMM_MIN_BLOCK, SOA_GROUP,
};
use crate::WinogradError;
use std::sync::Arc;
use wgft_tensor::gemm_i32;

/// Largest input magnitude the fast engine's `i32` winograd domain is exact
/// for on the classic small tiles: F(4x4,3x3) row coefficient sums reach 10,
/// so a two-sided transform scales magnitudes by at most 100 — `2²⁴ · 100 <
/// 2³¹`. The engine itself enforces the tighter per-variant
/// [`WinogradVariant::max_fast_input`] (F(6x6)'s scaled transforms amplify
/// by 5184); quantized activations are bounded by the storage width
/// (`< 2¹⁶`), leaving ample headroom for every tile size.
pub const MAX_FAST_INPUT: i32 = 1 << 24;

/// Fault-free value maxima observed during one
/// [`PreparedConvQuantizedFast::execute_into_recording`] call — exactly the
/// winograd-stage quantities the executable ABFT range calibration records
/// (`wgft_abft::LayerRanges::v_max` / `gemm_max`); output-accumulator maxima
/// are the caller's to take from the output buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantizedRangeRecord {
    /// Max |value| of winograd-domain transformed inputs (`V = Bᵀ d B`).
    pub v_max: i64,
    /// Max |value| of winograd-domain GEMM products (before `Aᵀ M A`).
    pub gemm_max: i64,
}

impl QuantizedRangeRecord {
    /// Fresh record with zero maxima.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A planned, uninstrumented quantized winograd convolution with cached
/// repacked weights and owned scratch buffers.
///
/// Prepare once per layer, execute once per image (or batch):
///
/// ```
/// use wgft_tensor::ConvGeometry;
/// use wgft_winograd::{
///     ConvShape, PreparedConvQuantizedFast, WinogradWeights, F2X2_3X3,
/// };
///
/// # fn main() -> Result<(), wgft_winograd::WinogradError> {
/// let shape = ConvShape::new(2, 3, ConvGeometry::square(8, 3, 1, 1));
/// let weights = WinogradWeights::new(F2X2_3X3, 3, 2, vec![1; 3 * 2 * 16])?;
/// let mut prepared = PreparedConvQuantizedFast::new(&weights, &shape)?;
/// let input = vec![7i32; shape.input_len()];
/// let output = prepared.execute(&input)?;
/// assert_eq!(output.len(), shape.output_len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PreparedConvQuantizedFast {
    plan: WinogradPlan,
    /// Winograd-domain weights repacked `(t², O, C)`: one `(O×C)` GEMM
    /// operand per winograd coordinate. Shared between clones (`Arc`), so a
    /// per-worker clone of a prepared plan costs scratch buffers only — not
    /// a copy of every layer's weights.
    u: Arc<Vec<i32>>,
    /// Cache-budget tile count per scatter→GEMM→gather block (see
    /// [`crate::PreparedConvF32`]).
    block_budget: usize,
    /// Scatter buffer for one block, `(t², C, block)`; grown on demand.
    v: Vec<i32>,
    /// GEMM product buffer for one block, `(t², O, block)`; grown on demand.
    prod: Vec<i64>,
    /// Number of times the batched entry point has run (silent-fallback
    /// guard, mirroring the f32 engine).
    batched_executions: u64,
}

impl PreparedConvQuantizedFast {
    /// Repack pre-quantized winograd-domain weights for the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::UnsupportedGeometry`] for non-3x3/strided
    /// layers and [`WinogradError::BufferSizeMismatch`] if the weights
    /// disagree with the shape's channel counts.
    pub fn new(weights: &WinogradWeights, shape: &ConvShape) -> Result<Self, WinogradError> {
        let plan = WinogradPlan::new(shape, weights.variant())?;
        if weights.out_channels() != shape.out_channels
            || weights.in_channels() != shape.in_channels
        {
            return Err(WinogradError::BufferSizeMismatch {
                what: "winograd weight",
                expected: shape.out_channels * shape.in_channels,
                actual: weights.out_channels() * weights.in_channels(),
            });
        }
        let (o, c) = (shape.out_channels, shape.in_channels);
        let t = weights.variant().input_tile();
        let t2 = t * t;
        // (O, C, t²) -> (t², O, C)
        let data = weights.data();
        let mut u = vec![0i32; t2 * o * c];
        for oc in 0..o {
            for ic in 0..c {
                let src = &data[(oc * c + ic) * t2..(oc * c + ic + 1) * t2];
                for (k, &value) in src.iter().enumerate() {
                    u[(k * o + oc) * c + ic] = value;
                }
            }
        }
        let p = plan.num_tiles();
        let block_budget = (BLOCK_BUDGET / (t2 * c.max(o)).max(1)).max(8);
        let block = block_budget.min(p.max(8));
        Ok(Self {
            plan,
            u: Arc::new(u),
            block_budget,
            v: vec![0; t2 * c * block],
            prod: vec![0; t2 * o * block],
            batched_executions: 0,
        })
    }

    /// The plan geometry.
    #[must_use]
    pub fn plan(&self) -> &WinogradPlan {
        &self.plan
    }

    /// The repacked `(t², O, C)` winograd-domain weights.
    #[must_use]
    pub fn transformed_weights(&self) -> &[i32] {
        &self.u
    }

    /// How many times the batched entry point has run.
    #[must_use]
    pub fn batched_executions(&self) -> u64 {
        self.batched_executions
    }

    /// Execute the convolution into a freshly allocated wide-accumulator
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input length.
    pub fn execute(&mut self, input: &[i32]) -> Result<Vec<i64>, WinogradError> {
        let mut output = vec![0i64; self.plan.shape().output_len()];
        self.execute_into(input, &mut output)?;
        Ok(output)
    }

    /// Execute the convolution into a caller-provided accumulator buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input or
    /// output length.
    pub fn execute_into(&mut self, input: &[i32], output: &mut [i64]) -> Result<(), WinogradError> {
        self.validate_batch(input, 1, output)?;
        self.execute_batch_chunked(input, 1, output, 1, None);
        Ok(())
    }

    /// [`PreparedConvQuantizedFast::execute_into`] that additionally folds
    /// the fault-free winograd-stage value maxima into `record` — the fast
    /// twin of the instrumented ABFT calibration pass. Runs the serial
    /// single-chunk schedule; the output accumulators are bit-identical to
    /// the unrecorded execution.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input or
    /// output length.
    pub fn execute_into_recording(
        &mut self,
        input: &[i32],
        output: &mut [i64],
        record: &mut QuantizedRangeRecord,
    ) -> Result<(), WinogradError> {
        self.validate_batch(input, 1, output)?;
        self.execute_batch_chunked(input, 1, output, 1, Some(record));
        Ok(())
    }

    /// Execute the convolution on a batch of `n_images` images into a
    /// freshly allocated `(N, O, H', W')` accumulator buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input length.
    pub fn execute_batch(
        &mut self,
        input: &[i32],
        n_images: usize,
    ) -> Result<Vec<i64>, WinogradError> {
        let mut output = vec![0i64; n_images * self.plan.shape().output_len()];
        self.execute_batch_into(input, n_images, &mut output)?;
        Ok(output)
    }

    /// Execute the convolution on `n_images` contiguous `(N, C, H, W)`
    /// images, writing `(N, O, H', W')` accumulators to `output`.
    ///
    /// All `N·P` tiles share the scatter→GEMM→gather schedule (tile blocks
    /// span image boundaries); with a multi-thread rayon pool the batch
    /// splits into image-aligned chunks with worker-local scratch. Because
    /// the kernel is exact integer arithmetic, results are bit-identical to
    /// `n_images` single-image executions for every chunking and thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`WinogradError::BufferSizeMismatch`] on a wrong input or
    /// output length.
    pub fn execute_batch_into(
        &mut self,
        input: &[i32],
        n_images: usize,
        output: &mut [i64],
    ) -> Result<(), WinogradError> {
        self.validate_batch(input, n_images, output)?;
        self.batched_executions += 1;
        if n_images == 0 {
            return Ok(());
        }
        let threads = rayon::current_num_threads();
        let chunk = if threads <= 1 {
            n_images
        } else {
            n_images.div_ceil(threads)
        };
        self.execute_batch_chunked(input, n_images, output, chunk, None);
        Ok(())
    }

    fn validate_batch(
        &self,
        input: &[i32],
        n_images: usize,
        output: &[i64],
    ) -> Result<(), WinogradError> {
        let shape = self.plan.shape();
        if input.len() != n_images * shape.input_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "input",
                expected: n_images * shape.input_len(),
                actual: input.len(),
            });
        }
        if output.len() != n_images * shape.output_len() {
            return Err(WinogradError::BufferSizeMismatch {
                what: "output",
                expected: n_images * shape.output_len(),
                actual: output.len(),
            });
        }
        debug_assert!(
            {
                let bound = self.plan.variant().max_fast_input();
                input.iter().all(|&x| x.abs() <= bound)
            },
            "fast quantized winograd input exceeds the exact i32 winograd domain"
        );
        Ok(())
    }

    /// Effective tiles-per-block for a range holding `total_tiles`.
    fn block_for(&self, total_tiles: usize) -> usize {
        self.block_budget.min(total_tiles.max(1))
    }

    /// Run the batch split into chunks of `images_per_chunk` images (the
    /// same schedule as [`crate::PreparedConvF32`]).
    fn execute_batch_chunked(
        &mut self,
        input: &[i32],
        n_images: usize,
        output: &mut [i64],
        images_per_chunk: usize,
        record: Option<&mut QuantizedRangeRecord>,
    ) {
        let shape = *self.plan.shape();
        let (in_len, out_len) = (shape.input_len(), shape.output_len());
        let (o, c) = (shape.out_channels, shape.in_channels);
        let t2 = self.plan.variant().input_tile() * self.plan.variant().input_tile();
        let images_per_chunk = images_per_chunk.clamp(1, n_images.max(1));
        if images_per_chunk >= n_images || in_len == 0 || out_len == 0 {
            let bp = self.block_for(n_images * self.plan.num_tiles());
            grow(&mut self.v, t2 * c * bp);
            grow(&mut self.prod, t2 * o * bp);
            let parallel_gemms =
                rayon::current_num_threads() > 1 && o * c * bp >= PAR_GEMM_MIN_BLOCK;
            run_images_q(
                &self.plan,
                &self.u,
                bp,
                &mut self.v,
                &mut self.prod,
                input,
                n_images,
                output,
                parallel_gemms && record.is_none(),
                record,
            );
            return;
        }
        debug_assert!(record.is_none(), "recording runs the serial schedule");
        use rayon::prelude::*;
        let plan = &self.plan;
        let u = &self.u;
        let bp = self.block_for(images_per_chunk * plan.num_tiles());
        let jobs: Vec<(&[i32], &mut [i64])> = input
            .chunks(images_per_chunk * in_len)
            .zip(output.chunks_mut(images_per_chunk * out_len))
            .collect();
        jobs.into_par_iter()
            .map(|(in_chunk, out_chunk)| {
                let images = in_chunk.len() / in_len.max(1);
                let mut v = vec![0i32; t2 * c * bp];
                let mut prod = vec![0i64; t2 * o * bp];
                run_images_q(
                    plan, u, bp, &mut v, &mut prod, in_chunk, images, out_chunk, false, None,
                );
            })
            .collect::<Vec<()>>();
    }
}

fn grow<T: Copy + Default>(buf: &mut Vec<T>, len: usize) {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
}

/// Scatter→GEMM→gather over all `n_images · P` tiles of a contiguous image
/// range — the integer twin of the f32 engine's block loop. `block` bounds
/// the tiles per buffer fill; `v` and `prod` must hold `t²·C·block` and
/// `t²·O·block` elements.
#[allow(clippy::too_many_arguments)]
fn run_images_q(
    plan: &WinogradPlan,
    u: &[i32],
    block: usize,
    v: &mut [i32],
    prod: &mut [i64],
    input: &[i32],
    n_images: usize,
    output: &mut [i64],
    parallel_gemms: bool,
    mut record: Option<&mut QuantizedRangeRecord>,
) {
    let shape = *plan.shape();
    let (o, c) = (shape.out_channels, shape.in_channels);
    let (in_len, out_len) = (shape.input_len(), shape.output_len());
    let variant = plan.variant();
    let t = variant.input_tile();
    let m = variant.output_tile();
    let t2 = t * t;
    let p = plan.num_tiles();
    let total_tiles = n_images * p;
    let (out_h, out_w) = (shape.geometry.out_h(), shape.geometry.out_w());
    let bt = variant.bt();
    let at = variant.at();

    let mut tile_d = [0i32; MAX_TILE];
    let mut tile_d64 = [0i64; MAX_TILE];
    let mut tile_tmp = [0i64; MAX_TILE];
    let mut tile_tmp2 = [0i64; MAX_TILE];
    let mut tile_y = [0i64; MAX_TILE];

    let mut block_start = 0usize;
    while block_start < total_tiles {
        let bp = block.min(total_tiles - block_start);

        // ---- Scatter: V[k][ic][b] = (Bᵀ d B)[k] for every tile/channel of
        // the block, tile-innermost so the t² destination streams are
        // written sequentially. Full groups of SOA_GROUP tiles take the
        // lane-per-tile runtime-t kernel (i32 adds and mul-adds, exact under
        // the input bound); ragged tails take the per-tile path in i64 with
        // an exact narrowing store.
        for ic in 0..c {
            let mut b = 0usize;
            while b < bp {
                if b + SOA_GROUP <= bp {
                    scatter_group_q(plan, input, in_len, block_start + b, ic, v, c, bp, b, bt);
                    b += SOA_GROUP;
                    continue;
                }
                let g = block_start + b;
                let image_input = &input[(g / p) * in_len..(g / p + 1) * in_len];
                plan.load_tile(image_input, g % p, ic, &mut tile_d[..t2]);
                for (wide, &narrow) in tile_d64[..t2].iter_mut().zip(tile_d[..t2].iter()) {
                    *wide = i64::from(narrow);
                }
                // tmp = Bᵀ d, v = tmp B (B = Bᵀᵀ).
                int_mat_mul_left(bt, &tile_d64, &mut tile_tmp, t, t, t);
                int_mat_mul_rt(bt, &tile_tmp, &mut tile_tmp2, t, t, t);
                for (k, &value) in tile_tmp2[..t2].iter().enumerate() {
                    debug_assert!(
                        i32::try_from(value).is_ok(),
                        "winograd-domain value {value} exceeds i32"
                    );
                    v[(k * c + ic) * bp + b] = value as i32;
                }
                b += 1;
            }
        }
        if let Some(record) = record.as_deref_mut() {
            let block_max = v[..t2 * c * bp]
                .iter()
                .map(|&x| i64::from(x).abs())
                .max()
                .unwrap_or(0);
            record.v_max = record.v_max.max(block_max);
        }

        // ---- Batched integer GEMM: one (O×C)·(C×bp) multiply per winograd
        // coordinate; `i64` accumulators exactly as the instrumented kernel
        // produces. In parallel mode the t² independent GEMMs fan out across
        // the pool (disjoint `prod` chunks).
        if parallel_gemms {
            debug_assert!(record.is_none(), "recording is always serial");
            use rayon::prelude::*;
            let v_ro: &[i32] = v;
            let jobs: Vec<(usize, &mut [i64])> =
                prod[..t2 * o * bp].chunks_mut(o * bp).enumerate().collect();
            jobs.into_par_iter()
                .map(|(k, prod_k)| {
                    gemm_i32(
                        &u[k * o * c..(k + 1) * o * c],
                        &v_ro[k * c * bp..(k + 1) * c * bp],
                        prod_k,
                        o,
                        c,
                        bp,
                    );
                })
                .collect::<Vec<()>>();
        } else {
            for k in 0..t2 {
                gemm_i32(
                    &u[k * o * c..(k + 1) * o * c],
                    &v[k * c * bp..(k + 1) * c * bp],
                    &mut prod[k * o * bp..(k + 1) * o * bp],
                    o,
                    c,
                    bp,
                );
            }
        }
        if let Some(record) = record.as_deref_mut() {
            let block_max = prod[..t2 * o * bp]
                .iter()
                .map(|&x| x.unsigned_abs().min(i64::MAX as u64) as i64)
                .max()
                .unwrap_or(0);
            record.gemm_max = record.gemm_max.max(block_max);
        }

        // ---- Gather: inverse-transform each (oc, tile) fibre, tile
        // innermost; full groups use the lane-per-tile runtime-t i64 kernel.
        for oc in 0..o {
            let mut b = 0usize;
            while b < bp {
                if b + SOA_GROUP <= bp {
                    gather_group_q(
                        plan,
                        prod,
                        o,
                        bp,
                        oc,
                        b,
                        block_start + b,
                        out_len,
                        output,
                        at,
                    );
                    b += SOA_GROUP;
                    continue;
                }
                let g = block_start + b;
                let tile = g % p;
                let out_base = (g / p) * out_len;
                let ty = tile / plan.tiles_x();
                let tx = tile % plan.tiles_x();
                for (k, value) in tile_tmp2[..t2].iter_mut().enumerate() {
                    *value = prod[(k * o + oc) * bp + b];
                }
                // tmp = Aᵀ M, y = tmp A (A = Aᵀᵀ).
                int_mat_mul_left(at, &tile_tmp2, &mut tile_tmp, m, t, t);
                int_mat_mul_rt(at, &tile_tmp, &mut tile_y, m, t, m);
                store_output_tile(output, out_base, &tile_y, oc, ty, tx, m, out_h, out_w);
                b += 1;
            }
        }

        block_start += bp;
    }
}

/// `out (rows×cols) = coef (rows×inner) · data (inner×cols)` on plain
/// integer arithmetic — the uninstrumented twin of
/// [`crate::integer_transform`] with [`crate::MatrixSide::Left`]; exact
/// integer sums, so the results are identical.
fn int_mat_mul_left(
    coef: &[i32],
    data: &[i64],
    out: &mut [i64],
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for i in 0..rows {
        for j in 0..cols {
            let mut acc = 0i64;
            for k in 0..inner {
                acc += i64::from(coef[i * inner + k]) * data[k * cols + j];
            }
            out[i * cols + j] = acc;
        }
    }
}

/// `out (rows×cols) = data (rows×inner) · coefᵀ` with `coef (cols×inner)` —
/// the uninstrumented twin of [`crate::integer_transform`] with
/// [`crate::MatrixSide::RightTransposed`].
fn int_mat_mul_rt(
    coef: &[i32],
    data: &[i64],
    out: &mut [i64],
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for i in 0..rows {
        for j in 0..cols {
            let mut acc = 0i64;
            for k in 0..inner {
                acc += data[i * inner + k] * i64::from(coef[j * inner + k]);
            }
            out[i * cols + j] = acc;
        }
    }
}

/// Lane-wise `acc += coef · src` in `i32`, specialized on the coefficient:
/// transform matrices are dominated by 0/±1 entries, so most terms are a
/// skipped column, a vector add or a vector subtract. Integer arithmetic is
/// exact, so this is bit-identical to the per-tile i64 path under the
/// [`WinogradVariant::max_fast_input`] bound (which keeps every intermediate
/// in i32 range).
#[inline]
fn lane_axpy_i32(acc: &mut [i32; SOA_GROUP], coef: i32, src: &[i32; SOA_GROUP]) {
    match coef {
        0 => {}
        1 => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                *a += s;
            }
        }
        -1 => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                *a -= s;
            }
        }
        _ => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                *a += coef * s;
            }
        }
    }
}

/// Lane-wise `acc += coef · src` in `i64` for the gather side.
#[inline]
fn lane_axpy_i64(acc: &mut [i64; SOA_GROUP], coef: i64, src: &[i64; SOA_GROUP]) {
    match coef {
        0 => {}
        1 => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                *a += s;
            }
        }
        -1 => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                *a -= s;
            }
        }
        _ => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                *a += coef * s;
            }
        }
    }
}

/// Input transform `Bᵀ d B` for [`SOA_GROUP`] consecutive tiles of one
/// channel, lane-per-tile in `i32` at any tile size. Identical arithmetic to
/// the per-tile path — integer ops are exact, so the results are
/// bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline]
fn scatter_group_q(
    plan: &WinogradPlan,
    input: &[i32],
    in_len: usize,
    g0: usize,
    ic: usize,
    v: &mut [i32],
    c: usize,
    bp: usize,
    b0: usize,
    bt: &[i32],
) {
    let p = plan.num_tiles();
    let t = plan.variant().input_tile();
    let t2 = t * t;
    let mut dsoa = [[0i32; SOA_GROUP]; MAX_TILE];
    let mut tile_d = [0i32; MAX_TILE];
    #[allow(clippy::needless_range_loop)] // `gi` is the SoA lane, not a row
    for gi in 0..SOA_GROUP {
        let g = g0 + gi;
        let image_input = &input[(g / p) * in_len..(g / p + 1) * in_len];
        plan.load_tile(image_input, g % p, ic, &mut tile_d[..t2]);
        for (pos, &value) in tile_d[..t2].iter().enumerate() {
            dsoa[pos][gi] = value;
        }
    }
    // tmp = Bᵀ d, lane-wise: tmp[i][j] = Σ_k Bᵀ[i][k] · d[k][j].
    let mut tmp = [[0i32; SOA_GROUP]; MAX_TILE];
    for i in 0..t {
        for j in 0..t {
            let mut acc = [0i32; SOA_GROUP];
            for k in 0..t {
                lane_axpy_i32(&mut acc, bt[i * t + k], &dsoa[k * t + j]);
            }
            tmp[i * t + j] = acc;
        }
    }
    // v_rows = tmp B (B = Bᵀᵀ), lane-wise, stored straight into the scatter
    // buffer: out[i][j] = Σ_k tmp[i][k] · Bᵀ[j][k].
    for i in 0..t {
        for j in 0..t {
            let mut acc = [0i32; SOA_GROUP];
            for k in 0..t {
                lane_axpy_i32(&mut acc, bt[j * t + k], &tmp[i * t + k]);
            }
            v[((i * t + j) * c + ic) * bp + b0..][..SOA_GROUP].copy_from_slice(&acc);
        }
    }
}

/// Output transform `Aᵀ m A` for [`SOA_GROUP`] consecutive tiles of one
/// output channel, lane-per-tile in `i64` at any tile size. Identical
/// arithmetic to the per-tile path.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gather_group_q(
    plan: &WinogradPlan,
    prod: &[i64],
    o: usize,
    bp: usize,
    oc: usize,
    b0: usize,
    g0: usize,
    out_len: usize,
    output: &mut [i64],
    at: &[i32],
) {
    let p = plan.num_tiles();
    let g = plan.shape().geometry;
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let t = plan.variant().input_tile();
    let m = plan.variant().output_tile();
    let t2 = t * t;
    let mut msoa = [[0i64; SOA_GROUP]; MAX_TILE];
    for (k, row) in msoa.iter_mut().enumerate().take(t2) {
        row.copy_from_slice(&prod[(k * o + oc) * bp + b0..][..SOA_GROUP]);
    }
    // tmp = Aᵀ m (m×t rows), lane-wise.
    let mut tmp = [[0i64; SOA_GROUP]; MAX_TILE];
    for i in 0..m {
        for j in 0..t {
            let mut acc = [0i64; SOA_GROUP];
            for k in 0..t {
                lane_axpy_i64(&mut acc, i64::from(at[i * t + k]), &msoa[k * t + j]);
            }
            tmp[i * t + j] = acc;
        }
    }
    // y = tmp A (m×m), lane-wise.
    let mut ysoa = [[0i64; SOA_GROUP]; MAX_TILE];
    for i in 0..m {
        for j in 0..m {
            let mut acc = [0i64; SOA_GROUP];
            for k in 0..t {
                lane_axpy_i64(&mut acc, i64::from(at[j * t + k]), &tmp[i * t + k]);
            }
            ysoa[i * m + j] = acc;
        }
    }
    let mut tile_y = [0i64; MAX_TILE];
    #[allow(clippy::needless_range_loop)] // `gi` is the SoA lane, not a row
    for gi in 0..SOA_GROUP {
        let gt = g0 + gi;
        let tile = gt % p;
        let out_base = (gt / p) * out_len;
        let ty = tile / plan.tiles_x();
        let tx = tile % plan.tiles_x();
        for (pos, value) in tile_y[..m * m].iter_mut().enumerate() {
            *value = ysoa[pos][gi];
        }
        store_output_tile(
            output,
            out_base,
            &tile_y[..m * m],
            oc,
            ty,
            tx,
            m,
            out_h,
            out_w,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_winograd::winograd_conv_quantized;
    use crate::transform::{WinogradVariant, F2X2_3X3, F4X4_3X3, F6X6_3X3};
    use wgft_faultsim::ExactArithmetic;
    use wgft_tensor::ConvGeometry;

    fn weights_for(variant: WinogradVariant, o: usize, c: usize) -> WinogradWeights {
        let t2 = variant.input_tile() * variant.input_tile();
        let data: Vec<i32> = (0..o * c * t2)
            .map(|i| ((i * 13 % 29) as i32) - 14)
            .collect();
        WinogradWeights::new(variant, o, c, data).unwrap()
    }

    fn input_for(shape: &ConvShape, salt: usize) -> Vec<i32> {
        (0..shape.input_len())
            .map(|i| (((i * 7 + salt * 31) % 47) as i32) - 23)
            .collect()
    }

    /// The tentpole guarantee: the fast engine is bit-identical to the
    /// instrumented kernel on exact arithmetic, over the full shape grid —
    /// channels, odd spatial sizes, non-tile-multiple outputs, padding, both
    /// variants.
    #[test]
    fn fast_path_is_bit_identical_to_instrumented_across_shape_grid() {
        for variant in [F2X2_3X3, F4X4_3X3, F6X6_3X3] {
            for &(in_c, out_c) in &[(1usize, 1usize), (2, 3), (3, 2), (4, 4)] {
                for &size in &[4usize, 5, 6, 7, 9, 12] {
                    for &pad in &[0usize, 1] {
                        let shape =
                            ConvShape::new(in_c, out_c, ConvGeometry::square(size, 3, 1, pad));
                        if shape.geometry.out_h() == 0 {
                            continue;
                        }
                        let weights = weights_for(variant, out_c, in_c);
                        let input = input_for(&shape, size + pad);
                        let mut exact = ExactArithmetic::new();
                        let reference =
                            winograd_conv_quantized(&mut exact, 0, &input, &weights, &shape)
                                .unwrap();
                        let mut fast = PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
                        let out = fast.execute(&input).unwrap();
                        assert_eq!(
                            reference, out,
                            "{variant} c{in_c}->{out_c} s{size} p{pad}: fast path diverged"
                        );
                        // Scratch reuse across images must not leak state.
                        let again = fast.execute(&input).unwrap();
                        assert_eq!(out, again);
                    }
                }
            }
        }
    }

    /// Batched execution must be bit-identical to per-image execution,
    /// including ragged sizes where tile blocks straddle image boundaries.
    #[test]
    fn batched_execution_matches_per_image_bit_for_bit() {
        for variant in [F2X2_3X3, F4X4_3X3, F6X6_3X3] {
            for &(in_c, out_c) in &[(1usize, 1usize), (2, 3)] {
                for &size in &[5usize, 9] {
                    let shape = ConvShape::new(in_c, out_c, ConvGeometry::square(size, 3, 1, 1));
                    let weights = weights_for(variant, out_c, in_c);
                    for n in [1usize, 2, 3, 5] {
                        let batch: Vec<i32> =
                            (0..n).flat_map(|img| input_for(&shape, img)).collect();
                        let mut prepared =
                            PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
                        let batched = prepared.execute_batch(&batch, n).unwrap();
                        let mut single = PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
                        for img in 0..n {
                            let out = single
                                .execute(&batch[img * shape.input_len()..][..shape.input_len()])
                                .unwrap();
                            assert_eq!(
                                out,
                                &batched[img * shape.output_len()..][..shape.output_len()],
                                "{variant} c{in_c}->{out_c} s{size} n{n} image {img}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Every image-chunking of a batch — including ragged tail chunks — must
    /// produce identical accumulators, since chunking is exactly what the
    /// parallel path does.
    #[test]
    fn batch_chunking_is_bit_identical_for_every_chunk_size() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(9, 3, 1, 1));
        let weights = weights_for(F2X2_3X3, 3, 2);
        let n = 5usize;
        let batch: Vec<i32> = (0..n).flat_map(|img| input_for(&shape, img)).collect();
        let mut reference = PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
        let expected = reference.execute_batch(&batch, n).unwrap();
        for chunk in 1..=n + 1 {
            let mut prepared = PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
            let mut out = vec![i64::MIN; n * shape.output_len()];
            prepared.execute_batch_chunked(&batch, n, &mut out, chunk, None);
            assert_eq!(expected, out, "chunk size {chunk}");
        }
    }

    /// The range recorder must observe exactly the maxima of the
    /// winograd-domain values the instrumented ABFT calibration observes —
    /// recomputed here with an independent naive reference.
    #[test]
    fn recording_observes_the_naive_winograd_stage_maxima() {
        for variant in [F2X2_3X3, F4X4_3X3, F6X6_3X3] {
            let shape = ConvShape::new(2, 3, ConvGeometry::square(7, 3, 1, 1));
            let weights = weights_for(variant, 3, 2);
            let input = input_for(&shape, 3);
            let mut fast = PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
            let mut output = vec![0i64; shape.output_len()];
            let mut record = QuantizedRangeRecord::new();
            fast.execute_into_recording(&input, &mut output, &mut record)
                .unwrap();
            // Recording must not perturb the accumulators.
            let plain = fast.execute(&input).unwrap();
            assert_eq!(plain, output);

            // Naive reference maxima: transform every tile/channel.
            let t = variant.input_tile();
            let t2 = t * t;
            let m = variant.output_tile();
            let plan = WinogradPlan::new(&shape, variant).unwrap();
            let (mut v_max, mut gemm_max) = (0i64, 0i64);
            let mut v_tiles = vec![0i64; shape.in_channels * t2];
            for tile in 0..plan.num_tiles() {
                for ic in 0..shape.in_channels {
                    let mut d = vec![0i32; t2];
                    plan.load_tile(&input, tile, ic, &mut d);
                    let d64: Vec<i64> = d.iter().map(|&x| i64::from(x)).collect();
                    let mut tmp = vec![0i64; t2];
                    let mut vt = vec![0i64; t2];
                    int_mat_mul_left(variant.bt(), &d64, &mut tmp, t, t, t);
                    int_mat_mul_rt(variant.bt(), &tmp, &mut vt, t, t, t);
                    for (k, &value) in vt.iter().enumerate() {
                        v_max = v_max.max(value.abs());
                        v_tiles[ic * t2 + k] = value;
                    }
                }
                for oc in 0..shape.out_channels {
                    for k in 0..t2 {
                        let mut acc = 0i64;
                        for ic in 0..shape.in_channels {
                            let w = weights.data()[(oc * shape.in_channels + ic) * t2 + k];
                            acc += i64::from(w) * v_tiles[ic * t2 + k];
                        }
                        gemm_max = gemm_max.max(acc.abs());
                    }
                }
            }
            assert!(m <= t);
            assert_eq!(record.v_max, v_max, "{variant}: v_max");
            assert_eq!(record.gemm_max, gemm_max, "{variant}: gemm_max");
        }
    }

    #[test]
    fn constructor_validates_channel_mismatch_and_geometry() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(4, 3, 1, 1));
        let wrong = weights_for(F2X2_3X3, 1, 1);
        assert!(PreparedConvQuantizedFast::new(&wrong, &shape).is_err());
        let strided = ConvShape::new(2, 3, ConvGeometry::square(8, 3, 2, 1));
        let weights = weights_for(F2X2_3X3, 3, 2);
        assert!(PreparedConvQuantizedFast::new(&weights, &strided).is_err());
    }

    #[test]
    fn validates_buffer_lengths_and_counts_batches() {
        let shape = ConvShape::new(1, 2, ConvGeometry::square(5, 3, 1, 1));
        let weights = weights_for(F2X2_3X3, 2, 1);
        let mut prepared = PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
        let input = input_for(&shape, 0);
        assert!(prepared.execute(&input[..input.len() - 1]).is_err());
        let mut short = vec![0i64; shape.output_len() - 1];
        assert!(prepared.execute_into(&input, &mut short).is_err());
        assert_eq!(prepared.batched_executions(), 0);
        let batch: Vec<i32> = (0..2).flat_map(|img| input_for(&shape, img)).collect();
        assert!(prepared.execute_batch(&batch, 3).is_err());
        let _ = prepared.execute_batch(&batch, 2).unwrap();
        assert_eq!(prepared.batched_executions(), 1);
        // Zero images is a no-op, not an error.
        assert!(prepared.execute_batch(&[], 0).unwrap().is_empty());
    }

    #[test]
    fn repacked_weight_layout_is_coordinate_major() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(4, 3, 1, 1));
        let weights = weights_for(F2X2_3X3, 3, 2);
        let prepared = PreparedConvQuantizedFast::new(&weights, &shape).unwrap();
        let t2 = 16;
        for k in 0..t2 {
            for oc in 0..3 {
                for ic in 0..2 {
                    assert_eq!(
                        prepared.transformed_weights()[(k * 3 + oc) * 2 + ic],
                        weights.data()[(oc * 2 + ic) * t2 + k]
                    );
                }
            }
        }
    }
}
