//! Shard execution: evaluate the pending work units a shard owns, appending
//! each result to the journal as soon as it completes.

use crate::error::SweepError;
use crate::journal::{Journal, Manifest, UnitResult};
use crate::progress::{ProgressSink, ProgressSnapshot};
use crate::unit::{Granularity, WorkUnit};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wgft_core::FaultToleranceCampaign;
use wgft_faultsim::BitErrorRate;

/// Which slice of the unit table one process executes: units with
/// `id % shards == index`. `K` processes with indices `0..K` cover the whole
/// run; any subset covers a resumable part of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    shards: u64,
    index: u64,
}

impl ShardSpec {
    /// A shard specification.
    ///
    /// # Errors
    ///
    /// Fails if `shards` is zero or `index >= shards`.
    pub fn new(shards: u64, index: u64) -> Result<Self, SweepError> {
        if shards == 0 {
            return Err(SweepError::InvalidParameter {
                name: "shards",
                reason: "shard count must be at least 1".to_string(),
            });
        }
        if index >= shards {
            return Err(SweepError::InvalidParameter {
                name: "shard-index",
                reason: format!("index {index} out of range for {shards} shard(s)"),
            });
        }
        Ok(Self { shards, index })
    }

    /// The single-process shard (1 of 1).
    #[must_use]
    pub fn single() -> Self {
        Self {
            shards: 1,
            index: 0,
        }
    }

    /// Total shard count.
    #[must_use]
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// This process's shard index.
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Whether this shard owns `unit_id`.
    #[must_use]
    pub fn owns(&self, unit_id: u64) -> bool {
        unit_id % self.shards == self.index
    }
}

/// Prepare the campaign a manifest describes and verify it reproduces the
/// baseline the manifest recorded at `run` time.
///
/// A mismatch means the resuming process would journal results that are not
/// comparable with the ones already on disk (different build, platform or
/// tampered manifest), so it is rejected before any unit runs.
///
/// # Errors
///
/// Fails if preparation fails or the baseline does not match.
pub fn prepare_campaign(manifest: &Manifest) -> Result<FaultToleranceCampaign, SweepError> {
    let campaign = FaultToleranceCampaign::prepare(&manifest.config)?;
    validate_baseline(manifest, &campaign)?;
    Ok(campaign)
}

/// Check that a prepared campaign reproduces the baseline a manifest
/// recorded (evaluation-set size, model name, bit-exact clean accuracy).
///
/// # Errors
///
/// Returns [`SweepError::Manifest`] describing the first mismatch.
pub fn validate_baseline(
    manifest: &Manifest,
    campaign: &FaultToleranceCampaign,
) -> Result<(), SweepError> {
    if campaign.eval_set().len() != manifest.images {
        return Err(SweepError::manifest(format!(
            "prepared campaign evaluates {} images, manifest expects {}",
            campaign.eval_set().len(),
            manifest.images
        )));
    }
    if campaign.quantized().name() != manifest.model {
        return Err(SweepError::manifest(format!(
            "prepared campaign is model `{}`, manifest expects `{}`",
            campaign.quantized().name(),
            manifest.model
        )));
    }
    if campaign.clean_accuracy().to_bits() != manifest.clean_accuracy.to_bits() {
        return Err(SweepError::manifest(format!(
            "prepared campaign's clean accuracy {} differs from the manifest's {} — \
             the environment no longer reproduces the original run",
            campaign.clean_accuracy(),
            manifest.clean_accuracy
        )));
    }
    let st_ops = campaign
        .quantized()
        .total_op_count(wgft_winograd::ConvAlgorithm::Standard);
    let wg_ops = campaign
        .quantized()
        .total_op_count(wgft_winograd::ConvAlgorithm::winograd_default());
    if st_ops != manifest.standard_ops || wg_ops != manifest.winograd_ops {
        return Err(SweepError::manifest(format!(
            "prepared campaign's operation counts (ST {st_ops:?}, WG {wg_ops:?}) differ from \
             the manifest's (ST {:?}, WG {:?})",
            manifest.standard_ops, manifest.winograd_ops
        )));
    }
    Ok(())
}

/// Evaluate one work unit against a prepared campaign.
///
/// The result depends only on `(campaign config, unit coordinates)`: the
/// per-image fault seeds derive from the campaign base seed and the unit's
/// global image indices (checked by a debug assertion), never from execution
/// order.
#[must_use]
pub fn evaluate_unit(campaign: &FaultToleranceCampaign, unit: &WorkUnit) -> UnitResult {
    let base_seed = campaign.config().base_seed;
    // A unit's seeds must never depend on the execution index — assert that
    // the unit derives the same seed for its first image as the campaign
    // does from the global image index alone.
    debug_assert_eq!(
        unit.image_seed(base_seed, 0),
        match unit.cell.granularity {
            Granularity::OpLevel =>
                FaultToleranceCampaign::op_level_fault_seed(base_seed, unit.start),
            Granularity::NeuronLevel =>
                FaultToleranceCampaign::neuron_level_fault_seed(base_seed, unit.start),
        },
        "unit seed derivation must match the campaign's global-index derivation"
    );
    let ber = BitErrorRate::new(unit.cell.ber);
    let (correct, events) = match (unit.cell.granularity, unit.cell.abft.policy()) {
        (Granularity::OpLevel, Some(policy)) => {
            let (correct, events) = campaign.correct_op_level_abft(
                unit.cell.algo,
                ber,
                &unit.cell.protection.plan(),
                &policy,
                unit.start,
                unit.len,
            );
            (correct, Some(events))
        }
        (Granularity::OpLevel, None) => (
            campaign.correct_op_level(
                unit.cell.algo,
                ber,
                &unit.cell.protection.plan(),
                unit.start,
                unit.len,
            ),
            None,
        ),
        (Granularity::NeuronLevel, _) => (
            campaign.correct_neuron_level(unit.cell.algo, ber, unit.start, unit.len),
            None,
        ),
    };
    let events = events.unwrap_or_default();
    UnitResult {
        unit: unit.id,
        correct: correct as u64,
        len: unit.len as u64,
        detected: events.detected,
        corrected: events.corrected,
        uncorrected: events.uncorrected,
        recomputes: events.recomputes,
        clipped: events.clipped,
        overhead_mul: events.overhead.mul,
        overhead_add: events.overhead.add,
    }
}

/// Summary of one shard invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Units this shard owns in total.
    pub owned: u64,
    /// Owned units already journaled before this invocation (skipped).
    pub skipped: u64,
    /// Units evaluated and journaled by this invocation.
    pub evaluated: u64,
    /// Units complete across the whole run after this invocation.
    pub run_done: u64,
    /// Total units in the plan.
    pub run_total: u64,
}

impl ShardOutcome {
    /// Whether the whole run (not just this shard) is complete.
    #[must_use]
    pub fn run_complete(&self) -> bool {
        self.run_done == self.run_total
    }
}

/// Execute every pending unit this shard owns, journaling each result as it
/// completes. Already-journaled units are skipped, which is what makes a
/// killed run resumable: re-invoking with the same (or any other) shard
/// specification finishes exactly the missing work.
///
/// Units are evaluated in parallel (vendored rayon; set
/// `RAYON_NUM_THREADS=1` for serial execution) — results are bit-identical
/// either way because every unit's fault seeds derive from its coordinates.
///
/// # Errors
///
/// Fails on journal I/O errors or a journal inconsistent with the manifest.
pub fn run_shard(
    journal: &Journal,
    campaign: &FaultToleranceCampaign,
    shard: ShardSpec,
    progress: &dyn ProgressSink,
) -> Result<ShardOutcome, SweepError> {
    let manifest = journal.manifest();
    let plan = manifest.plan();
    let completed = journal.completed()?;
    let run_done_before = completed.results.len() as u64;
    let owned: Vec<&WorkUnit> = plan.units().iter().filter(|u| shard.owns(u.id)).collect();
    let pending: Vec<&WorkUnit> = owned
        .iter()
        .copied()
        .filter(|u| !completed.results.contains_key(&u.id))
        .collect();
    let owned_count = owned.len() as u64;
    let pending_count = pending.len() as u64;
    let skipped = owned_count - pending_count;

    let appender = Mutex::new(journal.appender(shard.shards(), shard.index())?);
    let shard_done = AtomicU64::new(0);
    let run_done = AtomicU64::new(run_done_before);
    let outcomes: Vec<Result<(), SweepError>> = pending
        .into_par_iter()
        .map(|unit| {
            let result = evaluate_unit(campaign, unit);
            {
                let mut appender = appender.lock().expect("journal appender lock poisoned");
                appender.append(&result)?;
            }
            let snapshot = ProgressSnapshot {
                shards: shard.shards(),
                shard_index: shard.index(),
                shard_done: shard_done.fetch_add(1, Ordering::Relaxed) + 1,
                shard_pending: pending_count,
                run_done: run_done.fetch_add(1, Ordering::Relaxed) + 1,
                run_total: plan.units().len() as u64,
            };
            progress.unit_finished(snapshot, unit);
            Ok(())
        })
        .collect();
    for outcome in outcomes {
        outcome?;
    }
    Ok(ShardOutcome {
        owned: owned_count,
        skipped,
        evaluated: pending_count,
        run_done: run_done.load(Ordering::Relaxed),
        run_total: plan.units().len() as u64,
    })
}
