//! Live progress reporting and the `status` rendering.
//!
//! Both render through `wgft_core::TextTable`, so sweep progress looks like
//! the rest of the workspace's report output.

use crate::journal::{CompletedSet, Journal};
use crate::unit::WorkUnit;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use wgft_core::TextTable;

/// A snapshot of shard and run completion, passed to progress sinks after
/// every finished unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Shard count of the running process.
    pub shards: u64,
    /// Shard index of the running process.
    pub shard_index: u64,
    /// Units this shard has finished during this invocation.
    pub shard_done: u64,
    /// Units this shard owns and still had pending at startup.
    pub shard_pending: u64,
    /// Units finished across the whole run (journal + this invocation).
    pub run_done: u64,
    /// Total units in the plan.
    pub run_total: u64,
}

/// Receives completion events from a running shard.
pub trait ProgressSink: Sync {
    /// Called after each unit completes (from worker threads).
    fn unit_finished(&self, snapshot: ProgressSnapshot, unit: &WorkUnit);
}

/// Discards all progress events (library use and tests).
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentProgress;

impl ProgressSink for SilentProgress {
    fn unit_finished(&self, _snapshot: ProgressSnapshot, _unit: &WorkUnit) {}
}

/// Renders live shard/unit completion to stderr as a small [`TextTable`],
/// throttled so long sweeps do not drown their own logs.
#[derive(Debug)]
pub struct TableProgress {
    min_interval: Duration,
    last_render: Mutex<Option<Instant>>,
}

impl TableProgress {
    /// A reporter that renders at most once per `min_interval` (the final
    /// unit of a shard always renders).
    #[must_use]
    pub fn new(min_interval: Duration) -> Self {
        Self {
            min_interval,
            last_render: Mutex::new(None),
        }
    }
}

impl Default for TableProgress {
    fn default() -> Self {
        Self::new(Duration::from_secs(2))
    }
}

impl ProgressSink for TableProgress {
    fn unit_finished(&self, snapshot: ProgressSnapshot, unit: &WorkUnit) {
        let finishing = snapshot.shard_done >= snapshot.shard_pending;
        {
            let mut last = self.last_render.lock().expect("progress lock poisoned");
            let due = last.is_none_or(|t| t.elapsed() >= self.min_interval);
            if !due && !finishing {
                return;
            }
            *last = Some(Instant::now());
        }
        let mut table = TextTable::new(&["scope", "done", "total", "%"]);
        let pct = |done: u64, total: u64| {
            if total == 0 {
                "100.0".to_string()
            } else {
                format!("{:.1}", done as f64 * 100.0 / total as f64)
            }
        };
        table.push_row(vec![
            format!("shard {}/{}", snapshot.shard_index, snapshot.shards),
            snapshot.shard_done.to_string(),
            snapshot.shard_pending.to_string(),
            pct(snapshot.shard_done, snapshot.shard_pending),
        ]);
        table.push_row(vec![
            "run".to_string(),
            snapshot.run_done.to_string(),
            snapshot.run_total.to_string(),
            pct(snapshot.run_done, snapshot.run_total),
        ]);
        eprintln!(
            "[wgft-sweep] finished unit {} ({})",
            unit.id,
            unit.cell.label()
        );
        eprint!("{table}");
    }
}

/// Render the `status` view of a journal: manifest summary, per-BER
/// completion and per-result-file accounting.
#[must_use]
pub fn render_status(journal: &Journal, completed: &CompletedSet) -> String {
    use std::fmt::Write as _;

    let manifest = journal.manifest();
    let plan = manifest.plan();
    let done = completed.results.len();
    let total = plan.units().len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} sweep of {} ({}) — {} images, chunk {}, {} BER points",
        manifest.kind.label(),
        manifest.model,
        manifest.width,
        manifest.images,
        manifest.chunk,
        plan.bers().len()
    );
    let _ = writeln!(
        out,
        "journal {} — {}/{} units complete{}",
        journal.dir().display(),
        done,
        total,
        if completed.dropped_partial_lines > 0 {
            format!(
                " ({} partial trailing line(s) recovered)",
                completed.dropped_partial_lines
            )
        } else {
            String::new()
        }
    );

    let mut table = TextTable::new(&["BER", "cells", "units done", "units total", "images done"]);
    let per_ber = plan.cells().len() / plan.bers().len().max(1);
    for (ber_index, &ber) in plan.bers().iter().enumerate() {
        let cell_range = ber_index * per_ber..(ber_index + 1) * per_ber;
        let mut units_total = 0u64;
        let mut units_done = 0u64;
        let mut images_done = 0u64;
        for unit in plan.units() {
            if cell_range.contains(&unit.cell_index) {
                units_total += 1;
                if completed.results.contains_key(&unit.id) {
                    units_done += 1;
                    images_done += unit.len as u64;
                }
            }
        }
        table.push_row(vec![
            format!("{ber:.2e}"),
            per_ber.to_string(),
            units_done.to_string(),
            units_total.to_string(),
            images_done.to_string(),
        ]);
    }
    let _ = write!(out, "{table}");

    // Per-cell-kind breakdown: a campaign kind mixes several cell kinds
    // (algorithm × granularity × protection × ABFT — the protection
    // trade-off alone has eight), and an aggregate count cannot say *which*
    // of them a stalled shard still owes. Group unit counts by the
    // BER-independent cell label, in first-appearance (plan) order.
    let mut kinds: Vec<(String, u64, u64)> = Vec::new();
    for unit in plan.units() {
        let label = unit.cell.kind_label();
        let entry = match kinds.iter_mut().find(|(l, _, _)| *l == label) {
            Some(entry) => entry,
            None => {
                kinds.push((label, 0, 0));
                kinds.last_mut().expect("just pushed")
            }
        };
        entry.2 += 1;
        if completed.results.contains_key(&unit.id) {
            entry.1 += 1;
        }
    }
    let mut per_kind = TextTable::new(&["cell kind", "units done", "units total"]);
    for (label, done_units, total_units) in kinds {
        per_kind.push_row(vec![label, done_units.to_string(), total_units.to_string()]);
    }
    let _ = write!(out, "{per_kind}");

    if let Ok(files) = journal.result_files() {
        if !files.is_empty() {
            let mut per_file = TextTable::new(&["result file", "lines"]);
            for file in files {
                let lines = std::fs::read_to_string(&file)
                    .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count())
                    .unwrap_or(0);
                per_file.push_row(vec![
                    file.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default(),
                    lines.to_string(),
                ]);
            }
            let _ = write!(out, "{per_file}");
        }
    }
    out
}
