//! Reduce journaled unit results back into the monolithic report types.
//!
//! Merging is pure integer arithmetic: each cell's correct-prediction counts
//! are summed over its image chunks and divided by the evaluation-set size —
//! exactly the computation the in-memory campaign loops perform — so the
//! merged `NetworkSweepReport` / `GranularityReport` / `OpTypeReport` (and
//! the critical-BER search result) are bit-identical to a single-process run
//! of the same config, regardless of sharding, execution order or restarts.

use crate::error::SweepError;
use crate::journal::{CompletedSet, Manifest};
use crate::unit::SweepKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use wgft_abft::AbftEvents;
use wgft_core::{
    scheme_overhead, GranularityReport, GranularityRow, NetworkSweepReport, NetworkSweepRow,
    OpTypeReport, OpTypeRow, ProtectionTradeoffReport, ProtectionTradeoffRow, TextTable,
    TradeoffScheme,
};
use wgft_faultsim::BitErrorRate;

/// One row of the critical-BER grid walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CriticalBerRow {
    /// Bit error rate.
    pub ber: f64,
    /// Unprotected accuracy at this rate.
    pub accuracy: f64,
}

/// The merged result of a [`SweepKind::FindCriticalBer`] run: the cliff rate
/// the monolithic `find_critical_ber` would return, plus the full grid the
/// sharded sweep evaluated along the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalBerReport {
    /// Model name.
    pub model: String,
    /// Algorithm label whose cliff was located.
    pub algo: String,
    /// Margin fraction the search keeps (see `find_critical_ber`).
    pub keep_fraction: f64,
    /// Accuracy threshold derived from the clean accuracy and chance level.
    pub threshold: f64,
    /// The located critical bit error rate.
    pub critical_ber: f64,
    /// The evaluated grid (the monolithic search stops at the cliff; the
    /// sweep evaluates the whole grid, which is a superset).
    pub rows: Vec<CriticalBerRow>,
}

impl fmt::Display for CriticalBerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — {} accuracy cliff: critical BER {:.2e} (threshold {:.2} %)",
            self.model,
            self.algo,
            self.critical_ber,
            self.threshold * 100.0
        )?;
        let mut table = TextTable::new(&["BER", "accuracy %", "below threshold"]);
        for row in &self.rows {
            table.push_row(vec![
                format!("{:.2e}", row.ber),
                format!("{:.2}", row.accuracy * 100.0),
                if row.accuracy < self.threshold {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

/// The merged output of a sweep, one variant per campaign kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MergedReport {
    /// Figure 2 (`network_sweep`).
    NetworkSweep(NetworkSweepReport),
    /// Figure 1 (`injection_granularity`).
    Granularity(GranularityReport),
    /// Figure 4 (`op_type_sensitivity`).
    OpType(OpTypeReport),
    /// Accuracy-cliff search (`find_critical_ber`).
    CriticalBer(CriticalBerReport),
    /// Protection frontier (`protection_tradeoff`).
    ProtectionTradeoff(ProtectionTradeoffReport),
}

impl fmt::Display for MergedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergedReport::NetworkSweep(r) => r.fmt(f),
            MergedReport::Granularity(r) => r.fmt(f),
            MergedReport::OpType(r) => r.fmt(f),
            MergedReport::CriticalBer(r) => r.fmt(f),
            MergedReport::ProtectionTradeoff(r) => r.fmt(f),
        }
    }
}

/// Reduce a completed journal into the campaign's report.
///
/// # Errors
///
/// Returns [`SweepError::Incomplete`] if any unit is missing, or
/// [`SweepError::Journal`] if the journaled image counts do not add up to
/// the evaluation-set size.
pub fn merge(manifest: &Manifest, completed: &CompletedSet) -> Result<MergedReport, SweepError> {
    // A journal recorded under a different arithmetic mode was produced by a
    // build whose numbers this build cannot reproduce bit-identically;
    // merging it would silently mix incomparable results. This is the gate
    // the distributed fabric relies on to keep heterogeneous workers honest.
    if !crate::journal::arithmetic_mode_supported(&manifest.arithmetic_mode) {
        return Err(SweepError::manifest(format!(
            "journal was recorded under arithmetic mode `{}`, which this build cannot \
             reproduce (supported: {:?}) — the merged report would not be bit-identical \
             to a monolithic run",
            manifest.arithmetic_mode,
            crate::journal::SUPPORTED_ARITHMETIC_MODES
        )));
    }
    let plan = manifest.plan();
    let total = plan.units().len() as u64;
    let done = completed.results.len() as u64;
    if done < total {
        return Err(SweepError::Incomplete { done, total });
    }

    // Sum per-cell correct counts. Integer addition is associative, so the
    // order units completed in (and which shard produced them) cannot change
    // the sum.
    let mut correct = vec![0u64; plan.cells().len()];
    let mut covered = vec![0u64; plan.cells().len()];
    let mut cell_events = vec![AbftEvents::new(); plan.cells().len()];
    for unit in plan.units() {
        let result = completed
            .results
            .get(&unit.id)
            .expect("presence checked above");
        correct[unit.cell_index] += result.correct;
        covered[unit.cell_index] += result.len;
        cell_events[unit.cell_index] += result.events();
    }
    for (cell_index, &images) in covered.iter().enumerate() {
        if images != plan.images() as u64 {
            return Err(SweepError::journal(format!(
                "cell {cell_index} covers {images} images, expected {}",
                plan.images()
            )));
        }
    }
    // Identical to the monolithic loops' `correct / eval_set.len().max(1)`.
    let accuracy = |cell_index: usize| correct[cell_index] as f64 / plan.images().max(1) as f64;

    // Cells of one BER are consecutive in plan order (BER-major expansion).
    let per_ber = plan
        .cells()
        .len()
        .checked_div(plan.bers().len().max(1))
        .unwrap_or(0);
    let cell_base = |ber_index: usize| ber_index * per_ber;

    let report = match manifest.kind {
        SweepKind::NetworkSweep => {
            let rows = plan
                .bers()
                .iter()
                .enumerate()
                .map(|(i, &ber)| NetworkSweepRow {
                    ber: BitErrorRate::new(ber).rate(),
                    standard: accuracy(cell_base(i)),
                    winograd: accuracy(cell_base(i) + 1),
                })
                .collect();
            MergedReport::NetworkSweep(NetworkSweepReport {
                model: manifest.model.clone(),
                width: manifest.width.clone(),
                tile: manifest.tile,
                clean_accuracy: manifest.clean_accuracy,
                rows,
            })
        }
        SweepKind::InjectionGranularity => {
            let rows = plan
                .bers()
                .iter()
                .enumerate()
                .map(|(i, &ber)| GranularityRow {
                    ber: BitErrorRate::new(ber).rate(),
                    op_level_standard: accuracy(cell_base(i)),
                    op_level_winograd: accuracy(cell_base(i) + 1),
                    neuron_level_standard: accuracy(cell_base(i) + 2),
                    neuron_level_winograd: accuracy(cell_base(i) + 3),
                })
                .collect();
            MergedReport::Granularity(GranularityReport {
                model: manifest.model.clone(),
                rows,
            })
        }
        SweepKind::OpTypeSensitivity => {
            let rows = plan
                .bers()
                .iter()
                .enumerate()
                .map(|(i, &ber)| OpTypeRow {
                    ber: BitErrorRate::new(ber).rate(),
                    st_mul_fault_free: accuracy(cell_base(i)),
                    st_add_fault_free: accuracy(cell_base(i) + 1),
                    wg_mul_fault_free: accuracy(cell_base(i) + 2),
                    wg_add_fault_free: accuracy(cell_base(i) + 3),
                    st_unprotected: accuracy(cell_base(i) + 4),
                    wg_unprotected: accuracy(cell_base(i) + 5),
                })
                .collect();
            MergedReport::OpType(OpTypeReport {
                model: manifest.model.clone(),
                rows,
            })
        }
        SweepKind::FindCriticalBer {
            algo,
            keep_fraction,
        } => {
            // Replicate `find_critical_ber` exactly: threshold from the
            // clean accuracy and chance level, then the first grid rate
            // whose accuracy falls below it (1e-2 if none does).
            let clean = manifest.clean_accuracy;
            let chance = 1.0 / manifest.config.spec.num_classes.max(1) as f64;
            let threshold = chance + keep_fraction.clamp(0.0, 1.0) * (clean - chance);
            let rows: Vec<CriticalBerRow> = plan
                .bers()
                .iter()
                .enumerate()
                .map(|(i, &ber)| CriticalBerRow {
                    ber,
                    accuracy: accuracy(cell_base(i)),
                })
                .collect();
            let critical_ber = rows
                .iter()
                .find(|row| row.accuracy < threshold)
                .map_or(1e-2, |row| row.ber);
            MergedReport::CriticalBer(CriticalBerReport {
                model: manifest.model.clone(),
                algo: algo.label().to_string(),
                keep_fraction,
                threshold,
                critical_ber,
                rows,
            })
        }
        SweepKind::ProtectionTradeoff => {
            // Cells per BER are (scheme-major, ST-then-WG) — see
            // `SweepKind::cells_for_ber` — so scheme `s` of BER `i` sits at
            // `cell_base(i) + 2s` (standard) and `+ 2s + 1` (winograd).
            // Accuracy, events and overhead reproduce the monolithic
            // `protection_tradeoff` computation exactly: integer sums, then
            // the same divisions and `scheme_overhead` formula.
            let mut rows = Vec::new();
            for (i, &ber) in plan.bers().iter().enumerate() {
                for (s, scheme) in TradeoffScheme::all().into_iter().enumerate() {
                    let st = cell_base(i) + 2 * s;
                    let wg = st + 1;
                    let standard_events = cell_events[st];
                    let winograd_events = cell_events[wg];
                    rows.push(ProtectionTradeoffRow {
                        ber: BitErrorRate::new(ber).rate(),
                        scheme,
                        standard_accuracy: accuracy(st),
                        winograd_accuracy: accuracy(wg),
                        standard_overhead: scheme_overhead(
                            scheme,
                            &standard_events,
                            manifest.standard_ops,
                            manifest.images,
                        ),
                        winograd_overhead: scheme_overhead(
                            scheme,
                            &winograd_events,
                            manifest.winograd_ops,
                            manifest.images,
                        ),
                        standard_events,
                        winograd_events,
                    });
                }
            }
            MergedReport::ProtectionTradeoff(ProtectionTradeoffReport {
                model: manifest.model.clone(),
                width: manifest.width.clone(),
                tile: manifest.tile,
                clean_accuracy: manifest.clean_accuracy,
                images: manifest.images,
                rows,
            })
        }
    };
    Ok(report)
}
