//! Error type for the sweep orchestration subsystem.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use wgft_core::CoreError;

/// Errors produced while planning, journaling, running or merging a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem access to the run journal failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The journal on disk is inconsistent with the manifest (or itself).
    Journal {
        /// What is wrong.
        reason: String,
    },
    /// The manifest failed validation (hash mismatch, version skew, or a
    /// config that no longer reproduces the recorded baseline).
    Manifest {
        /// What is wrong.
        reason: String,
    },
    /// A command-line or API parameter was invalid.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// A merge was requested before every unit completed.
    Incomplete {
        /// Units finished so far.
        done: u64,
        /// Total units in the plan.
        total: u64,
    },
    /// Campaign preparation or evaluation failed.
    Core(CoreError),
}

impl SweepError {
    /// Convenience constructor for [`SweepError::Io`].
    #[must_use]
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        SweepError::Io {
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for [`SweepError::Journal`].
    #[must_use]
    pub fn journal(reason: impl Into<String>) -> Self {
        SweepError::Journal {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`SweepError::Manifest`].
    #[must_use]
    pub fn manifest(reason: impl Into<String>) -> Self {
        SweepError::Manifest {
            reason: reason.into(),
        }
    }

    /// Prefix a [`SweepError::Manifest`] or [`SweepError::Journal`] reason
    /// with the file it was detected in, so the offending path appears in
    /// the display without the caller re-deriving which file drifted. Other
    /// variants (which already carry their own context) pass through.
    #[must_use]
    pub fn at_path(self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        match self {
            SweepError::Manifest { reason } => SweepError::Manifest {
                reason: format!("{}: {reason}", path.display()),
            },
            SweepError::Journal { reason } => SweepError::Journal {
                reason: format!("{}: {reason}", path.display()),
            },
            other => other,
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { path, source } => {
                write!(f, "journal I/O error at {}: {source}", path.display())
            }
            SweepError::Journal { reason } => write!(f, "journal error: {reason}"),
            SweepError::Manifest { reason } => write!(f, "manifest error: {reason}"),
            SweepError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            SweepError::Incomplete { done, total } => write!(
                f,
                "sweep incomplete: {done}/{total} units finished — run or resume the missing shards before merging"
            ),
            SweepError::Core(e) => write!(f, "campaign error: {e}"),
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            SweepError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SweepError {
    fn from(e: CoreError) -> Self {
        SweepError::Core(e)
    }
}
