//! The persistent run journal: a validated manifest plus append-only JSONL
//! result files.
//!
//! Layout of a run directory:
//!
//! ```text
//! <dir>/manifest.json            # plan identity, written atomically once
//! <dir>/results-<K>x<i>.jsonl    # one per (shard count, shard index) writer
//! ```
//!
//! The manifest embeds the full serialized [`CampaignConfig`], the sweep
//! kind, BER grid, chunking and a content hash over all of them; every
//! `resume`/`status`/`merge` recomputes the hash and refuses to touch a
//! journal whose manifest does not validate. Result files are append-only
//! JSONL — one completed [`UnitResult`] per line, written with a single
//! `write_all` + flush so a killed process can lose at most a partial
//! trailing line, which both the reader and the appender detect and drop.

use crate::error::SweepError;
use crate::unit::{SweepKind, SweepPlan};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use wgft_core::CampaignConfig;

/// Journal format version (bumped on any incompatible layout change).
///
/// Version 2: unit results journal ABFT event counters and manifests record
/// the network's per-algorithm operation counts (the `protection_tradeoff`
/// campaign kind needs both to merge bit-identically).
///
/// Version 3: manifests record the arithmetic mode their results were
/// computed under (merging refuses a journal whose mode this build cannot
/// reproduce bit-identically) and an optional fabric-session tag naming the
/// distributed coordinator that created the run.
///
/// Version 4: manifests record the winograd tile variant the campaign
/// prepared and its interpolation point-set id (the numerics axis of the
/// tile-size×fault frontier). Version-3 journals predate the tile axis and
/// stay readable/resumable: they load with the default F(2x2,3x3) tile, and
/// validation rejects a v3 manifest claiming anything else.
///
/// Version 5: manifests record the campaign's dataset source (synthetic vs
/// real CIFAR-10 batches). Version-3/4 journals predate the knob and stay
/// readable/resumable: they load as synthetic-data runs, and validation
/// rejects an old manifest claiming anything else.
pub const JOURNAL_VERSION: u32 = 5;

/// Oldest journal format version this build still reads and resumes.
pub const MIN_JOURNAL_VERSION: u32 = 3;

/// The arithmetic mode this build journals results under.
///
/// Every campaign-visible number is computed in quantized integer/fixed-point
/// arithmetic with order-independent integer reductions, so results are
/// bit-identical across execution orders, thread counts and machines that
/// agree on this tag. A distributed worker whose build reports a different
/// mode must not contribute results, and `merge` refuses a journal recorded
/// under a mode the merging build cannot reproduce.
pub const ARITHMETIC_MODE: &str = "quantized-exact-v1";

/// Deterministic-f32 arithmetic mode: campaign-visible floats computed by the
/// `f32-det` kernels (fixed accumulation order, no FMA contraction, no
/// data-parallel reductions), bit-identical across machines and codegen flags
/// on any IEEE-754 platform. The pinned cross-platform vector tests in
/// `wgft-winograd` certify a build for this tag.
pub const ARITHMETIC_MODE_F32_DET: &str = "f32-det";

/// Every arithmetic mode this build can reproduce bit-identically — the set
/// `merge` accepts and the fabric coordinator serves. Journals always record
/// exactly one mode; workers must report the journal's mode to contribute.
pub const SUPPORTED_ARITHMETIC_MODES: &[&str] = &[ARITHMETIC_MODE, ARITHMETIC_MODE_F32_DET];

/// Whether this build can reproduce results recorded under `mode`.
#[must_use]
pub fn arithmetic_mode_supported(mode: &str) -> bool {
    SUPPORTED_ARITHMETIC_MODES.contains(&mode)
}

/// File name of the manifest inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Skip-serializing predicate for the manifest's tile fields: the default
/// F(2x2,3x3) tile stays implicit, keeping default-tile v4 manifests (and
/// their content hashes) free of fields a v3 reader never wrote.
fn tile_is_default(tile: &wgft_winograd::WinogradVariant) -> bool {
    *tile == wgft_winograd::WinogradVariant::default()
}

/// Skip-serializing predicate for the manifest's dataset field: the synthetic
/// default stays implicit, keeping default-source v5 manifests (and their
/// content hashes) free of fields a v4 reader never wrote.
fn dataset_is_default(dataset: &wgft_core::DatasetSource) -> bool {
    dataset.is_synthetic()
}

/// 64-bit FNV-1a hash (stable, dependency-free; good enough to detect a
/// mismatched or edited manifest, not a cryptographic commitment).
// wgft-audit: consensus-critical -- content hashes must agree across every build
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One completed work unit, as journaled: the unit id, the number of
/// correctly classified images out of the unit's `len`, and the ABFT events
/// the unit's protected executions accumulated (all zero for unprotected
/// cells).
///
/// Every field is an order-independent sum over the unit's images, so any
/// shard layout, execution order or restart merges to the same totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitResult {
    /// Stable unit id from the plan table.
    pub unit: u64,
    /// Correct predictions in the unit's image range.
    pub correct: u64,
    /// Images evaluated (the unit's `len`; recorded for integrity checks).
    pub len: u64,
    /// ABFT checksum/guard mismatches detected.
    pub detected: u64,
    /// ABFT errors corrected (located-and-fixed or clean recompute).
    pub corrected: u64,
    /// ABFT detections left uncorrected.
    pub uncorrected: u64,
    /// ABFT recompute fallbacks taken.
    pub recomputes: u64,
    /// Values clamped by range restriction.
    pub clipped: u64,
    /// Extra protection multiplies.
    pub overhead_mul: u64,
    /// Extra protection additions.
    pub overhead_add: u64,
}

impl UnitResult {
    /// Rebuild the event record the unit's protected executions summed to.
    #[must_use]
    pub fn events(&self) -> wgft_abft::AbftEvents {
        let mut events = wgft_abft::AbftEvents::new();
        events.detected = self.detected;
        events.corrected = self.corrected;
        events.uncorrected = self.uncorrected;
        events.recomputes = self.recomputes;
        events.clipped = self.clipped;
        events.charge(self.overhead_mul, self.overhead_add);
        events
    }
}

/// The run manifest: everything needed to rebuild the unit table and verify
/// that a resuming process is executing the same campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Journal format version.
    pub version: u32,
    /// Which campaign this run decomposes.
    pub kind: SweepKind,
    /// The full campaign configuration (embedded so resume validates against
    /// it instead of trusting the caller).
    pub config: CampaignConfig,
    /// Requested BER grid (the plan derives the effective grid from it).
    pub bers: Vec<f64>,
    /// Images per work unit.
    pub chunk: usize,
    /// Evaluation-set size of the prepared campaign.
    pub images: usize,
    /// Number of units in the plan (redundant with the derivation; checked).
    pub unit_count: u64,
    /// Name of the prepared quantized network.
    pub model: String,
    /// Quantization width label.
    pub width: String,
    /// Winograd tile variant the campaign prepared (mirrors `config.tile`;
    /// recorded at top level so status/merge tag their reports without
    /// digging into the config). Absent in version-3 journals and for the
    /// default tile, loading as F(2x2,3x3) either way.
    #[serde(default, skip_serializing_if = "tile_is_default")]
    pub tile: wgft_winograd::WinogradVariant,
    /// Interpolation point-set id of the tile variant (provenance for the
    /// generated transforms; absent when the tile is the default).
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub tile_points: String,
    /// Dataset source the campaign trained and evaluated on (mirrors
    /// `config.dataset`; recorded at top level so status/merge can tag their
    /// reports without digging into the config). Absent in version-3/4
    /// journals and for the synthetic default, loading as synthetic either
    /// way.
    #[serde(default, skip_serializing_if = "dataset_is_default")]
    pub dataset: wgft_core::DatasetSource,
    /// Fault-free baseline accuracy of the prepared campaign.
    pub clean_accuracy: f64,
    /// Total operation count of the prepared network under standard
    /// convolution (the idealized-TMR overhead of the `protection_tradeoff`
    /// merge derives from it).
    pub standard_ops: wgft_faultsim::OpCount,
    /// Total operation count under winograd convolution.
    pub winograd_ops: wgft_faultsim::OpCount,
    /// Arithmetic mode the results are computed under (see
    /// [`ARITHMETIC_MODE`]). Part of the content hash: a journal recorded
    /// under a different mode is a different, incompatible run.
    pub arithmetic_mode: String,
    /// Session tag of the distributed coordinator that created this run
    /// (`None` for single-machine journals). Metadata only — two sessions
    /// that agree on the plan hash journal interchangeable results.
    pub fabric_session: Option<String>,
    /// FNV-1a hash (hex) over the plan identity; see [`Manifest::plan_hash`].
    pub content_hash: String,
}

impl Manifest {
    /// Build a manifest for a freshly planned run.
    #[allow(clippy::too_many_arguments)] // mirrors the manifest's own field list
    #[must_use]
    pub fn new(
        kind: SweepKind,
        config: CampaignConfig,
        bers: Vec<f64>,
        chunk: usize,
        images: usize,
        model: String,
        width: String,
        clean_accuracy: f64,
        standard_ops: wgft_faultsim::OpCount,
        winograd_ops: wgft_faultsim::OpCount,
    ) -> Self {
        let tile = config.tile;
        let tile_points = if tile_is_default(&tile) {
            String::new()
        } else {
            tile.point_set_id()
        };
        let dataset = config.dataset.clone();
        let mut manifest = Self {
            version: JOURNAL_VERSION,
            kind,
            config,
            bers,
            chunk,
            images,
            unit_count: 0,
            model,
            width,
            tile,
            tile_points,
            dataset,
            clean_accuracy,
            standard_ops,
            winograd_ops,
            arithmetic_mode: ARITHMETIC_MODE.to_string(),
            fabric_session: None,
            content_hash: String::new(),
        };
        manifest.unit_count = manifest.plan().units().len() as u64;
        manifest.content_hash = manifest.plan_hash();
        manifest
    }

    /// Record a different arithmetic mode for this run.
    ///
    /// The mode is part of the plan identity, so the content hash is
    /// recomputed: a campaign journaled under `f32-det` is a different,
    /// incompatible run from the same campaign under the quantized default.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is not in [`SUPPORTED_ARITHMETIC_MODES`] — an
    /// unknown tag would create a journal no build can merge.
    #[must_use]
    pub fn with_arithmetic_mode(mut self, mode: impl Into<String>) -> Self {
        let mode = mode.into();
        assert!(
            arithmetic_mode_supported(&mode),
            "unsupported arithmetic mode `{mode}` (supported: {SUPPORTED_ARITHMETIC_MODES:?})"
        );
        self.arithmetic_mode = mode;
        self.content_hash = self.plan_hash();
        self
    }

    /// Tag this manifest with the fabric session that created the run.
    ///
    /// The tag is metadata outside the content hash, so a fabric journal and
    /// a single-machine journal of the same plan stay interchangeable.
    #[must_use]
    pub fn with_fabric_session(mut self, session: impl Into<String>) -> Self {
        self.fabric_session = Some(session.into());
        self
    }

    /// The content hash over the fields that determine the unit table and
    /// result compatibility: kind, config, BER grid, chunking, image count
    /// and arithmetic mode, each in its canonical JSON form.
    #[must_use]
    pub fn plan_hash(&self) -> String {
        let kind = serde_json::to_string(&self.kind).unwrap_or_default();
        let config = serde_json::to_string(&self.config).unwrap_or_default();
        let bers = serde_json::to_string(&self.bers).unwrap_or_default();
        let identity = format!(
            "v{}\n{kind}\n{config}\n{bers}\nchunk={}\nimages={}\narithmetic={}",
            self.version, self.chunk, self.images, self.arithmetic_mode
        );
        format!("{:016x}", fnv1a64(identity.as_bytes()))
    }

    /// Rebuild the unit table this manifest describes.
    #[must_use]
    pub fn plan(&self) -> SweepPlan {
        SweepPlan::new(self.kind, &self.bers, self.images, self.chunk)
    }

    /// Validate version, content hash and unit count.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Manifest`] describing the first mismatch.
    pub fn validate(&self) -> Result<(), SweepError> {
        if !(MIN_JOURNAL_VERSION..=JOURNAL_VERSION).contains(&self.version) {
            return Err(SweepError::manifest(format!(
                "journal version {} is outside the supported range \
                 {MIN_JOURNAL_VERSION}..={JOURNAL_VERSION}",
                self.version
            )));
        }
        // Version 3 predates the tile axis: every tile-related field must be
        // at its default, or the manifest was edited after the fact.
        if self.version < 4
            && (!tile_is_default(&self.tile)
                || !tile_is_default(&self.config.tile)
                || !self.tile_points.is_empty())
        {
            return Err(SweepError::manifest(format!(
                "journal version {} predates the tile axis but records tile {} \
                 (config tile {}, points \"{}\")",
                self.version, self.tile, self.config.tile, self.tile_points
            )));
        }
        // Versions 3/4 predate the dataset-source knob: a non-default source
        // in an old manifest means it was edited after the fact.
        if self.version < 5
            && (!dataset_is_default(&self.dataset) || !self.config.dataset.is_synthetic())
        {
            return Err(SweepError::manifest(format!(
                "journal version {} predates the dataset-source knob but records \
                 dataset source `{}` (config source `{}`)",
                self.version,
                self.dataset.label(),
                self.config.dataset.label()
            )));
        }
        // The top-level dataset tag mirrors the embedded config; a mismatch
        // means the manifest was edited inconsistently.
        if self.dataset != self.config.dataset {
            return Err(SweepError::manifest(format!(
                "manifest dataset source `{}` disagrees with the embedded config \
                 source `{}`",
                self.dataset.label(),
                self.config.dataset.label()
            )));
        }
        // The top-level tile tag mirrors the embedded config; a mismatch
        // means the manifest was edited inconsistently.
        if self.tile != self.config.tile {
            return Err(SweepError::manifest(format!(
                "manifest tile {} disagrees with the embedded config tile {}",
                self.tile, self.config.tile
            )));
        }
        let expected_points = if tile_is_default(&self.tile) {
            String::new()
        } else {
            self.tile.point_set_id()
        };
        if self.tile_points != expected_points {
            return Err(SweepError::manifest(format!(
                "manifest records point set \"{}\" for tile {}, expected \"{expected_points}\"",
                self.tile_points, self.tile
            )));
        }
        let expect = self.plan_hash();
        if self.content_hash != expect {
            return Err(SweepError::manifest(format!(
                "content hash mismatch: expected {expect} (derived from the plan), \
                 found {} — the manifest was edited or produced by an incompatible build",
                self.content_hash
            )));
        }
        let units = self.plan().units().len() as u64;
        if self.unit_count != units {
            return Err(SweepError::manifest(format!(
                "unit count mismatch: manifest says {}, plan derives {units}",
                self.unit_count
            )));
        }
        Ok(())
    }
}

/// Completed-unit results recovered from a journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletedSet {
    /// Unit id → journaled result (first occurrence wins; duplicates must
    /// agree).
    pub results: BTreeMap<u64, UnitResult>,
    /// Partial trailing lines dropped during recovery (one per file at most).
    pub dropped_partial_lines: usize,
}

/// A run journal rooted at one directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    manifest: Manifest,
}

impl Journal {
    /// Create a new journal: write the manifest atomically into `dir`
    /// (creating it). If a manifest already exists it must describe the same
    /// plan, in which case the existing journal is opened instead — so `run`
    /// is idempotent and doubles as `resume`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, on an existing manifest with a different content
    /// hash, or if `manifest` does not validate.
    pub fn create(dir: impl Into<PathBuf>, manifest: Manifest) -> Result<Self, SweepError> {
        manifest.validate()?;
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| SweepError::io(&dir, e))?;
        let path = dir.join(MANIFEST_FILE);
        if path.exists() {
            let existing = Self::open(&dir)?;
            if existing.manifest.content_hash != manifest.content_hash {
                return Err(SweepError::manifest(format!(
                    "already holds a different run (found content hash {}, new plan \
                     expects {}) — choose a fresh directory or resume the existing run",
                    existing.manifest.content_hash, manifest.content_hash
                ))
                .at_path(&path));
            }
            return Ok(existing);
        }
        let json = serde_json::to_string(&manifest)
            .map_err(|e| SweepError::manifest(format!("manifest serialization failed: {e}")))?;
        // Per-process temp name: concurrent `run` invocations on a fresh
        // directory (the documented way to start K shards) each stage their
        // own file, and the final renames are atomic and idempotent because
        // every process derives the byte-identical manifest.
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp.{}", std::process::id()));
        {
            let mut file = File::create(&tmp).map_err(|e| SweepError::io(&tmp, e))?;
            file.write_all(json.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.sync_all())
                .map_err(|e| SweepError::io(&tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| SweepError::io(&path, e))?;
        Ok(Self { dir, manifest })
    }

    /// Open an existing journal and validate its manifest.
    ///
    /// # Errors
    ///
    /// Fails if the directory has no manifest, the manifest does not parse,
    /// or validation fails.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SweepError> {
        let dir = dir.into();
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).map_err(|e| SweepError::io(&path, e))?;
        let manifest: Manifest = serde_json::from_str(text.trim_end()).map_err(|e| {
            SweepError::manifest(format!("manifest does not parse: {e}")).at_path(&path)
        })?;
        manifest.validate().map_err(|e| e.at_path(&path))?;
        Ok(Self { dir, manifest })
    }

    /// The run directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated manifest.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// All result files currently in the journal, sorted by name.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be read.
    pub fn result_files(&self) -> Result<Vec<PathBuf>, SweepError> {
        let mut files = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| SweepError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| SweepError::io(&self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("results-") && name.ends_with(".jsonl") {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    /// Read every completed unit from every result file.
    ///
    /// A partial trailing line (the footprint of a killed writer) is dropped
    /// and counted; a malformed line anywhere else, an out-of-range unit id,
    /// a result whose `len` disagrees with the plan, or two journaled results
    /// for the same unit that disagree are hard errors — the journal is
    /// corrupt beyond what a kill can produce.
    ///
    /// # Errors
    ///
    /// See above; also fails on I/O errors.
    pub fn completed(&self) -> Result<CompletedSet, SweepError> {
        let plan = self.manifest.plan();
        let units = plan.units();
        let mut set = CompletedSet::default();
        for path in self.result_files()? {
            let text = fs::read_to_string(&path).map_err(|e| SweepError::io(&path, e))?;
            let ends_complete = text.is_empty() || text.ends_with('\n');
            let lines: Vec<&str> = text.lines().collect();
            for (i, line) in lines.iter().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if i + 1 == lines.len() && !ends_complete {
                    // Partial trailing line from a killed writer. Dropped
                    // even if it happens to parse (the kill may have landed
                    // between the JSON bytes and the newline) — a finished
                    // writer always terminates its line, and the appender's
                    // tail repair truncates exactly this line, so counting
                    // it as done here would let a resume delete it from
                    // disk after skipping it.
                    set.dropped_partial_lines += 1;
                    continue;
                }
                let result: UnitResult = serde_json::from_str(line).map_err(|e| {
                    SweepError::journal(format!(
                        "{} line {}: malformed result ({e})",
                        path.display(),
                        i + 1
                    ))
                })?;
                let unit = units.get(result.unit as usize).ok_or_else(|| {
                    SweepError::journal(format!(
                        "{} line {}: unit id {} outside the plan (0..{})",
                        path.display(),
                        i + 1,
                        result.unit,
                        units.len()
                    ))
                })?;
                if result.len != unit.len as u64 || result.correct > result.len {
                    return Err(SweepError::journal(format!(
                        "{} line {}: result {result:?} inconsistent with unit {unit:?}",
                        path.display(),
                        i + 1
                    )));
                }
                if let Some(previous) = set.results.get(&result.unit) {
                    if *previous != result {
                        return Err(SweepError::journal(format!(
                            "unit {} journaled twice with different results: {previous:?} vs {result:?}",
                            result.unit
                        )));
                    }
                } else {
                    set.results.insert(result.unit, result);
                }
            }
        }
        Ok(set)
    }

    /// Open (or create) the append-only result file for one shard writer,
    /// repairing a partial trailing line first so new appends never merge
    /// into a corrupt tail.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn appender(&self, shards: u64, index: u64) -> Result<ResultAppender, SweepError> {
        let path = self.dir.join(format!("results-{shards}x{index}.jsonl"));
        ResultAppender::open(path)
    }
}

/// Append-only writer of one result file.
#[derive(Debug)]
pub struct ResultAppender {
    path: PathBuf,
    file: File,
}

impl ResultAppender {
    fn open(path: PathBuf) -> Result<Self, SweepError> {
        // Repair a partial trailing line left by a killed writer: truncate
        // back to the end of the last complete line.
        if let Ok(existing) = fs::read(&path) {
            if !existing.is_empty() && existing.last() != Some(&b'\n') {
                let keep = existing
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |p| p + 1);
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| SweepError::io(&path, e))?;
                file.set_len(keep as u64)
                    .and_then(|()| file.sync_all())
                    .map_err(|e| SweepError::io(&path, e))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| SweepError::io(&path, e))?;
        Ok(Self { path, file })
    }

    /// The file this appender writes.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed unit: the full line (JSON + newline) goes out in
    /// a single `write_all` followed by a data sync, so a kill between units
    /// never leaves more than a partial trailing line.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn append(&mut self, result: &UnitResult) -> Result<(), SweepError> {
        let mut line = serde_json::to_string(result)
            .map_err(|e| SweepError::journal(format!("result serialization failed: {e}")))?;
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| SweepError::io(&self.path, e))
    }
}
