//! Sharded, checkpointable campaign orchestration for the fault-tolerance
//! sweeps of `wgft-core`.
//!
//! The paper's evidence is large fault-injection grids (BER × conv algorithm
//! × granularity × protection); run monolithically, an interrupted sweep
//! loses everything. This crate decomposes any campaign into a deterministic,
//! stably ordered table of [`WorkUnit`]s — one (algorithm, BER, granularity,
//! image-chunk) cell each — journals every completed unit to disk, and
//! reduces the journal back into the exact report the monolithic loop would
//! have produced:
//!
//! * [`SweepPlan`] — the unit table; pure function of `(kind, config, BER
//!   grid, chunk, image count)`, so every process that agrees on the
//!   manifest agrees on every unit id.
//! * [`Journal`] — a run directory holding a validated [`Manifest`]
//!   (serialized [`CampaignConfig`] + content hash) and append-only JSONL
//!   result files with partial-trailing-line recovery.
//! * [`run_shard`] / [`ShardSpec`] — `K` independent processes split one
//!   journal-compatible run by `unit.id % K`; a killed process resumes from
//!   where its journal stops.
//! * [`merge`] — reduces unit results into
//!   `NetworkSweepReport`/`GranularityReport`/`OpTypeReport` (or a
//!   [`CriticalBerReport`]), bit-identical to the in-memory campaign.
//!
//! Every image's fault seed derives from the campaign base seed and the
//! image's global index alone (see [`WorkUnit::image_seed`]), which is what
//! makes results independent of execution order, sharding and restarts.
//!
//! The `wgft-sweep` binary drives all of this from the command line
//! (`run` / `status` / `resume` / `merge`, with `--shards`/`--shard-index`).
//!
//! ```no_run
//! use wgft_core::CampaignConfig;
//! use wgft_fixedpoint::BitWidth;
//! use wgft_nn::models::ModelKind;
//! use wgft_sweep::{merge_sweep, resume_sweep, run_sweep, ShardSpec, SilentProgress, SweepKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = CampaignConfig::test_scale(ModelKind::VggSmall, BitWidth::W8);
//! let dir = "target/sweeps/demo";
//! // First process: shard 0 of 2. (A second process would run shard 1.)
//! run_sweep(
//!     dir,
//!     SweepKind::NetworkSweep,
//!     &config,
//!     &[0.0, 1e-4],
//!     8,
//!     ShardSpec::new(2, 0)?,
//!     &SilentProgress,
//! )?;
//! // ... later, after a kill or on another worker: finish what's missing.
//! resume_sweep(dir, ShardSpec::new(2, 1)?, &SilentProgress)?;
//! let report = merge_sweep(dir)?;
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod journal;
mod merge;
mod progress;
mod runner;
mod unit;

pub use error::SweepError;
pub use journal::{
    arithmetic_mode_supported, fnv1a64, CompletedSet, Journal, Manifest, ResultAppender,
    UnitResult, ARITHMETIC_MODE, ARITHMETIC_MODE_F32_DET, JOURNAL_VERSION, MANIFEST_FILE,
    SUPPORTED_ARITHMETIC_MODES,
};
pub use merge::{merge, CriticalBerReport, CriticalBerRow, MergedReport};
pub use progress::{render_status, ProgressSink, ProgressSnapshot, SilentProgress, TableProgress};
pub use runner::{
    evaluate_unit, prepare_campaign, run_shard, validate_baseline, ShardOutcome, ShardSpec,
};
pub use unit::{CellAbft, CellProtection, Granularity, SweepKind, SweepPlan, UnitCell, WorkUnit};

use wgft_core::{CampaignConfig, FaultToleranceCampaign};
use wgft_winograd::ConvAlgorithm;

/// Build the manifest for a freshly prepared campaign.
#[must_use]
pub fn manifest_for(
    kind: SweepKind,
    config: &CampaignConfig,
    bers: &[f64],
    chunk: usize,
    campaign: &FaultToleranceCampaign,
) -> Manifest {
    Manifest::new(
        kind,
        config.clone(),
        bers.to_vec(),
        chunk,
        campaign.eval_set().len(),
        campaign.quantized().name().to_string(),
        config.width.to_string(),
        campaign.clean_accuracy(),
        campaign.quantized().total_op_count(ConvAlgorithm::Standard),
        campaign
            .quantized()
            .total_op_count(ConvAlgorithm::winograd_default()),
    )
}

/// Prepare a campaign, create (or idempotently reopen) the journal at `dir`,
/// and execute one shard of the run.
///
/// If `dir` already journals the same plan, this behaves exactly like
/// [`resume_sweep`]; if it journals a *different* plan, it fails rather than
/// mixing incompatible results.
///
/// # Errors
///
/// Fails on campaign-preparation, journal or I/O errors.
pub fn run_sweep(
    dir: impl Into<std::path::PathBuf>,
    kind: SweepKind,
    config: &CampaignConfig,
    bers: &[f64],
    chunk: usize,
    shard: ShardSpec,
    progress: &dyn ProgressSink,
) -> Result<ShardOutcome, SweepError> {
    let campaign = FaultToleranceCampaign::prepare(config)?;
    let manifest = manifest_for(kind, config, bers, chunk, &campaign);
    let journal = Journal::create(dir, manifest)?;
    // `create` may have reopened an existing journal with the same plan
    // hash; the baseline fields are outside the hash, so check them too.
    validate_baseline(journal.manifest(), &campaign)?;
    run_shard(&journal, &campaign, shard, progress)
}

/// Reopen the journal at `dir`, re-prepare its campaign (validated against
/// the manifest baseline) and execute one shard of the remaining work.
///
/// # Errors
///
/// Fails on campaign-preparation, journal or I/O errors, and if the
/// re-prepared campaign does not reproduce the manifest's recorded baseline.
pub fn resume_sweep(
    dir: impl Into<std::path::PathBuf>,
    shard: ShardSpec,
    progress: &dyn ProgressSink,
) -> Result<ShardOutcome, SweepError> {
    let journal = Journal::open(dir)?;
    let campaign = prepare_campaign(journal.manifest())?;
    run_shard(&journal, &campaign, shard, progress)
}

/// Reduce the journal at `dir` into its campaign report.
///
/// # Errors
///
/// Fails if the journal is incomplete, inconsistent or unreadable.
pub fn merge_sweep(dir: impl Into<std::path::PathBuf>) -> Result<MergedReport, SweepError> {
    let journal = Journal::open(dir)?;
    let completed = journal.completed()?;
    merge(journal.manifest(), &completed)
}
