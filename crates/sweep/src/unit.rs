//! Deterministic decomposition of a campaign into work units.
//!
//! A [`SweepPlan`] expands a campaign kind over its bit-error-rate grid into
//! a stably ordered table of [`WorkUnit`]s — one (algorithm, BER,
//! granularity, protection, image-chunk) cell each. The table depends only on
//! the plan inputs, never on execution order, sharding or restarts, so two
//! processes that agree on the manifest agree on every unit id.

use serde::{Deserialize, Serialize};
use wgft_abft::AbftPolicy;
use wgft_core::FaultToleranceCampaign;
use wgft_faultsim::{OpType, ProtectionPlan};
use wgft_winograd::ConvAlgorithm;

/// Fault-injection granularity of a cell (the Figure 1 axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Operation-level injection (every multiply/add result can flip).
    OpLevel,
    /// Neuron-level injection (only layer outputs can flip).
    NeuronLevel,
}

impl Granularity {
    /// Short label used in progress output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Granularity::OpLevel => "op",
            Granularity::NeuronLevel => "neuron",
        }
    }
}

/// Protection applied to a cell, as a serializable tag that reconstructs the
/// same [`ProtectionPlan`] the monolithic campaign loops build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellProtection {
    /// No protection.
    Unprotected,
    /// All multiplications kept fault-free (Figure 4).
    MulFaultFree,
    /// All additions kept fault-free (Figure 4).
    AddFaultFree,
    /// Every operation kept fault-free — the idealized full-TMR reference
    /// of the protection trade-off campaign.
    AllFaultFree,
}

impl CellProtection {
    /// The protection plan this tag denotes.
    #[must_use]
    pub fn plan(self) -> ProtectionPlan {
        match self {
            CellProtection::Unprotected => ProtectionPlan::none(),
            CellProtection::MulFaultFree => {
                ProtectionPlan::none().with_fault_free_op_type(OpType::Mul)
            }
            CellProtection::AddFaultFree => {
                ProtectionPlan::none().with_fault_free_op_type(OpType::Add)
            }
            CellProtection::AllFaultFree => ProtectionPlan::none()
                .with_fault_free_op_type(OpType::Mul)
                .with_fault_free_op_type(OpType::Add),
        }
    }

    /// Short label used in progress output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            CellProtection::Unprotected => "none",
            CellProtection::MulFaultFree => "mul-free",
            CellProtection::AddFaultFree => "add-free",
            CellProtection::AllFaultFree => "all-free",
        }
    }
}

/// Executable ABFT applied to a cell, as a serializable tag that
/// reconstructs the same [`AbftPolicy`] the monolithic
/// `protection_tradeoff` loop builds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellAbft {
    /// No executable protection — the cell runs the stock datapath.
    #[default]
    Off,
    /// Range restriction only.
    RangeOnly,
    /// Checksummed GEMMs + transform guards + recompute.
    Checksum,
}

impl CellAbft {
    /// The policy this tag denotes (`None` runs the stock datapath).
    #[must_use]
    pub fn policy(self) -> Option<AbftPolicy> {
        match self {
            CellAbft::Off => None,
            CellAbft::RangeOnly => Some(AbftPolicy::range_only()),
            CellAbft::Checksum => Some(AbftPolicy::checksum()),
        }
    }

    /// Short label used in progress output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            CellAbft::Off => "no-abft",
            CellAbft::RangeOnly => "range",
            CellAbft::Checksum => "checksum",
        }
    }
}

/// One accuracy cell of a campaign: every evaluation image of the campaign is
/// classified once under this exact fault configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitCell {
    /// Convolution algorithm under test.
    pub algo: ConvAlgorithm,
    /// Bit error rate.
    pub ber: f64,
    /// Injection granularity.
    pub granularity: Granularity,
    /// Idealized protection applied inside the arithmetic.
    pub protection: CellProtection,
    /// Executable ABFT running around the arithmetic.
    pub abft: CellAbft,
}

impl UnitCell {
    /// Compact human-readable label (progress lines and status tables).
    #[must_use]
    pub fn label(&self) -> String {
        format!("ber={:.2e} {}", self.ber, self.kind_label())
    }

    /// The BER-independent part of the label: what *kind* of cell this is
    /// (algorithm, granularity, protection, ABFT). `status` groups unit
    /// counts by this so mixed-cell journals stay debuggable.
    #[must_use]
    pub fn kind_label(&self) -> String {
        let mut label = format!(
            "{} {} {}",
            self.algo.label(),
            self.granularity.label(),
            self.protection.label()
        );
        if self.abft != CellAbft::Off {
            label.push(' ');
            label.push_str(self.abft.label());
        }
        label
    }
}

/// Which campaign a sweep decomposes (the reduce step rebuilds the matching
/// monolithic report type).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SweepKind {
    /// Figure 2: standard vs winograd accuracy across bit error rates,
    /// reduced into a `NetworkSweepReport`.
    NetworkSweep,
    /// Figure 1: operation-level vs neuron-level injection, reduced into a
    /// `GranularityReport`.
    InjectionGranularity,
    /// Figure 4: add/mul fault-free protection, reduced into an
    /// `OpTypeReport`.
    OpTypeSensitivity,
    /// Accuracy-cliff search on the fixed geometric grid of
    /// `FaultToleranceCampaign::find_critical_ber`, reduced into a
    /// `CriticalBerReport`.
    FindCriticalBer {
        /// Algorithm whose cliff is located.
        algo: ConvAlgorithm,
        /// Fraction of the clean-minus-chance margin to keep (clamped to
        /// `[0, 1]` exactly like the monolithic search).
        keep_fraction: f64,
    },
    /// The accuracy-versus-overhead protection frontier (unprotected /
    /// idealized TMR / executable range restriction / executable ABFT,
    /// standard vs winograd), reduced into a `ProtectionTradeoffReport`.
    ProtectionTradeoff,
}

impl SweepKind {
    /// Snake-case label (CLI values and status output).
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            SweepKind::NetworkSweep => "network_sweep",
            SweepKind::InjectionGranularity => "injection_granularity",
            SweepKind::OpTypeSensitivity => "op_type_sensitivity",
            SweepKind::FindCriticalBer { .. } => "find_critical_ber",
            SweepKind::ProtectionTradeoff => "protection_tradeoff",
        }
    }

    /// The bit error rates this kind actually evaluates.
    ///
    /// Report-style sweeps use the requested grid verbatim; the critical-BER
    /// search ignores it and walks the same geometric grid as the monolithic
    /// `find_critical_ber` (1e-8 doubling until 1e-2), so the merged result
    /// is bit-identical to the in-memory search.
    #[must_use]
    pub fn effective_bers(&self, requested: &[f64]) -> Vec<f64> {
        match self {
            SweepKind::FindCriticalBer { .. } => {
                let mut grid = Vec::new();
                let mut ber = 1e-8;
                while ber < 1e-2 {
                    grid.push(ber);
                    ber *= 2.0;
                }
                grid
            }
            _ => requested.to_vec(),
        }
    }

    /// The cells evaluated at one bit error rate, in stable report order.
    #[must_use]
    pub fn cells_for_ber(&self, ber: f64) -> Vec<UnitCell> {
        let std = ConvAlgorithm::Standard;
        let wg = ConvAlgorithm::winograd_default();
        let cell = |algo, granularity, protection| UnitCell {
            algo,
            ber,
            granularity,
            protection,
            abft: CellAbft::Off,
        };
        match self {
            SweepKind::NetworkSweep => vec![
                cell(std, Granularity::OpLevel, CellProtection::Unprotected),
                cell(wg, Granularity::OpLevel, CellProtection::Unprotected),
            ],
            SweepKind::InjectionGranularity => vec![
                cell(std, Granularity::OpLevel, CellProtection::Unprotected),
                cell(wg, Granularity::OpLevel, CellProtection::Unprotected),
                cell(std, Granularity::NeuronLevel, CellProtection::Unprotected),
                cell(wg, Granularity::NeuronLevel, CellProtection::Unprotected),
            ],
            SweepKind::OpTypeSensitivity => vec![
                cell(std, Granularity::OpLevel, CellProtection::MulFaultFree),
                cell(std, Granularity::OpLevel, CellProtection::AddFaultFree),
                cell(wg, Granularity::OpLevel, CellProtection::MulFaultFree),
                cell(wg, Granularity::OpLevel, CellProtection::AddFaultFree),
                cell(std, Granularity::OpLevel, CellProtection::Unprotected),
                cell(wg, Granularity::OpLevel, CellProtection::Unprotected),
            ],
            SweepKind::FindCriticalBer { algo, .. } => vec![cell(
                *algo,
                Granularity::OpLevel,
                CellProtection::Unprotected,
            )],
            // One (scheme, algo) cell pair per frontier scheme, in the
            // monolithic report's scheme order (see
            // `wgft_core::TradeoffScheme::all`): the scheme is encoded as a
            // (protection, abft) tag pair so the merge can rebuild the
            // exact policies the monolithic loop evaluates.
            SweepKind::ProtectionTradeoff => {
                let schemes = [
                    (CellProtection::Unprotected, CellAbft::Off),
                    (CellProtection::AllFaultFree, CellAbft::Off),
                    (CellProtection::Unprotected, CellAbft::RangeOnly),
                    (CellProtection::Unprotected, CellAbft::Checksum),
                ];
                let mut cells = Vec::with_capacity(schemes.len() * 2);
                for (protection, abft) in schemes {
                    for algo in [std, wg] {
                        cells.push(UnitCell {
                            algo,
                            ber,
                            granularity: Granularity::OpLevel,
                            protection,
                            abft,
                        });
                    }
                }
                cells
            }
        }
    }
}

/// One schedulable unit of work: one cell restricted to a contiguous chunk of
/// evaluation images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Stable unit id — the unit's position in the plan table. Results are
    /// journaled under this id, and sharding assigns units by `id % shards`.
    pub id: u64,
    /// Index of the unit's cell in [`SweepPlan::cells`].
    pub cell_index: usize,
    /// The cell this unit evaluates.
    pub cell: UnitCell,
    /// First evaluation-image index (inclusive).
    pub start: usize,
    /// Number of evaluation images in this unit.
    pub len: usize,
}

impl WorkUnit {
    /// The fault seed of image `offset` (0-based within the unit).
    ///
    /// Derived from the campaign base seed and the unit's own coordinates
    /// (`start + offset` is the global image index), so it is identical no
    /// matter which shard evaluates the unit, in which order, after how many
    /// restarts — and identical to the seed the monolithic campaign loops
    /// derive for the same image.
    // wgft-audit: consensus-critical -- every shard must derive the same fault seed
    #[must_use]
    pub fn image_seed(&self, base_seed: u64, offset: usize) -> u64 {
        let image_index = self.start + offset;
        match self.cell.granularity {
            Granularity::OpLevel => {
                FaultToleranceCampaign::op_level_fault_seed(base_seed, image_index)
            }
            Granularity::NeuronLevel => {
                FaultToleranceCampaign::neuron_level_fault_seed(base_seed, image_index)
            }
        }
    }
}

/// The full, stably ordered unit table of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    kind: SweepKind,
    bers: Vec<f64>,
    images: usize,
    chunk: usize,
    cells: Vec<UnitCell>,
    units: Vec<WorkUnit>,
}

impl SweepPlan {
    /// Expand `kind` over its BER grid into the unit table.
    ///
    /// `images` is the evaluation-set size and `chunk` the images per unit
    /// (floored at one). Ordering is BER-major, then report cell order, then
    /// ascending image chunks; unit ids are the positions in that order.
    #[must_use]
    pub fn new(kind: SweepKind, requested_bers: &[f64], images: usize, chunk: usize) -> Self {
        let bers = kind.effective_bers(requested_bers);
        let chunk = chunk.max(1);
        let mut cells = Vec::new();
        let mut units = Vec::new();
        for &ber in &bers {
            for cell in kind.cells_for_ber(ber) {
                let cell_index = cells.len();
                cells.push(cell);
                let mut start = 0usize;
                while start < images {
                    let len = chunk.min(images - start);
                    units.push(WorkUnit {
                        id: units.len() as u64,
                        cell_index,
                        cell,
                        start,
                        len,
                    });
                    start += len;
                }
            }
        }
        Self {
            kind,
            bers,
            images,
            chunk,
            cells,
            units,
        }
    }

    /// The campaign kind this plan decomposes.
    #[must_use]
    pub fn kind(&self) -> SweepKind {
        self.kind
    }

    /// The effective BER grid (see [`SweepKind::effective_bers`]).
    #[must_use]
    pub fn bers(&self) -> &[f64] {
        &self.bers
    }

    /// Evaluation-set size the plan was built for.
    #[must_use]
    pub fn images(&self) -> usize {
        self.images
    }

    /// Images per unit.
    #[must_use]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// All cells in stable order.
    #[must_use]
    pub fn cells(&self) -> &[UnitCell] {
        &self.cells
    }

    /// The unit table in stable id order.
    #[must_use]
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Units of one cell, in ascending image order.
    pub fn units_of_cell(&self, cell_index: usize) -> impl Iterator<Item = &WorkUnit> {
        self.units
            .iter()
            .filter(move |u| u.cell_index == cell_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_stable_and_covers_every_image_once() {
        let plan = SweepPlan::new(SweepKind::InjectionGranularity, &[0.0, 1e-4], 10, 4);
        assert_eq!(plan.cells().len(), 2 * 4);
        // 10 images in chunks of 4 -> 3 units per cell.
        assert_eq!(plan.units().len(), 8 * 3);
        for (i, unit) in plan.units().iter().enumerate() {
            assert_eq!(unit.id, i as u64, "ids are table positions");
        }
        for cell_index in 0..plan.cells().len() {
            let covered: usize = plan.units_of_cell(cell_index).map(|u| u.len).sum();
            assert_eq!(covered, 10, "every cell covers the whole eval set");
            let mut next = 0usize;
            for unit in plan.units_of_cell(cell_index) {
                assert_eq!(unit.start, next, "chunks are contiguous and ordered");
                next += unit.len;
            }
        }
        // Rebuilding the plan yields the identical table.
        let again = SweepPlan::new(SweepKind::InjectionGranularity, &[0.0, 1e-4], 10, 4);
        assert_eq!(again, plan);
    }

    #[test]
    fn critical_ber_grid_matches_the_monolithic_search() {
        let kind = SweepKind::FindCriticalBer {
            algo: ConvAlgorithm::Standard,
            keep_fraction: 0.5,
        };
        let grid = kind.effective_bers(&[123.0]);
        // Replicates `find_critical_ber`: 1e-8 doubling while < 1e-2.
        let mut expect = Vec::new();
        let mut ber = 1e-8;
        while ber < 1e-2 {
            expect.push(ber);
            ber *= 2.0;
        }
        assert_eq!(grid, expect);
        assert_eq!(kind.cells_for_ber(1e-8).len(), 1);
    }

    #[test]
    fn unit_seed_is_a_pure_function_of_global_image_index() {
        let plan = SweepPlan::new(SweepKind::NetworkSweep, &[1e-5], 9, 2);
        let base = 0xC0FFEE;
        for unit in plan.units() {
            for offset in 0..unit.len {
                let expect = match unit.cell.granularity {
                    Granularity::OpLevel => {
                        FaultToleranceCampaign::op_level_fault_seed(base, unit.start + offset)
                    }
                    Granularity::NeuronLevel => {
                        FaultToleranceCampaign::neuron_level_fault_seed(base, unit.start + offset)
                    }
                };
                assert_eq!(unit.image_seed(base, offset), expect);
            }
        }
    }

    #[test]
    fn protection_tags_rebuild_the_monolithic_plans() {
        assert!(CellProtection::Unprotected.plan().is_empty());
        assert!(CellProtection::MulFaultFree
            .plan()
            .is_op_type_fault_free(OpType::Mul));
        assert!(CellProtection::AddFaultFree
            .plan()
            .is_op_type_fault_free(OpType::Add));
    }
}
