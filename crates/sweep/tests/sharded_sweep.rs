//! Integration tests for the sharded sweep subsystem: bit-identical parity
//! with the monolithic campaign loops, kill/resume recovery (including a
//! corrupted trailing JSONL line), and journal-compatible resharding.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use wgft_core::{CampaignConfig, FaultToleranceCampaign};
use wgft_fixedpoint::BitWidth;
use wgft_nn::models::ModelKind;
use wgft_sweep::{
    evaluate_unit, manifest_for, merge, merge_sweep, resume_sweep, run_shard, run_sweep, Journal,
    MergedReport, ShardSpec, SilentProgress, SweepError, SweepKind, UnitResult,
};
use wgft_winograd::ConvAlgorithm;

/// Evaluation images per campaign — small enough for CI, uneven against the
/// 3-image chunk so chunk-tail handling is exercised.
const IMAGES: usize = 8;
/// Images per work unit (deliberately not a divisor of IMAGES).
const CHUNK: usize = 3;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config() -> CampaignConfig {
    CampaignConfig::test_scale(ModelKind::VggSmall, BitWidth::W8)
        .with_images(IMAGES)
        .with_cache_dir(PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("model-cache"))
}

/// One shared prepared campaign per test binary: the first caller trains and
/// populates the model cache, so every in-test `run_sweep`/`resume_sweep`
/// preparation afterwards loads from the cache.
fn campaign() -> &'static FaultToleranceCampaign {
    static CAMPAIGN: OnceLock<FaultToleranceCampaign> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        FaultToleranceCampaign::prepare(&config()).expect("campaign preparation must succeed")
    })
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serialization must succeed")
}

#[test]
fn range_counts_partition_the_monolithic_accuracy() {
    // The per-unit primitive must sum to the monolithic accuracy for any
    // partition and any evaluation order — this is the property every other
    // guarantee in this file rests on.
    let campaign = campaign();
    let ber = wgft_faultsim::BitErrorRate::new(3e-3);
    let protection = wgft_faultsim::ProtectionPlan::none();
    let algo = ConvAlgorithm::winograd_default();
    let full = campaign.accuracy_under(algo, ber, &protection);
    for split in [1usize, 3, 5, IMAGES] {
        // Evaluate the ranges back to front: order must not matter.
        let mut correct = 0usize;
        let mut starts: Vec<usize> = (0..IMAGES).step_by(split).collect();
        starts.reverse();
        for start in starts {
            correct += campaign.correct_op_level(algo, ber, &protection, start, split);
        }
        assert!(
            (full - correct as f64 / IMAGES as f64).abs() == 0.0,
            "partition with stride {split} must reproduce the accuracy bit for bit"
        );
    }
}

#[test]
fn sharded_network_sweep_matches_monolithic_bit_for_bit() {
    let campaign = campaign();
    let bers = [0.0, 3e-3];
    let dir = tmp_dir("network-parity");
    // Two shards, run one after the other like two independent processes.
    for index in 0..2 {
        let outcome = run_sweep(
            &dir,
            SweepKind::NetworkSweep,
            &config(),
            &bers,
            CHUNK,
            ShardSpec::new(2, index).unwrap(),
            &SilentProgress,
        )
        .expect("shard must run");
        assert_eq!(outcome.skipped, 0, "fresh run has nothing to skip");
    }
    let merged = merge_sweep(&dir).expect("complete journal must merge");
    let MergedReport::NetworkSweep(merged) = merged else {
        panic!("network sweep must merge into a NetworkSweepReport");
    };
    let monolithic = campaign.network_sweep(&bers);
    assert_eq!(json(&merged), json(&monolithic), "byte-identical report");
}

#[test]
fn sharded_granularity_and_op_type_match_monolithic_bit_for_bit() {
    let campaign = campaign();
    let bers = [3e-3];

    let dir = tmp_dir("granularity-parity");
    run_sweep(
        &dir,
        SweepKind::InjectionGranularity,
        &config(),
        &bers,
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run must succeed");
    let MergedReport::Granularity(merged) = merge_sweep(&dir).expect("merge") else {
        panic!("granularity sweep must merge into a GranularityReport");
    };
    assert_eq!(json(&merged), json(&campaign.injection_granularity(&bers)));

    let dir = tmp_dir("optype-parity");
    run_sweep(
        &dir,
        SweepKind::OpTypeSensitivity,
        &config(),
        &bers,
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run must succeed");
    let MergedReport::OpType(merged) = merge_sweep(&dir).expect("merge") else {
        panic!("op-type sweep must merge into an OpTypeReport");
    };
    assert_eq!(json(&merged), json(&campaign.op_type_sensitivity(&bers)));
}

#[test]
fn sharded_critical_ber_matches_monolithic_search() {
    let campaign = campaign();
    let kind = SweepKind::FindCriticalBer {
        algo: ConvAlgorithm::Standard,
        keep_fraction: 0.5,
    };
    let dir = tmp_dir("critical-parity");
    run_sweep(
        &dir,
        kind,
        &config(),
        &[],
        IMAGES, // one unit per grid point
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run must succeed");
    let MergedReport::CriticalBer(merged) = merge_sweep(&dir).expect("merge") else {
        panic!("critical-BER sweep must merge into a CriticalBerReport");
    };
    let monolithic = campaign.find_critical_ber(ConvAlgorithm::Standard, 0.5);
    assert_eq!(
        merged.critical_ber.to_bits(),
        monolithic.to_bits(),
        "merged cliff must equal the in-memory search bit for bit"
    );
}

#[test]
fn sharded_protection_tradeoff_matches_monolithic_bit_for_bit() {
    let campaign = campaign();
    let bers = [3e-3];
    let dir = tmp_dir("tradeoff-parity");
    // Two shards, run one after the other like two independent processes.
    for index in 0..2 {
        run_sweep(
            &dir,
            SweepKind::ProtectionTradeoff,
            &config(),
            &bers,
            CHUNK,
            ShardSpec::new(2, index).unwrap(),
            &SilentProgress,
        )
        .expect("shard must run");
    }
    let MergedReport::ProtectionTradeoff(merged) = merge_sweep(&dir).expect("merge") else {
        panic!("protection tradeoff must merge into a ProtectionTradeoffReport");
    };
    let monolithic = campaign.protection_tradeoff(&bers);
    assert_eq!(
        json(&merged),
        json(&monolithic),
        "byte-identical frontier report, events and overheads included"
    );
    // The merged report carries real executable-protection evidence: the
    // ABFT scheme pays measured overhead at this heavy BER.
    let abft_row = merged
        .rows
        .iter()
        .find(|r| r.scheme == wgft_core::TradeoffScheme::Abft)
        .expect("ABFT row present");
    assert!(abft_row.winograd_overhead > 0.0);
}

/// The fifth campaign kind honours the same kill/resume contract as the
/// first four: a journal truncated at a line boundary *and* torn mid-line
/// resumes — under a different shard layout — to a byte-identical report.
#[test]
fn killed_tradeoff_run_resumes_to_a_bit_identical_report() {
    let campaign = campaign();
    let bers = [3e-3];
    let monolithic = json(&campaign.protection_tradeoff(&bers));
    let dir = tmp_dir("tradeoff-kill-resume");
    run_sweep(
        &dir,
        SweepKind::ProtectionTradeoff,
        &config(),
        &bers,
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run must succeed");

    let results = result_file(&dir);
    let full = fs::read_to_string(&results).expect("result file exists");
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() >= 4, "need enough units to truncate mid-way");
    let keep = lines.len() / 2;
    let mut truncated = lines[..keep].join("\n") + "\n";
    // Torn trailing line, the footprint of a SIGKILLed writer.
    truncated.push_str("{\"unit\":1,\"corr");
    fs::write(&results, truncated).unwrap();

    let outcome = resume_sweep(&dir, ShardSpec::new(3, 0).unwrap(), &SilentProgress)
        .expect("resume shard 0 must succeed");
    assert!(outcome.evaluated > 0, "resume must re-evaluate lost units");
    for index in 1..3 {
        resume_sweep(&dir, ShardSpec::new(3, index).unwrap(), &SilentProgress)
            .expect("resume must succeed");
    }
    let MergedReport::ProtectionTradeoff(merged) = merge_sweep(&dir).expect("merge") else {
        panic!("wrong report kind");
    };
    assert_eq!(
        json(&merged),
        monolithic,
        "resumed tradeoff run must be byte-identical to the monolithic loop"
    );
}

/// Kill/resume drill: interrupt a run by truncating its journal mid-way —
/// once at a line boundary (results lost) and once mid-line (the footprint
/// of a killed writer) — then resume and require the merged report to be
/// byte-identical to an uninterrupted run.
#[test]
fn killed_run_resumes_to_a_bit_identical_report() {
    let campaign = campaign();
    let bers = [0.0, 3e-3];
    let monolithic = json(&campaign.network_sweep(&bers));

    let dir = tmp_dir("kill-resume");
    run_sweep(
        &dir,
        SweepKind::NetworkSweep,
        &config(),
        &bers,
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run must succeed");

    let results = result_file(&dir);
    let full = fs::read_to_string(&results).expect("result file exists");
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() >= 4, "need enough units to truncate mid-way");

    // 1. Truncate at a line boundary: half the results vanish.
    let keep = lines.len() / 2;
    fs::write(&results, lines[..keep].join("\n") + "\n").unwrap();
    let err = merge_sweep(&dir).expect_err("incomplete journal must not merge");
    assert!(matches!(err, SweepError::Incomplete { .. }), "got {err}");

    // 2. Corrupt the tail the way a kill does: a partial line with no
    //    trailing newline.
    let mut partial = fs::read_to_string(&results).unwrap();
    partial.push_str("{\"unit\":3,\"corr");
    fs::write(&results, partial).unwrap();

    // Resume with a *different* shard count than the original writer — the
    // journal is shard-agnostic.
    let outcome = resume_sweep(&dir, ShardSpec::new(2, 0).unwrap(), &SilentProgress)
        .expect("resume shard 0 must succeed");
    assert!(outcome.evaluated > 0, "resume must re-evaluate lost units");
    let outcome = resume_sweep(&dir, ShardSpec::new(2, 1).unwrap(), &SilentProgress)
        .expect("resume shard 1 must succeed");
    assert!(outcome.run_complete(), "both shards finish the run");

    let MergedReport::NetworkSweep(merged) = merge_sweep(&dir).expect("merge") else {
        panic!("network sweep must merge into a NetworkSweepReport");
    };
    assert_eq!(
        json(&merged),
        monolithic,
        "resumed run must be byte-identical to the uninterrupted one"
    );
}

/// A kill can land between a line's JSON bytes and its newline, leaving a
/// *parseable* unterminated tail. The reader must drop it exactly like the
/// appender's tail repair does — counting it as done would let a resume
/// skip the unit and then delete its bytes from disk, wedging the journal.
#[test]
fn parseable_unterminated_tail_is_dropped_and_reevaluated() {
    let campaign = campaign();
    let bers = [0.0, 3e-3];
    let monolithic = json(&campaign.network_sweep(&bers));
    let dir = tmp_dir("parseable-tail");
    run_sweep(
        &dir,
        SweepKind::NetworkSweep,
        &config(),
        &bers,
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run must succeed");
    let results = result_file(&dir);
    let text = fs::read_to_string(&results).unwrap();
    assert!(text.ends_with('\n'));
    // Strip only the final newline: the last line still parses.
    fs::write(&results, &text[..text.len() - 1]).unwrap();

    let journal = Journal::open(&dir).expect("journal opens");
    let completed = journal.completed().expect("read back");
    assert_eq!(completed.dropped_partial_lines, 1);
    let total = journal.manifest().plan().units().len();
    assert_eq!(completed.results.len(), total - 1, "tail unit not counted");

    // Resume with the same shard layout (the reported bug scenario): the
    // unit must be re-evaluated, not skipped-then-truncated.
    let outcome = resume_sweep(&dir, ShardSpec::single(), &SilentProgress).expect("resume");
    assert_eq!(outcome.evaluated, 1);
    assert!(outcome.run_complete());
    let MergedReport::NetworkSweep(merged) = merge_sweep(&dir).expect("merge") else {
        panic!("wrong report kind");
    };
    assert_eq!(json(&merged), monolithic);
}

/// A corrupted *complete* line (newline-terminated garbage) is beyond what a
/// kill can produce and must be a hard error, not silent recovery.
#[test]
fn corrupt_interior_line_is_a_hard_error() {
    let campaign = campaign();
    let _ = campaign; // shared cache priming
    let dir = tmp_dir("corrupt-interior");
    run_sweep(
        &dir,
        SweepKind::NetworkSweep,
        &config(),
        &[0.0],
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run must succeed");
    let results = result_file(&dir);
    let mut text = fs::read_to_string(&results).unwrap();
    text.insert_str(0, "not json at all\n");
    fs::write(&results, text).unwrap();
    let err = merge_sweep(&dir).expect_err("corrupt interior line must fail");
    assert!(matches!(err, SweepError::Journal { .. }), "got {err}");
}

/// Two journaled results for the same unit must agree; a disagreement means
/// the journal mixes incompatible runs and must be rejected.
#[test]
fn conflicting_duplicate_results_are_rejected() {
    let campaign = campaign();
    let cfg = config();
    let manifest = manifest_for(SweepKind::NetworkSweep, &cfg, &[0.0], CHUNK, campaign);
    let dir = tmp_dir("conflicting-dup");
    let journal = Journal::create(&dir, manifest).expect("create");
    let unit = journal.manifest().plan().units()[0].clone();
    let result = evaluate_unit(campaign, &unit);
    let mut appender = journal.appender(1, 0).expect("appender");
    appender.append(&result).unwrap();
    appender
        .append(&UnitResult {
            correct: result.correct + 1,
            ..result
        })
        .unwrap();
    let err = journal.completed().expect_err("conflict must be detected");
    assert!(matches!(err, SweepError::Journal { .. }), "got {err}");

    // An *agreeing* duplicate (e.g. overlapping shard specs) is fine.
    let dir = tmp_dir("agreeing-dup");
    let manifest = manifest_for(SweepKind::NetworkSweep, &cfg, &[0.0], CHUNK, campaign);
    let journal = Journal::create(&dir, manifest).expect("create");
    let mut appender = journal.appender(1, 0).expect("appender");
    appender.append(&result).unwrap();
    appender.append(&result).unwrap();
    let completed = journal.completed().expect("agreeing duplicates are fine");
    assert_eq!(completed.results.len(), 1);
}

/// `run` against a directory journaling a different plan must refuse.
#[test]
fn mismatched_journal_directory_is_rejected() {
    let campaign = campaign();
    let _ = campaign;
    let dir = tmp_dir("mismatched-dir");
    run_sweep(
        &dir,
        SweepKind::NetworkSweep,
        &config(),
        &[0.0],
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("first run must succeed");
    let err = run_sweep(
        &dir,
        SweepKind::NetworkSweep,
        &config(),
        &[0.0, 3e-3], // different BER grid -> different plan hash
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect_err("a different plan must not reuse the journal");
    assert!(matches!(err, SweepError::Manifest { .. }), "got {err}");

    // Re-running the *same* plan is idempotent: everything is skipped.
    let outcome = run_sweep(
        &dir,
        SweepKind::NetworkSweep,
        &config(),
        &[0.0],
        CHUNK,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("identical re-run must succeed");
    assert_eq!(outcome.evaluated, 0);
    assert_eq!(outcome.skipped, outcome.owned);
}

/// Executing units out of order (and merging from a hand-built journal) is
/// bit-identical to in-order execution: nothing about a unit depends on when
/// it runs.
#[test]
fn out_of_order_unit_execution_is_bit_identical() {
    let campaign = campaign();
    let cfg = config();
    let bers = [3e-3];
    let manifest = manifest_for(SweepKind::NetworkSweep, &cfg, &bers, CHUNK, campaign);
    let plan = manifest.plan();

    let dir = tmp_dir("out-of-order");
    let journal = Journal::create(&dir, manifest).expect("create");
    let mut units: Vec<_> = plan.units().to_vec();
    units.reverse();
    let mut appender = journal.appender(1, 0).expect("appender");
    for unit in &units {
        appender.append(&evaluate_unit(campaign, unit)).unwrap();
    }
    let completed = journal.completed().expect("read back");
    let MergedReport::NetworkSweep(merged) = merge(journal.manifest(), &completed).expect("merge")
    else {
        panic!("wrong report kind");
    };
    assert_eq!(json(&merged), json(&campaign.network_sweep(&bers)));
}

/// Every unit belongs to exactly one shard, for any shard count.
#[test]
fn shards_partition_the_unit_table() {
    let campaign = campaign();
    let manifest = manifest_for(
        SweepKind::InjectionGranularity,
        &config(),
        &[0.0, 1e-4, 3e-3],
        CHUNK,
        campaign,
    );
    let plan = manifest.plan();
    for shards in 1..=5u64 {
        let mut owners = vec![0usize; plan.units().len()];
        for index in 0..shards {
            let shard = ShardSpec::new(shards, index).unwrap();
            for unit in plan.units() {
                if shard.owns(unit.id) {
                    owners[unit.id as usize] += 1;
                }
            }
        }
        assert!(
            owners.iter().all(|&n| n == 1),
            "{shards} shards must partition the table exactly"
        );
    }
    assert!(ShardSpec::new(0, 0).is_err());
    assert!(ShardSpec::new(2, 2).is_err());
}

/// `run_shard` with a stale manifest baseline must be rejected (the
/// environment no longer reproduces the original run).
#[test]
fn tampered_baseline_is_rejected_on_resume() {
    let campaign = campaign();
    let mut manifest = manifest_for(SweepKind::NetworkSweep, &config(), &[0.0], CHUNK, campaign);
    manifest.clean_accuracy += 0.25;
    let err = wgft_sweep::validate_baseline(&manifest, campaign)
        .expect_err("baseline mismatch must be rejected");
    assert!(matches!(err, SweepError::Manifest { .. }), "got {err}");

    // And run_shard on an agreeing journal works end to end.
    let manifest = manifest_for(SweepKind::NetworkSweep, &config(), &[0.0], CHUNK, campaign);
    let dir = tmp_dir("runshard-direct");
    let journal = Journal::create(&dir, manifest).expect("create");
    let outcome =
        run_shard(&journal, campaign, ShardSpec::single(), &SilentProgress).expect("run_shard");
    assert!(outcome.run_complete());
}

/// Manifest validation failures must name the offending file and both
/// content hashes (expected-from-plan vs found-on-disk), so a drifted or
/// hand-edited journal is diagnosable from the error alone.
#[test]
fn manifest_errors_name_the_path_and_both_content_hashes() {
    let campaign = campaign();
    let manifest = manifest_for(SweepKind::NetworkSweep, &config(), &[0.0], CHUNK, campaign);
    let expected_hash = manifest.content_hash.clone();
    let dir = tmp_dir("manifest-error-detail");
    drop(Journal::create(&dir, manifest).expect("create"));

    // Tamper with a hashed field on disk (the BER grid) without updating
    // the recorded content hash.
    let manifest_path = dir.join(wgft_sweep::MANIFEST_FILE);
    let text = fs::read_to_string(&manifest_path).expect("manifest readable");
    assert!(text.contains("[0.0]"), "fixture expects a [0.0] BER grid");
    fs::write(&manifest_path, text.replace("[0.0]", "[0.5]")).expect("manifest writable");

    let err = Journal::open(&dir).expect_err("tampered manifest must be rejected");
    let message = err.to_string();
    assert!(
        message.contains(manifest_path.display().to_string().as_str()),
        "error must name the offending file: {message}"
    );
    assert!(
        message.contains(&expected_hash) || message.contains("expected"),
        "error must state the found-on-disk hash and what was expected: {message}"
    );
    assert!(
        message.contains("content hash mismatch"),
        "error must say what kind of mismatch this is: {message}"
    );

    // Creating a *different* run over an existing journal must name both
    // hashes and the manifest path too.
    let other = manifest_for(
        SweepKind::NetworkSweep,
        &config(),
        &[0.0, 1e-4],
        CHUNK,
        campaign,
    );
    let other_hash = other.content_hash.clone();
    let dir = tmp_dir("manifest-error-conflict");
    let first = manifest_for(SweepKind::NetworkSweep, &config(), &[0.0], CHUNK, campaign);
    let first_hash = first.content_hash.clone();
    drop(Journal::create(&dir, first).expect("create"));
    let err = Journal::create(&dir, other).expect_err("conflicting plan must be rejected");
    let message = err.to_string();
    assert!(
        message.contains(&other_hash) && message.contains(&first_hash),
        "error must show the found and expected hashes: {message}"
    );
    assert!(
        message.contains(
            dir.join(wgft_sweep::MANIFEST_FILE)
                .display()
                .to_string()
                .as_str()
        ),
        "error must name the manifest path: {message}"
    );
}

/// The tile axis through the journal, both directions: a non-default tile
/// is recorded in the manifest (variant plus interpolation point set),
/// survives a disk round trip and tags the merged report; a version-3
/// journal — which predates the axis — still loads, runs and merges as the
/// default F(2x2,3x3); and a v3 manifest claiming a non-default tile is
/// rejected as tampered.
#[test]
fn tile_axis_versions_the_journal_both_directions() {
    use wgft_winograd::{WinogradVariant, F4X4_3X3};
    let bers = [0.0, 3e-3];

    // Forward: a campaign prepared with F(4x4,3x3) tiles.
    let cfg4 = config().with_tile(F4X4_3X3);
    let campaign4 = FaultToleranceCampaign::prepare(&cfg4).expect("F4x4 campaign prepares");
    let manifest = manifest_for(SweepKind::NetworkSweep, &cfg4, &bers, CHUNK, &campaign4);
    assert_eq!(manifest.tile, F4X4_3X3);
    assert_eq!(manifest.tile_points, "0,1,-1,2,-2");
    let dir = tmp_dir("tile-axis-f4x4");
    let journal = Journal::create(&dir, manifest).expect("create");
    let outcome =
        run_shard(&journal, &campaign4, ShardSpec::single(), &SilentProgress).expect("run_shard");
    assert!(outcome.run_complete());
    let reopened = Journal::open(&dir).expect("tile fields survive the disk round trip");
    assert_eq!(reopened.manifest().tile, F4X4_3X3);
    let completed = reopened.completed().expect("completed");
    let MergedReport::NetworkSweep(merged) = merge(reopened.manifest(), &completed).expect("merge")
    else {
        panic!("wrong report kind");
    };
    assert_eq!(
        merged.tile, F4X4_3X3,
        "merged report must carry the tile tag"
    );
    assert_eq!(json(&merged), json(&campaign4.network_sweep(&bers)));

    // Backward: a version-3 journal. Its manifest never grew tile fields
    // (the default tile is skip-serialized), so synthesizing one from the
    // current build is byte-compatible with what a v3 build wrote.
    let campaign = campaign();
    let mut v3 = manifest_for(SweepKind::NetworkSweep, &config(), &bers, CHUNK, campaign);
    v3.version = 3;
    v3.content_hash = v3.plan_hash();
    assert!(
        !json(&v3).contains("\"tile\""),
        "a default-tile manifest must not serialize tile fields"
    );
    let dir = tmp_dir("tile-axis-v3");
    let journal = Journal::create(&dir, v3).expect("v3 journal must stay loadable");
    assert_eq!(journal.manifest().tile, WinogradVariant::default());
    let outcome =
        run_shard(&journal, campaign, ShardSpec::single(), &SilentProgress).expect("run_shard");
    assert!(outcome.run_complete());
    let completed = journal.completed().expect("completed");
    let MergedReport::NetworkSweep(merged) = merge(journal.manifest(), &completed).expect("merge")
    else {
        panic!("wrong report kind");
    };
    assert_eq!(json(&merged), json(&campaign.network_sweep(&bers)));

    // Rejected: version 3 cannot have produced a non-default tile.
    let mut bad = manifest_for(SweepKind::NetworkSweep, &cfg4, &bers, CHUNK, &campaign4);
    bad.version = 3;
    bad.content_hash = bad.plan_hash();
    let err = bad
        .validate()
        .expect_err("a v3 manifest claiming a tile must be rejected");
    assert!(
        err.to_string().contains("predates the tile axis"),
        "got {err}"
    );
}

/// The dataset-source axis through the journal, both directions: a CIFAR-10
/// campaign records its source in the manifest (format v5) and journals,
/// resumes and merges like any other; a version-4 journal — which predates
/// the knob — still loads, runs and merges as a synthetic run; a v4 manifest
/// claiming a non-default source is rejected as tampered; and so is a
/// manifest whose top-level tag disagrees with its embedded config.
#[test]
fn dataset_source_versions_the_journal_both_directions() {
    use wgft_core::DatasetSource;
    let bers = [0.0, 3e-3];

    // Forward: a campaign over the replicated CIFAR-10 fixture.
    let cifar_dir = tmp_dir("dataset-axis-batches");
    fs::create_dir_all(&cifar_dir).expect("create batch dir");
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("../data/fixtures/cifar10-tiny.bin");
    for i in 0..4 {
        fs::copy(&fixture, cifar_dir.join(format!("batch_{i}.bin"))).expect("copy fixture");
    }
    let cifar_cfg = CampaignConfig::cifar10(ModelKind::VggSmall, BitWidth::W8, &cifar_dir)
        .with_images(4)
        .with_train_config(wgft_nn::TrainConfig {
            epochs: 1,
            ..wgft_nn::TrainConfig::cifar10_recipe()
        });
    let cifar_campaign =
        FaultToleranceCampaign::prepare(&cifar_cfg).expect("CIFAR campaign prepares");
    let manifest = manifest_for(
        SweepKind::NetworkSweep,
        &cifar_cfg,
        &bers,
        CHUNK,
        &cifar_campaign,
    );
    assert_eq!(manifest.version, 5);
    assert_eq!(manifest.dataset.label(), "cifar10");
    assert!(json(&manifest).contains("\"dataset\""));
    let dir = tmp_dir("dataset-axis-cifar");
    let journal = Journal::create(&dir, manifest).expect("create");
    let outcome = run_shard(
        &journal,
        &cifar_campaign,
        ShardSpec::single(),
        &SilentProgress,
    )
    .expect("run_shard");
    assert!(outcome.run_complete());
    let reopened = Journal::open(&dir).expect("dataset field survives the disk round trip");
    assert_eq!(reopened.manifest().dataset.label(), "cifar10");
    let completed = reopened.completed().expect("completed");
    let MergedReport::NetworkSweep(merged) = merge(reopened.manifest(), &completed).expect("merge")
    else {
        panic!("wrong report kind");
    };
    assert_eq!(json(&merged), json(&cifar_campaign.network_sweep(&bers)));

    // Backward: a version-4 journal. Its manifest never grew the dataset
    // field (the synthetic default is skip-serialized), so synthesizing one
    // from the current build is byte-compatible with what a v4 build wrote.
    let campaign = campaign();
    let mut v4 = manifest_for(SweepKind::NetworkSweep, &config(), &bers, CHUNK, campaign);
    v4.version = 4;
    v4.content_hash = v4.plan_hash();
    assert!(
        !json(&v4).contains("\"dataset\""),
        "a synthetic-data manifest must not serialize the dataset field"
    );
    let dir = tmp_dir("dataset-axis-v4");
    let journal = Journal::create(&dir, v4).expect("v4 journal must stay loadable");
    assert!(journal.manifest().dataset.is_synthetic());
    let outcome =
        run_shard(&journal, campaign, ShardSpec::single(), &SilentProgress).expect("run_shard");
    assert!(outcome.run_complete());
    let completed = journal.completed().expect("completed");
    let MergedReport::NetworkSweep(merged) = merge(journal.manifest(), &completed).expect("merge")
    else {
        panic!("wrong report kind");
    };
    assert_eq!(json(&merged), json(&campaign.network_sweep(&bers)));

    // Rejected: version 4 cannot have produced a non-default dataset source.
    let mut bad = manifest_for(
        SweepKind::NetworkSweep,
        &cifar_cfg,
        &bers,
        CHUNK,
        &cifar_campaign,
    );
    bad.version = 4;
    bad.content_hash = bad.plan_hash();
    let err = bad
        .validate()
        .expect_err("a v4 manifest claiming a dataset source must be rejected");
    assert!(
        err.to_string().contains("predates the dataset-source knob"),
        "got {err}"
    );

    // Rejected: the top-level tag must mirror the embedded config.
    let mut inconsistent = manifest_for(SweepKind::NetworkSweep, &config(), &bers, CHUNK, campaign);
    inconsistent.dataset = DatasetSource::Cifar10 {
        dir: "/edited/after/the/fact".into(),
    };
    inconsistent.content_hash = inconsistent.plan_hash();
    let err = inconsistent
        .validate()
        .expect_err("a mismatched dataset tag must be rejected");
    assert!(err.to_string().contains("disagrees"), "got {err}");
}

fn result_file(dir: &Path) -> PathBuf {
    let journal = Journal::open(dir).expect("journal opens");
    let files = journal.result_files().expect("listable");
    assert_eq!(files.len(), 1, "single-writer journal has one result file");
    files.into_iter().next().unwrap()
}

/// Journal parity across the fast-path routing change: a BER=0 work unit —
/// the cells that now execute on the uninstrumented quantized path — must
/// journal exactly the `correct` counts the instrumented datapath produces,
/// for both algorithms and both granularities. (A pre-routing journal
/// resumed today therefore merges bit-identically.)
#[test]
fn zero_ber_units_journal_identically_to_the_instrumented_datapath() {
    use wgft_faultsim::{BitErrorRate, FaultConfig, FaultyArithmetic, NeuronLevelInjector};
    use wgft_sweep::SweepPlan;

    let campaign = campaign();
    let plan = SweepPlan::new(SweepKind::InjectionGranularity, &[0.0], IMAGES, CHUNK);
    assert!(plan.units().iter().all(|u| u.cell.ber == 0.0));
    for unit in plan.units() {
        let result = evaluate_unit(campaign, unit);
        // Instrumented reference for exactly this unit's image range.
        let mut correct = 0u64;
        for offset in 0..unit.len {
            let image_index = unit.start + offset;
            let sample = &campaign.eval_set().samples()[image_index];
            let predicted = match unit.cell.granularity {
                wgft_sweep::Granularity::OpLevel => {
                    let config = FaultConfig {
                        ber: BitErrorRate::ZERO,
                        width: campaign.config().width,
                        model: campaign.config().fault_model,
                        protection: unit.cell.protection.plan(),
                    };
                    let seed = unit.image_seed(campaign.config().base_seed, offset);
                    let mut arith = FaultyArithmetic::new(config, seed);
                    campaign
                        .quantized()
                        .classify(&sample.image, &mut arith, unit.cell.algo)
                        .unwrap_or(usize::MAX)
                }
                wgft_sweep::Granularity::NeuronLevel => {
                    let seed = unit.image_seed(campaign.config().base_seed, offset);
                    let mut injector =
                        NeuronLevelInjector::new(BitErrorRate::ZERO, campaign.config().width, seed);
                    campaign
                        .quantized()
                        .forward_with_neuron_faults(&sample.image, &mut injector, unit.cell.algo)
                        .map_or(usize::MAX, |logits| {
                            if logits.is_empty() {
                                usize::MAX
                            } else {
                                wgft_data::argmax(&logits)
                            }
                        })
                }
            };
            correct += u64::from(predicted == sample.label);
        }
        assert_eq!(
            result.correct,
            correct,
            "unit {} ({}) diverged from the instrumented datapath",
            unit.id,
            unit.cell.label()
        );
        assert_eq!(result.len, unit.len as u64);
        assert_eq!(result.detected + result.corrected + result.uncorrected, 0);
    }
}
