//! Deliberately-violating fixture: float arithmetic inside a
//! consensus-critical region. Never compiled — the auditor's self-test
//! asserts the exact findings this file produces.

// wgft-audit: consensus-critical
pub fn leaky_seed(base: u64, index: u64) -> u64 {
    let jitter = (index as f32) * 0.5;
    let fused = (base as f64).mul_add(2.0, jitter as f64);
    fused as u64
}

pub fn uncritical(x: f32) -> f32 {
    // Outside any region: floats here are fine and must not be flagged.
    x * 2.0
}
