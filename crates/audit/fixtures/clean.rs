//! Clean fixture: consensus-critical integer code plus a blessed
//! deterministic-f32 wrapper, exactly the shapes the real workspace uses.
//! Never compiled — the auditor's self-test asserts this file produces no
//! findings.

// wgft-audit: consensus-critical
pub fn unit_seed(base: u64, image_index: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ base;
    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    hash ^ image_index.rotate_left(17)
}

// wgft-audit: consensus-critical
pub fn order_independent_sum(results: &BTreeMap<u64, u64>) -> u64 {
    results.values().copied().sum()
}

// wgft-audit: consensus-critical
// wgft-audit: blessed(float-arith) -- fixed i-j-k accumulation order; the det
// kernel is the executable spec the pinned vectors certify
pub fn tiny_gemm_det(a: &[f32], b: &[f32], k: usize) -> f32 {
    let mut acc = 0.0f32;
    for p in 0..k {
        acc += a[p] * b[p];
    }
    acc
}
