//! Deliberately-violating fixture: nondeterministic iteration, wall-clock
//! reads, runtime entropy and a parallel float reduction inside a
//! consensus-critical region. Never compiled — the auditor's self-test
//! asserts the exact findings this file produces.

// wgft-audit: consensus-critical
pub fn leaky_tally(units: &[u64]) -> u64 {
    let mut buckets = HashMap::new();
    let started = Instant::now();
    let mut rng = thread_rng();
    for &unit in units {
        *buckets.entry(unit % 7).or_insert(0u64) += rng.next_u64();
    }
    let total: f64 = units.par_iter().map(|&u| u as f64).sum();
    let _ = (started, total);
    buckets.len() as u64
}
