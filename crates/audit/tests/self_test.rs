//! Satellite: the auditor audited. The deliberately-violating fixtures must
//! produce exactly their expected findings, the clean fixture none, and the
//! real workspace must scan clean under the checked-in allowlist — the same
//! gate CI runs via `wgft-audit check --deny new`.

use std::path::{Path, PathBuf};
use wgft_audit::{scan_source, scan_workspace, Allowlist, Baseline};

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must be readable: {e}", path.display()));
    (format!("fixtures/{name}"), source)
}

fn rule_lines(file: &str, source: &str) -> Vec<(String, u32)> {
    scan_source(file, source)
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn float_fixture_produces_exactly_the_expected_findings() {
    let (file, source) = fixture("violating_float.rs");
    let findings = rule_lines(&file, &source);
    let expected: Vec<(String, u32)> = [
        ("float-arith", 7), // `as f32` cast
        ("float-arith", 7), // `0.5` literal
        ("float-arith", 8), // `as f64` cast
        ("float-arith", 8), // `2.0` literal
        ("float-arith", 8), // second `as f64` cast
        ("fma", 8),         // `mul_add`
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(findings, expected);
}

#[test]
fn hash_rng_fixture_produces_exactly_the_expected_findings() {
    let (file, source) = fixture("violating_hash_rng.rs");
    let findings = rule_lines(&file, &source);
    let expected: Vec<(String, u32)> = [
        ("hash-iteration", 8),   // HashMap
        ("wall-clock", 9),       // Instant::now
        ("unseeded-rng", 10),    // thread_rng
        ("float-arith", 14),     // `: f64` annotation
        ("float-arith", 14),     // `as f64` cast
        ("rayon-reduction", 14), // par_iter().map().sum()
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(findings, expected);
}

#[test]
fn severity_tiers_are_attached() {
    let (file, source) = fixture("violating_hash_rng.rs");
    let scan = scan_source(&file, &source);
    let severity = |rule: &str| {
        scan.findings
            .iter()
            .find(|f| f.rule == rule)
            .map(|f| f.severity.clone())
            .unwrap_or_default()
    };
    assert_eq!(severity("hash-iteration"), "deny");
    assert_eq!(severity("unseeded-rng"), "deny");
    assert_eq!(severity("rayon-reduction"), "deny");
    assert_eq!(severity("wall-clock"), "warn");
}

#[test]
fn clean_fixture_is_clean() {
    let (file, source) = fixture("clean.rs");
    let scan = scan_source(&file, &source);
    assert_eq!(
        scan.findings,
        vec![],
        "the clean fixture must produce zero findings"
    );
    assert_eq!(
        scan.regions.len(),
        3,
        "all three consensus-critical items must be recognized"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root must resolve")
}

#[test]
fn workspace_scans_clean_under_the_checked_in_allowlist() {
    let root = workspace_root();
    let allowlist = Allowlist::load(&root.join(wgft_audit::ALLOWLIST_FILE))
        .expect("checked-in allowlist must load and validate");
    let report = scan_workspace(&root, &allowlist).expect("workspace scan must succeed");
    assert!(
        report.findings.is_empty(),
        "workspace must have zero unsuppressed findings:\n{}",
        wgft_audit::render_text(&report)
    );
    assert!(
        report.regions >= 8,
        "the consensus-critical surface must stay annotated (got {} regions)",
        report.regions
    );
}

#[test]
fn checked_in_baseline_is_empty() {
    let root = workspace_root();
    let baseline = Baseline::load(&root.join(wgft_audit::BASELINE_FILE))
        .expect("checked-in baseline must load");
    assert_eq!(
        baseline.fingerprints,
        Vec::<String>::new(),
        "the baseline grandfathers nothing: new findings and all findings are the same set"
    );
}
