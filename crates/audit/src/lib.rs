//! `wgft-audit` — the workspace's determinism auditor.
//!
//! The distributed sweep fabric's bit-identical merge guarantee rests on a
//! claim about *arithmetic*: every campaign-visible number is computed in
//! integer/fixed-point arithmetic (the `quantized-exact-v1` mode) or in the
//! fixed-order deterministic-f32 kernels (`f32-det`), so any two builds that
//! agree on the manifest's arithmetic-mode tag produce the same bits. This
//! crate makes that claim *checkable* instead of asserted:
//!
//! * source regions carrying campaign-visible computation are annotated
//!   `// wgft-audit: consensus-critical` (item granularity) or
//!   `//! wgft-audit: consensus-critical` (whole file);
//! * inside those regions a token-level scanner ([`scan`]) flags the
//!   constructs that break cross-platform bit-identity: `f32`/`f64` types,
//!   casts and literals, `mul_add` (FMA), `HashMap`/`HashSet` iteration,
//!   `Instant`/`SystemTime` reads, unseeded RNG construction and rayon
//!   parallel reductions;
//! * the deterministic-f32 wrappers themselves are carved out with
//!   `// wgft-audit: blessed(float-arith) -- why`, and anything else is
//!   suppressed only through the central allowlist ([`workspace`]), where a
//!   justification is mandatory;
//! * CI runs `wgft-audit check --deny new` against a checked-in fingerprint
//!   baseline, so any *new* finding fails the build even if historical ones
//!   are grandfathered.
//!
//! The scanner is std-only and parses nothing: it lexes comments, strings
//! and tokens (no `syn`, consistent with the workspace's vendored-deps
//! constraint) and resolves annotation extents by brace matching. See
//! [`scan::RULES`] for the taxonomy and the repo README's "Determinism"
//! section for the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod scan;
pub mod workspace;

pub use scan::{scan_source, severity_of, FileScan, Finding, Region, RULES};
pub use workspace::{
    collect_files, render_text, scan_workspace, AllowEntry, Allowlist, AuditReport, Baseline,
    ALLOWLIST_FILE, BASELINE_FILE,
};
