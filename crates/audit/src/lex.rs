//! A comment- and string-aware token scanner for Rust source.
//!
//! This is deliberately *not* a parser: the auditor needs exactly four
//! things from a source file — identifiers, float literals, brace/semicolon
//! structure (to give annotations a region extent) and the `// wgft-audit:`
//! marker comments themselves. A token-level scan gets all four without a
//! `syn` dependency, which keeps the auditor inside the workspace's
//! vendored-deps constraint and fast enough to run on every CI push.
//!
//! The scanner understands the lexical shapes that would otherwise produce
//! false positives: line and (nested) block comments, string/raw-string/
//! byte-string literals, char literals vs lifetimes, numeric literals with
//! suffixes and exponents, and `1..n` ranges vs `1.0` floats. Everything it
//! does not care about is skipped without emitting a token.

/// One lexical token the rules engine cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`f32`, `HashMap`, `mul_add`, ...).
    Ident(String),
    /// A floating-point literal (`1.0`, `2e-3`, `1f32`).
    FloatLit,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `.` (method call / field access; `..` ranges are skipped)
    Dot,
    /// `::`
    PathSep,
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What was scanned.
    pub kind: TokKind,
    /// 1-based line number.
    pub line: u32,
}

/// One `wgft-audit:` marker comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// `true` for the inner-doc form (`//! wgft-audit: ...`), which applies
    /// to the whole enclosing file instead of the next item.
    pub inner: bool,
    /// The annotation text after the `wgft-audit:` prefix, trimmed.
    pub text: String,
}

/// The marker prefix the scanner recognizes inside line comments.
pub const MARKER_PREFIX: &str = "wgft-audit:";

/// Scanner output: the token stream plus every marker comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Markers in source order.
    pub markers: Vec<Marker>,
}

/// Scan `source`, returning tokens and `wgft-audit:` markers.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut line = 1u32;
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                record_marker(&text, line, &mut out.markers);
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => i = skip_string(&chars, i, &mut line),
            '\'' => {
                let next_is_ident =
                    i + 1 < n && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_');
                let closes_as_char = i + 2 < n && chars[i + 2] == '\'';
                if next_is_ident && !closes_as_char {
                    // Lifetime: `'a`, `'static` — skip the identifier run.
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    i = j;
                } else {
                    // Char literal, possibly escaped (`'\n'`, `'\\'`).
                    let mut j = i + 1;
                    while j < n && chars[j] != '\'' {
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        if chars[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    i = (j + 1).min(n);
                }
            }
            'r' | 'b' if raw_string_start(&chars, i).is_some() => {
                i = skip_raw_string(&chars, i, &mut line);
            }
            'b' if i + 1 < n && chars[i + 1] == '"' => {
                i = skip_string(&chars, i + 1, &mut line);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                out.tokens.push(Tok {
                    kind: TokKind::Ident(ident),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (j, is_float) = scan_number(&chars, i);
                if is_float {
                    out.tokens.push(Tok {
                        kind: TokKind::FloatLit,
                        line,
                    });
                }
                i = j;
            }
            '{' => {
                out.tokens.push(Tok {
                    kind: TokKind::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                out.tokens.push(Tok {
                    kind: TokKind::RBrace,
                    line,
                });
                i += 1;
            }
            ';' => {
                out.tokens.push(Tok {
                    kind: TokKind::Semi,
                    line,
                });
                i += 1;
            }
            '.' => {
                if i + 1 < n && chars[i + 1] == '.' {
                    // `..` / `..=` range — structural, not a member access.
                    i += 2;
                } else {
                    out.tokens.push(Tok {
                        kind: TokKind::Dot,
                        line,
                    });
                    i += 1;
                }
            }
            ':' => {
                if i + 1 < n && chars[i + 1] == ':' {
                    out.tokens.push(Tok {
                        kind: TokKind::PathSep,
                        line,
                    });
                    i += 2;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br##"`, ...),
/// return `(body_start, hashes)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let n = chars.len();
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if j >= n || chars[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < n && chars[j] == '"' {
        Some((j + 1, hashes))
    } else {
        None
    }
}

/// Skip a raw string starting at `i`; returns the index after its closer.
fn skip_raw_string(chars: &[char], i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let (start, hashes) = raw_string_start(chars, i).expect("caller checked");
    let mut j = start;
    while j < n {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut h = 0usize;
            while h < hashes && j + 1 + h < n && chars[j + 1 + h] == '#' {
                h += 1;
            }
            if h == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    n
}

/// Skip a `"..."` string with `\` escapes, starting at the opening quote.
fn skip_string(chars: &[char], i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut j = i + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Scan a numeric literal starting at `i`; returns the index after it and
/// whether it is a float.
fn scan_number(chars: &[char], i: usize) -> (usize, bool) {
    let n = chars.len();
    let mut j = i;
    let mut is_float = false;
    if chars[i] == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'X' | 'b' | 'B' | 'o' | 'O') {
        // Radix-prefixed integer: consume digits and any suffix.
        j = i + 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, false);
    }
    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    if j < n && chars[j] == '.' {
        let after = chars.get(j + 1).copied();
        if after.is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        } else if !after.is_some_and(|c| c == '.' || c.is_alphabetic() || c == '_') {
            // `1.` (trailing dot, not a range or method call) is a float.
            is_float = true;
            j += 1;
        }
    }
    if j < n && (chars[j] == 'e' || chars[j] == 'E') {
        let mut e = j + 1;
        if e < n && (chars[e] == '+' || chars[e] == '-') {
            e += 1;
        }
        if e < n && chars[e].is_ascii_digit() {
            is_float = true;
            j = e;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    let suffix_start = j;
    while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    }
    (j, is_float)
}

/// Record a marker if a line comment's text carries the `wgft-audit:` prefix.
fn record_marker(text: &str, line: u32, markers: &mut Vec<Marker>) {
    let mut t = text;
    let mut inner = false;
    if let Some(rest) = t.strip_prefix('!') {
        inner = true;
        t = rest;
    } else if t.starts_with('/') {
        // `///` outer doc comment: prose, never a marker.
        return;
    }
    if let Some(rest) = t.trim_start().strip_prefix(MARKER_PREFIX) {
        markers.push(Marker {
            line,
            inner,
            text: rest.trim().to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_emit_no_tokens() {
        let src = r####"
            // f32 in a comment
            /* f64 in /* a nested */ block */
            let s = "f32 in a string";
            let r = r#"f64 in a raw string"#;
            let b = b"f32 bytes";
        "####;
        let ids = idents(src);
        assert!(!ids.contains(&"f32".to_string()), "{ids:?}");
        assert!(!ids.contains(&"f64".to_string()), "{ids:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_do_not_swallow_code() {
        let ids = idents("let c = 'x'; let d = '\\n'; let e = f32::MAX;");
        assert!(ids.contains(&"f32".to_string()));
    }

    #[test]
    fn float_literals_are_classified() {
        let floats = |src: &str| {
            lex(src)
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::FloatLit)
                .count()
        };
        assert_eq!(floats("let x = 1.0;"), 1);
        assert_eq!(floats("let x = 2e-3;"), 1);
        assert_eq!(floats("let x = 1f32;"), 1);
        assert_eq!(floats("for i in 0..10 {}"), 0);
        assert_eq!(floats("let x = 0xff; let y = t.0;"), 0);
        assert_eq!(floats("let z = 7u64;"), 0);
    }

    #[test]
    fn markers_are_collected_with_lines() {
        let src =
            "\n// wgft-audit: consensus-critical\nfn f() {}\n//! wgft-audit: consensus-critical\n";
        let lexed = lex(src);
        assert_eq!(lexed.markers.len(), 2);
        assert_eq!(lexed.markers[0].line, 2);
        assert!(!lexed.markers[0].inner);
        assert_eq!(lexed.markers[0].text, "consensus-critical");
        assert!(lexed.markers[1].inner);
    }

    #[test]
    fn doc_comments_are_not_markers() {
        let src = "/// wgft-audit: consensus-critical\nfn f() {}\n";
        assert!(lex(src).markers.is_empty());
    }
}
