//! Workspace-level audit: walk every first-party `.rs` file, apply the
//! allowlist, and diff against a checked-in baseline.
//!
//! The walk covers `src/`, `crates/*/{src,tests,benches}`, `examples/` and
//! anything else under the root — except `target/`, `vendor/` (third-party
//! stand-ins are not campaign code), `.git/` and any `fixtures/` directory
//! (the auditor's own deliberately-violating test corpus must not fail the
//! real gate).

use crate::scan::{scan_source, Finding, SEVERITY_DENY};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names the walk never descends into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Default allowlist path, relative to the workspace root.
pub const ALLOWLIST_FILE: &str = "audit/allowlist.json";
/// Default baseline path, relative to the workspace root.
pub const BASELINE_FILE: &str = "audit/baseline.json";

/// One suppression: findings matching (file prefix, rule, excerpt
/// substring) are moved from the report's findings to its suppressed list.
/// The justification is mandatory — an allowlist that silences something
/// without saying why fails validation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllowEntry {
    /// Workspace-relative path prefix (`crates/winograd/src/plan.rs` or
    /// `crates/winograd/`).
    pub file: String,
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Substring the finding's excerpt must contain (empty matches any).
    pub contains: String,
    /// Why this is sound. Mandatory.
    pub justification: String,
}

/// The allowlist file: a list of justified suppressions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allowlist {
    /// Suppression entries.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Load from `path`; a missing file is an empty allowlist.
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable/unparseable files or entries that
    /// fail validation (unknown rule, empty justification).
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
        let allowlist: Self = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse allowlist {}: {e}", path.display()))?;
        allowlist.validate()?;
        Ok(allowlist)
    }

    /// Check every entry names a known rule and carries a justification.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid entry.
    pub fn validate(&self) -> Result<(), String> {
        for (index, entry) in self.entries.iter().enumerate() {
            if !crate::scan::is_known_rule(&entry.rule) {
                return Err(format!(
                    "allowlist entry {index} names unknown rule `{}`",
                    entry.rule
                ));
            }
            if entry.justification.trim().is_empty() {
                return Err(format!(
                    "allowlist entry {index} ({} / {}) has no justification — every \
                     suppression must say why it is sound",
                    entry.file, entry.rule
                ));
            }
            if entry.file.trim().is_empty() {
                return Err(format!("allowlist entry {index} has an empty file prefix"));
            }
        }
        Ok(())
    }

    /// Whether `finding` matches any entry.
    #[must_use]
    pub fn suppresses(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|e| {
            finding.file.starts_with(&e.file)
                && finding.rule == e.rule
                && (e.contains.is_empty() || finding.excerpt.contains(&e.contains))
        })
    }
}

/// The checked-in fingerprint baseline `check --deny new` diffs against.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Fingerprints of known (grandfathered) findings.
    pub fingerprints: Vec<String>,
}

impl Baseline {
    /// Load from `path`; a missing file is an empty baseline (every finding
    /// is new).
    ///
    /// # Errors
    ///
    /// Returns a message for unreadable or unparseable files.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))
    }

    /// Serialize to pretty JSON (one fingerprint per line diffs cleanly).
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        let mut lines = String::from("{\n  \"fingerprints\": [\n");
        for (i, fp) in self.fingerprints.iter().enumerate() {
            let comma = if i + 1 < self.fingerprints.len() {
                ","
            } else {
                ""
            };
            lines.push_str(&format!("    \"{fp}\"{comma}\n"));
        }
        lines.push_str("  ]\n}\n");
        fs::write(path, lines).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// A workspace audit result.
#[derive(Debug, Default, Serialize)]
pub struct AuditReport {
    /// Unsuppressed findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings matched (and silenced) by the allowlist.
    pub suppressed: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Consensus-critical regions declared across the workspace.
    pub regions: usize,
}

impl AuditReport {
    /// Findings whose fingerprint the baseline does not contain.
    #[must_use]
    pub fn new_findings<'a>(&'a self, baseline: &Baseline) -> Vec<&'a Finding> {
        self.findings
            .iter()
            .filter(|f| !baseline.fingerprints.contains(&f.fingerprint))
            .collect()
    }

    /// Deny-severity findings (the tier that always fails `check`).
    #[must_use]
    pub fn deny_findings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == SEVERITY_DENY)
            .collect()
    }
}

/// Recursively collect first-party `.rs` files under `root`, sorted by
/// workspace-relative path.
///
/// # Errors
///
/// Propagates directory-walk I/O errors.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scan every first-party `.rs` file under `root` and apply `allowlist`.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn scan_workspace(root: &Path, allowlist: &Allowlist) -> io::Result<AuditReport> {
    let mut report = AuditReport::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let scan = scan_source(&rel, &source);
        report.files_scanned += 1;
        report.regions += scan.regions.len();
        for finding in scan.findings {
            if allowlist.suppresses(&finding) {
                report.suppressed.push(finding);
            } else {
                report.findings.push(finding);
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Render findings the way compilers do: `file:line: severity[rule] message`.
#[must_use]
pub fn render_text(report: &AuditReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: {}[{}] {}\n    {}\n",
            f.file, f.line, f.severity, f.rule, f.message, f.excerpt
        ));
    }
    out.push_str(&format!(
        "{} finding(s) ({} deny), {} suppressed by allowlist, {} consensus-critical \
         region(s) across {} file(s)\n",
        report.findings.len(),
        report.deny_findings().len(),
        report.suppressed.len(),
        report.regions,
        report.files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &str, excerpt: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity: crate::scan::severity_of(rule).to_string(),
            file: file.to_string(),
            line: 1,
            excerpt: excerpt.to_string(),
            message: String::new(),
            fingerprint: "fp".to_string(),
        }
    }

    #[test]
    fn allowlist_requires_justifications() {
        let list = Allowlist {
            entries: vec![AllowEntry {
                file: "crates/x.rs".to_string(),
                rule: "wall-clock".to_string(),
                contains: String::new(),
                justification: "  ".to_string(),
            }],
        };
        assert!(list.validate().unwrap_err().contains("justification"));
    }

    #[test]
    fn allowlist_rejects_unknown_rules() {
        let list = Allowlist {
            entries: vec![AllowEntry {
                file: "crates/x.rs".to_string(),
                rule: "no-such-rule".to_string(),
                contains: String::new(),
                justification: "because".to_string(),
            }],
        };
        assert!(list.validate().unwrap_err().contains("unknown rule"));
    }

    #[test]
    fn suppression_matches_prefix_rule_and_substring() {
        let list = Allowlist {
            entries: vec![AllowEntry {
                file: "crates/winograd/".to_string(),
                rule: "float-arith".to_string(),
                contains: "dequant".to_string(),
                justification: "boundary".to_string(),
            }],
        };
        assert!(list.suppresses(&finding(
            "crates/winograd/src/plan.rs",
            "float-arith",
            "let y = dequantize(x);"
        )));
        assert!(!list.suppresses(&finding(
            "crates/winograd/src/plan.rs",
            "float-arith",
            "let y = x as f32;"
        )));
        assert!(!list.suppresses(&finding(
            "crates/sweep/src/merge.rs",
            "float-arith",
            "dequantize"
        )));
    }

    #[test]
    fn baseline_roundtrips() {
        let dir = std::env::temp_dir().join(format!("wgft-audit-bl-{}", std::process::id()));
        let path = dir.join("baseline.json");
        let baseline = Baseline {
            fingerprints: vec!["aaaa".to_string(), "bbbb".to_string()],
        };
        baseline.save(&path).unwrap();
        assert_eq!(Baseline::load(&path).unwrap(), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_allowlist_and_baseline_are_empty() {
        let missing = Path::new("/nonexistent/wgft-audit/allow.json");
        assert_eq!(Allowlist::load(missing).unwrap(), Allowlist::default());
        assert_eq!(Baseline::load(missing).unwrap(), Baseline::default());
    }
}
