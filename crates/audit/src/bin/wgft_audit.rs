//! `wgft-audit` CLI — scan the workspace, gate CI, manage the baseline.
//!
//! ```text
//! wgft-audit scan   [--root DIR] [--json]
//! wgft-audit check  [--root DIR] [--deny new|all] [--json]
//! wgft-audit baseline --write [--root DIR]
//! wgft-audit regions [--root DIR]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or new findings for `check --deny new`),
//! 2 usage or configuration errors (unparseable allowlist, missing
//! justification, unknown flags).

use std::path::PathBuf;
use std::process::ExitCode;
use wgft_audit::{render_text, scan_workspace, Allowlist, Baseline, ALLOWLIST_FILE, BASELINE_FILE};

const USAGE: &str = "usage: wgft-audit <scan|check|baseline|regions> \
 [--root DIR] [--allowlist FILE] [--baseline FILE] [--deny new|all] [--json] [--write]";

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    baseline: Option<PathBuf>,
    deny: String,
    json: bool,
    write: bool,
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _ = argv.next();
    let command = argv.next().ok_or(USAGE.to_string())?;
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        baseline: None,
        deny: "new".to_string(),
        json: false,
        write: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--allowlist" => args.allowlist = Some(PathBuf::from(value("--allowlist")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--deny" => {
                args.deny = value("--deny")?;
                if args.deny != "new" && args.deny != "all" {
                    return Err("--deny takes `new` or `all`".to_string());
                }
            }
            "--json" => args.json = true,
            "--write" => args.write = true,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok((command, args))
}

fn main() -> ExitCode {
    let (command, args) = match parse_args(std::env::args()) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&command, &args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("wgft-audit: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(command: &str, args: &Args) -> Result<ExitCode, String> {
    let allowlist_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| args.root.join(ALLOWLIST_FILE));
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join(BASELINE_FILE));
    let allowlist = Allowlist::load(&allowlist_path)?;
    let report = scan_workspace(&args.root, &allowlist)
        .map_err(|e| format!("scanning {}: {e}", args.root.display()))?;

    match command {
        "scan" => {
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string(&report).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", render_text(&report));
            }
            Ok(if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "check" => {
            let baseline = Baseline::load(&baseline_path)?;
            let offending: Vec<_> = if args.deny == "all" {
                report.findings.iter().collect()
            } else {
                report.new_findings(&baseline)
            };
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string(&report).map_err(|e| e.to_string())?
                );
            } else {
                for f in &offending {
                    eprintln!(
                        "{}:{}: NEW {}[{}] {}\n    {}",
                        f.file, f.line, f.severity, f.rule, f.message, f.excerpt
                    );
                }
                eprintln!(
                    "wgft-audit check: {} offending finding(s) (deny={}), {} total, \
                     {} suppressed, {} region(s)",
                    offending.len(),
                    args.deny,
                    report.findings.len(),
                    report.suppressed.len(),
                    report.regions
                );
            }
            Ok(if offending.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        "baseline" => {
            let baseline = Baseline {
                fingerprints: report
                    .findings
                    .iter()
                    .map(|f| f.fingerprint.clone())
                    .collect(),
            };
            if args.write {
                baseline.save(&baseline_path)?;
                eprintln!(
                    "wrote {} fingerprint(s) to {}",
                    baseline.fingerprints.len(),
                    baseline_path.display()
                );
            } else {
                println!(
                    "{}",
                    serde_json::to_string(&baseline).map_err(|e| e.to_string())?
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "regions" => {
            println!(
                "{} consensus-critical region(s) across {} file(s); {} finding(s), \
                 {} suppressed",
                report.regions,
                report.files_scanned,
                report.findings.len(),
                report.suppressed.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}
