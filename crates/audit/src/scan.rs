//! Per-file analysis: turn annotations into brace-matched regions and run
//! the determinism rule set over the tokens inside them.
//!
//! # Annotation syntax
//!
//! ```text
//! // wgft-audit: consensus-critical [-- reason]
//! fn image_seed(...) { ... }            // region = the next item's braces
//!
//! //! wgft-audit: consensus-critical    // inner form: the whole file
//!
//! // wgft-audit: blessed(float-arith) -- justification text
//! pub fn gemm_f32_det(...) { ... }      // named rules suppressed inside
//! ```
//!
//! A marker applies to the item that follows it: the region runs from the
//! marker line to the matching `}` of the first brace the item opens (or to
//! the terminating `;` for brace-less items). `blessed(...)` carves a
//! rule-specific exemption out of a critical region — it is how the
//! deterministic-f32 wrappers themselves are implemented in f32 without
//! tripping the float rules — and its justification is mandatory.

use crate::lex::{lex, Marker, Tok, TokKind};
use serde::{Deserialize, Serialize};

/// Severity tier of a finding.
///
/// `deny` findings break determinism outright (float arithmetic, unseeded
/// randomness, nondeterministic iteration); `warn` findings are suspect in a
/// consensus-critical region but may be legitimate plumbing (wall-clock
/// reads that never feed a journaled number).
pub const SEVERITY_DENY: &str = "deny";
/// See [`SEVERITY_DENY`].
pub const SEVERITY_WARN: &str = "warn";

/// Every rule the auditor knows, with its severity tier.
pub const RULES: &[(&str, &str)] = &[
    ("float-arith", SEVERITY_DENY),
    ("fma", SEVERITY_DENY),
    ("hash-iteration", SEVERITY_DENY),
    ("unseeded-rng", SEVERITY_DENY),
    ("rayon-reduction", SEVERITY_DENY),
    ("wall-clock", SEVERITY_WARN),
    ("audit-annotation", SEVERITY_DENY),
];

/// Severity of a rule id (defaults to deny for unknown ids).
#[must_use]
pub fn severity_of(rule: &str) -> &'static str {
    RULES
        .iter()
        .find(|(id, _)| *id == rule)
        .map_or(SEVERITY_DENY, |(_, sev)| sev)
}

/// Whether a rule id names a real rule (annotation validation).
#[must_use]
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// One diagnostic: a rule violated at a file:line, with the offending
/// source line and a content-addressed fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Rule id (see [`RULES`]).
    pub rule: String,
    /// `deny` or `warn`.
    pub severity: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
    /// FNV-1a over (file, rule, excerpt, occurrence index) — stable across
    /// line-number shifts, so baselines survive unrelated edits.
    pub fingerprint: String,
}

/// A line range (inclusive) classified consensus-critical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Region {
    /// First line (the marker's).
    pub start: u32,
    /// Last line (the matching close brace or semicolon).
    pub end: u32,
}

/// A `blessed(...)` exemption region.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Blessed {
    start: u32,
    end: u32,
    rules: Vec<String>,
}

/// Everything the auditor learned about one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Rule violations (annotation errors included), in line order.
    pub findings: Vec<Finding>,
    /// Consensus-critical regions declared in the file.
    pub regions: Vec<Region>,
}

/// 64-bit FNV-1a (same constants as the sweep journal's content hash).
// wgft-audit: consensus-critical -- baselines are keyed by these fingerprints
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Scan one file's source. `file` is the path recorded in findings.
#[must_use]
pub fn scan_source(file: &str, source: &str) -> FileScan {
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let last_line = lines.len() as u32;
    let mut scan = FileScan::default();
    let mut blessed: Vec<Blessed> = Vec::new();
    let mut raw: Vec<RawFinding> = Vec::new();

    for marker in &lexed.markers {
        apply_marker(
            marker,
            &lexed.tokens,
            last_line,
            &mut scan.regions,
            &mut blessed,
            &mut raw,
        );
    }
    run_rules(&lexed.tokens, &scan.regions, &blessed, &mut raw);

    raw.sort_by_key(|f| (f.line, f.rule));
    scan.findings = finalize(file, &lines, raw);
    scan
}

/// A finding before excerpt/fingerprint resolution.
struct RawFinding {
    rule: &'static str,
    line: u32,
    message: String,
}

/// Resolve excerpts and occurrence-indexed fingerprints.
fn finalize(file: &str, lines: &[&str], raw: Vec<RawFinding>) -> Vec<Finding> {
    let mut seen: Vec<(String, u32)> = Vec::new();
    raw.into_iter()
        .map(|f| {
            let excerpt = lines
                .get(f.line as usize - 1)
                .map_or(String::new(), |l| l.trim().to_string());
            let key = format!("{file}|{}|{excerpt}", f.rule);
            let occurrence = match seen.iter_mut().find(|(k, _)| *k == key) {
                Some((_, count)) => {
                    *count += 1;
                    *count
                }
                None => {
                    seen.push((key.clone(), 0));
                    0
                }
            };
            let fingerprint = format!("{:016x}", fnv1a64(format!("{key}|{occurrence}").as_bytes()));
            Finding {
                rule: f.rule.to_string(),
                severity: severity_of(f.rule).to_string(),
                file: file.to_string(),
                line: f.line,
                excerpt,
                message: f.message,
                fingerprint,
            }
        })
        .collect()
}

/// Interpret one marker: grow the region/blessed lists or record an
/// annotation error.
fn apply_marker(
    marker: &Marker,
    tokens: &[Tok],
    last_line: u32,
    regions: &mut Vec<Region>,
    blessed: &mut Vec<Blessed>,
    raw: &mut Vec<RawFinding>,
) {
    let text = marker.text.as_str();
    if text == "consensus-critical" || text.starts_with("consensus-critical --") {
        if marker.inner {
            regions.push(Region {
                start: 1,
                end: last_line,
            });
        } else {
            let end = region_end(tokens, marker.line, last_line);
            regions.push(Region {
                start: marker.line,
                end,
            });
        }
        return;
    }
    if let Some(rest) = text.strip_prefix("blessed(") {
        if marker.inner {
            raw.push(RawFinding {
                rule: "audit-annotation",
                line: marker.line,
                message: "`blessed(...)` must annotate an item, not a whole file".to_string(),
            });
            return;
        }
        let Some(close) = rest.find(')') else {
            raw.push(RawFinding {
                rule: "audit-annotation",
                line: marker.line,
                message: "unclosed `blessed(` annotation".to_string(),
            });
            return;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let justification = rest[close + 1..]
            .trim()
            .strip_prefix("--")
            .map(str::trim)
            .unwrap_or("");
        if rules.is_empty() || rules.iter().any(|r| !is_known_rule(r)) {
            raw.push(RawFinding {
                rule: "audit-annotation",
                line: marker.line,
                message: format!(
                    "`blessed(...)` names an unknown rule (known: {})",
                    RULES
                        .iter()
                        .map(|(id, _)| *id)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
            return;
        }
        if justification.is_empty() {
            raw.push(RawFinding {
                rule: "audit-annotation",
                line: marker.line,
                message: "`blessed(...)` requires a justification: `blessed(rule) -- why`"
                    .to_string(),
            });
            return;
        }
        let end = region_end(tokens, marker.line, last_line);
        blessed.push(Blessed {
            start: marker.line,
            end,
            rules,
        });
        return;
    }
    raw.push(RawFinding {
        rule: "audit-annotation",
        line: marker.line,
        message: format!(
            "unknown wgft-audit annotation `{text}` (expected `consensus-critical` or \
             `blessed(rule, ...) -- justification`)"
        ),
    });
}

/// The last line of the item following a marker: the matching `}` of the
/// first brace it opens, or the first top-level `;` for brace-less items.
fn region_end(tokens: &[Tok], marker_line: u32, last_line: u32) -> u32 {
    let mut depth = 0usize;
    for tok in tokens.iter().filter(|t| t.line > marker_line) {
        match tok.kind {
            TokKind::LBrace => depth += 1,
            TokKind::RBrace => {
                if depth <= 1 {
                    return tok.line;
                }
                depth -= 1;
            }
            TokKind::Semi if depth == 0 => return tok.line,
            _ => {}
        }
    }
    last_line
}

/// Identifiers that start a rayon parallel-iterator chain.
const PAR_IDENTS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
];

/// Reduction adapters that are order-sensitive for non-associative element
/// types.
const REDUCE_IDENTS: &[&str] = &["sum", "product", "reduce", "fold"];

/// Run every token rule over the critical regions.
fn run_rules(tokens: &[Tok], regions: &[Region], blessed: &[Blessed], raw: &mut Vec<RawFinding>) {
    let in_critical = |line: u32| regions.iter().any(|r| r.start <= line && line <= r.end);
    let is_blessed = |line: u32, rule: &str| {
        blessed
            .iter()
            .any(|b| b.start <= line && line <= b.end && b.rules.iter().any(|r| r == rule))
    };
    let mut push = |rule: &'static str, line: u32, message: String| {
        if !is_blessed(line, rule) {
            raw.push(RawFinding {
                rule,
                line,
                message,
            });
        }
    };

    // Statement-scoped state for the rayon-reduction rule: a parallel
    // iterator seen since the last `;` arms the reduction check.
    let mut par_armed = false;

    for (idx, tok) in tokens.iter().enumerate() {
        if !in_critical(tok.line) {
            continue;
        }
        match &tok.kind {
            TokKind::Semi => par_armed = false,
            TokKind::FloatLit => push(
                "float-arith",
                tok.line,
                "float literal in a consensus-critical region".to_string(),
            ),
            TokKind::Ident(name) => match name.as_str() {
                "f32" | "f64" => push(
                    "float-arith",
                    tok.line,
                    format!(
                        "`{name}` type/cast in a consensus-critical region — use \
                         integer/fixed-point arithmetic or a blessed det-f32 wrapper"
                    ),
                ),
                "mul_add" => push(
                    "fma",
                    tok.line,
                    "`mul_add` fuses the multiply's rounding step; FMA availability is \
                     platform-dependent"
                        .to_string(),
                ),
                "HashMap" | "HashSet" => push(
                    "hash-iteration",
                    tok.line,
                    format!("`{name}` iteration order is nondeterministic — use `BTreeMap`/`BTreeSet`"),
                ),
                "Instant" | "SystemTime" => push(
                    "wall-clock",
                    tok.line,
                    format!("wall-clock read (`{name}`) in a consensus-critical region"),
                ),
                "thread_rng" | "from_entropy" | "OsRng" => push(
                    "unseeded-rng",
                    tok.line,
                    format!("`{name}` draws entropy at runtime — derive seeds from the campaign plan"),
                ),
                "random" if path_is_rand(tokens, idx) => push(
                    "unseeded-rng",
                    tok.line,
                    "`rand::random` draws thread-local entropy — derive seeds from the campaign plan"
                        .to_string(),
                ),
                par if PAR_IDENTS.contains(&par) => par_armed = true,
                red if REDUCE_IDENTS.contains(&red) && par_armed && follows_dot(tokens, idx) => {
                    par_armed = false;
                    push(
                        "rayon-reduction",
                        tok.line,
                        format!(
                            "`.{red}()` on a parallel iterator reduces in a nondeterministic \
                             order — not associative-safe for floats"
                        ),
                    );
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// Whether token `idx` is `random` in a `rand::random` path.
fn path_is_rand(tokens: &[Tok], idx: usize) -> bool {
    idx >= 2
        && tokens[idx - 1].kind == TokKind::PathSep
        && matches!(&tokens[idx - 2].kind, TokKind::Ident(p) if p == "rand")
}

/// Whether token `idx` is a method call (preceded by `.`).
fn follows_dot(tokens: &[Tok], idx: usize) -> bool {
    idx >= 1 && tokens[idx - 1].kind == TokKind::Dot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(scan: &FileScan) -> Vec<(&str, u32)> {
        scan.findings
            .iter()
            .map(|f| (f.rule.as_str(), f.line))
            .collect()
    }

    #[test]
    fn code_outside_regions_is_never_flagged() {
        let src = "fn free() -> f32 { 1.0f32.mul_add(2.0, 3.0) }\n";
        assert!(scan_source("t.rs", src).findings.is_empty());
    }

    #[test]
    fn floats_inside_a_critical_fn_are_flagged() {
        let src = "\
// wgft-audit: consensus-critical
fn seed(x: u64) -> u64 {
    let y = x as f32;
    (y as u64).wrapping_mul(3)
}
fn after() -> f64 { 2.5 }
";
        let scan = scan_source("t.rs", src);
        assert_eq!(rules_of(&scan), vec![("float-arith", 3)]);
        assert_eq!(scan.regions, vec![Region { start: 1, end: 5 }]);
    }

    #[test]
    fn inner_marker_covers_the_whole_file() {
        let src = "//! wgft-audit: consensus-critical\nfn f() -> f64 { 0.5 }\n";
        let scan = scan_source("t.rs", src);
        assert_eq!(
            rules_of(&scan),
            vec![("float-arith", 2), ("float-arith", 2)],
            "both the f64 type and the literal"
        );
    }

    #[test]
    fn blessed_suppresses_named_rules_only() {
        let src = "\
// wgft-audit: consensus-critical
mod det {
    // wgft-audit: blessed(float-arith) -- reference det kernel is f32 by contract
    fn kernel(a: f32) -> f32 {
        a.mul_add(2.0, 1.0)
    }
}
";
        let scan = scan_source("t.rs", src);
        // Floats are blessed; the FMA inside the blessed region still fires.
        assert_eq!(rules_of(&scan), vec![("fma", 5)]);
    }

    #[test]
    fn blessed_without_justification_is_an_annotation_error() {
        let src = "\
// wgft-audit: consensus-critical
// wgft-audit: blessed(float-arith)
fn f() {}
";
        let scan = scan_source("t.rs", src);
        assert_eq!(rules_of(&scan), vec![("audit-annotation", 2)]);
    }

    #[test]
    fn unknown_annotations_are_errors() {
        let src = "// wgft-audit: concensus-critical\nfn f() {}\n";
        let scan = scan_source("t.rs", src);
        assert_eq!(rules_of(&scan), vec![("audit-annotation", 1)]);
    }

    #[test]
    fn hash_time_rng_and_rayon_rules_fire() {
        let src = "\
// wgft-audit: consensus-critical
fn bad(xs: &[u64]) -> u64 {
    let m = HashMap::new();
    let t = Instant::now();
    let mut rng = thread_rng();
    let s: u64 = xs.par_iter().sum();
    m.len() as u64
}
";
        let scan = scan_source("t.rs", src);
        assert_eq!(
            rules_of(&scan),
            vec![
                ("hash-iteration", 3),
                ("wall-clock", 4),
                ("unseeded-rng", 5),
                ("rayon-reduction", 6),
            ]
        );
        let wall = &scan.findings[1];
        assert_eq!(wall.severity, SEVERITY_WARN);
        assert_eq!(scan.findings[0].severity, SEVERITY_DENY);
    }

    #[test]
    fn serial_sum_is_not_a_rayon_reduction() {
        let src = "\
// wgft-audit: consensus-critical
fn ok(xs: &[u64]) -> u64 {
    xs.iter().sum()
}
";
        assert!(scan_source("t.rs", src).findings.is_empty());
    }

    #[test]
    fn det_wrapper_calls_are_not_flagged() {
        // `gemm_f32_det` is one identifier — the `f32` inside it is not a
        // float-arith token, which is exactly what makes calling blessed
        // wrappers from critical regions legal.
        let src = "\
// wgft-audit: consensus-critical
fn run(a: &[i32]) -> i64 {
    gemm_f32_det_len(a)
}
";
        assert!(scan_source("t.rs", src).findings.is_empty());
    }

    #[test]
    fn braceless_items_end_at_the_semicolon() {
        let src = "\
// wgft-audit: consensus-critical
const SEED: u64 = 7;
fn later() -> f32 { 1.5 }
";
        let scan = scan_source("t.rs", src);
        assert!(scan.findings.is_empty());
        assert_eq!(scan.regions, vec![Region { start: 1, end: 2 }]);
    }

    #[test]
    fn fingerprints_are_stable_across_line_shifts() {
        let a = scan_source(
            "t.rs",
            "// wgft-audit: consensus-critical\nfn f() -> f64 { 0.5 }\n",
        );
        let b = scan_source(
            "t.rs",
            "\n\n\n// wgft-audit: consensus-critical\nfn f() -> f64 { 0.5 }\n",
        );
        let fa: Vec<_> = a.findings.iter().map(|f| &f.fingerprint).collect();
        let fb: Vec<_> = b.findings.iter().map(|f| &f.fingerprint).collect();
        assert_eq!(fa, fb);
    }
}
