//! Labelled image collections with deterministic splits.

use crate::SyntheticSpec;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wgft_tensor::Tensor;

/// One labelled image.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The image, shaped `(1, C, H, W)`.
    pub image: Tensor,
    /// Ground-truth class index.
    pub label: usize,
}

/// A labelled image collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset from labelled samples.
    #[must_use]
    pub fn new(samples: Vec<Sample>, num_classes: usize) -> Self {
        Self {
            samples,
            num_classes,
        }
    }

    /// Generate a synthetic dataset with `per_class` samples per class.
    #[must_use]
    pub fn synthetic(spec: &SyntheticSpec, per_class: usize, seed: u64) -> Self {
        let samples = spec
            .generate(per_class, seed)
            .into_iter()
            .map(|(image, label)| Sample { image, label })
            .collect();
        Self {
            samples,
            num_classes: spec.num_classes,
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The samples in order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterate over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// A new dataset containing at most the first `n` samples.
    #[must_use]
    pub fn take(&self, n: usize) -> Self {
        Self {
            samples: self.samples.iter().take(n).cloned().collect(),
            num_classes: self.num_classes,
        }
    }

    /// Split into (train, test) with `train_fraction` of the samples in the
    /// training part. Samples keep their original (class-interleaved) order so
    /// both parts stay class-balanced.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Self, Self) {
        let cut = ((self.samples.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        let train = Self {
            samples: self.samples[..cut].to_vec(),
            num_classes: self.num_classes,
        };
        let test = Self {
            samples: self.samples[cut..].to_vec(),
            num_classes: self.num_classes,
        };
        (train, test)
    }

    /// A deterministically shuffled copy (used between training epochs).
    #[must_use]
    pub fn shuffled(&self, seed: u64) -> Self {
        let mut samples = self.samples.clone();
        let mut rng = SmallRng::seed_from_u64(seed);
        samples.shuffle(&mut rng);
        Self {
            samples,
            num_classes: self.num_classes,
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        Dataset::synthetic(&SyntheticSpec::tiny(), 6, 7)
    }

    #[test]
    fn synthetic_dataset_size_and_classes() {
        let d = small_dataset();
        assert_eq!(d.len(), 24);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 4);
        assert_eq!(d.samples().len(), 24);
        assert_eq!(d.iter().count(), 24);
        assert_eq!((&d).into_iter().count(), 24);
    }

    #[test]
    fn split_preserves_counts_and_balance() {
        let d = small_dataset();
        let (train, test) = d.split(0.75);
        assert_eq!(train.len(), 18);
        assert_eq!(test.len(), 6);
        // Interleaved generation keeps the split roughly balanced per class.
        for class in 0..4 {
            let count = test.iter().filter(|s| s.label == class).count();
            assert!(count >= 1, "class {class} missing from the test split");
        }
    }

    #[test]
    fn take_truncates() {
        let d = small_dataset();
        assert_eq!(d.take(5).len(), 5);
        assert_eq!(d.take(500).len(), 24);
    }

    #[test]
    fn shuffle_is_deterministic_and_permutes() {
        let d = small_dataset();
        let a = d.shuffled(1);
        let b = d.shuffled(1);
        assert_eq!(a.samples()[0], b.samples()[0]);
        let labels_orig: Vec<usize> = d.iter().map(|s| s.label).collect();
        let labels_shuf: Vec<usize> = a.iter().map(|s| s.label).collect();
        assert_ne!(labels_orig, labels_shuf);
        let mut sorted_a = labels_shuf.clone();
        sorted_a.sort_unstable();
        let mut sorted_o = labels_orig.clone();
        sorted_o.sort_unstable();
        assert_eq!(sorted_a, sorted_o, "shuffle must be a permutation");
    }
}
