//! CIFAR-10 binary-format loader.
//!
//! The paper evaluates on CIFAR-10/100; this module reads the standard
//! CIFAR-10 binary layout — records of `1` label byte followed by `3072`
//! pixel bytes (`3×32×32`, channel-major R/G/B) — behind the same
//! [`Dataset`] API the synthetic tasks use, so campaigns can swap real data
//! in without touching any evaluation code.
//!
//! The build environment is offline, so tests run against a tiny checked-in
//! fixture and [`cifar10_or_synthetic`] degrades gracefully to the
//! synthetic generator when no CIFAR files are present.

use crate::error::DataError;
use crate::{Dataset, Sample, SyntheticSpec};
use std::path::Path;
use wgft_tensor::{Shape, Tensor};

/// Pixels per CIFAR-10 image (`3×32×32`).
pub const CIFAR10_IMAGE_BYTES: usize = 3 * 32 * 32;
/// Bytes per CIFAR-10 binary record (label byte + image).
pub const CIFAR10_RECORD_BYTES: usize = 1 + CIFAR10_IMAGE_BYTES;
/// CIFAR-10 class count.
pub const CIFAR10_CLASSES: usize = 10;

/// Load one CIFAR-10 binary batch file (`data_batch_N.bin` /
/// `test_batch.bin` layout).
///
/// Pixels are mapped to `[0, 1]` floats in `(1, 3, 32, 32)` tensors.
///
/// # Errors
///
/// Returns [`DataError::Io`] if the file cannot be read and
/// [`DataError::Format`] if its size is not a whole number of records, it
/// is empty, or a label byte is out of range.
pub fn load_cifar10_bin(path: impl AsRef<Path>) -> Result<Dataset, DataError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|source| DataError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    if bytes.is_empty() {
        return Err(DataError::format(path, "empty file"));
    }
    if bytes.len() % CIFAR10_RECORD_BYTES != 0 {
        return Err(DataError::format(
            path,
            format!(
                "{} bytes is not a multiple of the {CIFAR10_RECORD_BYTES}-byte record size",
                bytes.len()
            ),
        ));
    }
    let mut samples = Vec::with_capacity(bytes.len() / CIFAR10_RECORD_BYTES);
    for (record_index, record) in bytes.chunks_exact(CIFAR10_RECORD_BYTES).enumerate() {
        let label = usize::from(record[0]);
        if label >= CIFAR10_CLASSES {
            return Err(DataError::format(
                path,
                format!("record {record_index}: label {label} out of range 0..{CIFAR10_CLASSES}"),
            ));
        }
        let pixels: Vec<f32> = record[1..].iter().map(|&b| f32::from(b) / 255.0).collect();
        let image = Tensor::from_vec(Shape::nchw(1, 3, 32, 32), pixels)
            .map_err(|e| DataError::format(path, format!("record {record_index}: {e}")))?;
        samples.push(Sample { image, label });
    }
    Ok(Dataset::new(samples, CIFAR10_CLASSES))
}

/// Load every `*.bin` batch file in a directory (sorted by name) into one
/// dataset — the layout of an extracted `cifar-10-batches-bin` archive.
///
/// # Errors
///
/// Returns [`DataError::Io`] if the directory cannot be listed,
/// [`DataError::Format`] if it holds no batch files, and any per-file error
/// from [`load_cifar10_bin`].
pub fn load_cifar10_dir(dir: impl AsRef<Path>) -> Result<Dataset, DataError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|source| DataError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut files: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "bin"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(DataError::format(dir, "no .bin batch files"));
    }
    let mut samples = Vec::new();
    for file in files {
        samples.extend(load_cifar10_bin(&file)?.samples().to_vec());
    }
    Ok(Dataset::new(samples, CIFAR10_CLASSES))
}

/// Load CIFAR-10 from `dir` when possible, falling back to the synthetic
/// generator (with `spec`, `per_class`, `seed`) when the directory is
/// missing, unreadable or holds no valid batches — so experiment drivers
/// can point at real data opportunistically while tests stay hermetic.
///
/// Returns the dataset and whether it is real CIFAR data.
#[must_use]
pub fn cifar10_or_synthetic(
    dir: Option<&Path>,
    spec: &SyntheticSpec,
    per_class: usize,
    seed: u64,
) -> (Dataset, bool) {
    if let Some(dir) = dir {
        if let Ok(dataset) = load_cifar10_dir(dir) {
            if !dataset.is_empty() {
                return (dataset, true);
            }
        }
    }
    (Dataset::synthetic(spec, per_class, seed), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fixture_path() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/cifar10-tiny.bin")
    }

    #[test]
    fn fixture_loads_with_expected_shapes_and_labels() {
        let dataset = load_cifar10_bin(fixture_path()).expect("fixture must load");
        assert_eq!(dataset.len(), 8);
        assert_eq!(dataset.num_classes(), CIFAR10_CLASSES);
        for (i, sample) in dataset.iter().enumerate() {
            assert_eq!(sample.label, i % CIFAR10_CLASSES);
            assert_eq!(sample.image.shape(), &Shape::nchw(1, 3, 32, 32));
            assert!(sample
                .image
                .data()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)));
        }
        // The fixture has non-trivial pixel content.
        assert!(dataset.samples()[0].image.max_abs() > 0.0);
    }

    #[test]
    fn directory_loader_concatenates_batches() {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let dataset = load_cifar10_dir(&dir).expect("fixture dir must load");
        assert_eq!(dataset.len(), 8);
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join(format!("wgft-cifar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let truncated = dir.join("truncated.bin");
        std::fs::write(&truncated, vec![0u8; CIFAR10_RECORD_BYTES + 7]).unwrap();
        assert!(matches!(
            load_cifar10_bin(&truncated),
            Err(DataError::Format { .. })
        ));
        let bad_label = dir.join("bad-label.bin");
        let mut record = vec![0u8; CIFAR10_RECORD_BYTES];
        record[0] = 11;
        std::fs::write(&bad_label, record).unwrap();
        let err = load_cifar10_bin(&bad_label).expect_err("label 11 is invalid");
        assert!(err.to_string().contains("label 11"));
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(load_cifar10_bin(&empty).is_err());
        assert!(matches!(
            load_cifar10_bin(dir.join("does-not-exist.bin")),
            Err(DataError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fallback_is_graceful_and_flagged() {
        let spec = SyntheticSpec::tiny();
        let (synthetic, real) =
            cifar10_or_synthetic(Some(Path::new("/definitely/not/a/cifar/dir")), &spec, 3, 7);
        assert!(!real);
        assert_eq!(synthetic.len(), 3 * spec.num_classes);
        let (from_none, real) = cifar10_or_synthetic(None, &spec, 3, 7);
        assert!(!real);
        assert_eq!(from_none.len(), synthetic.len());

        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let (cifar, real) = cifar10_or_synthetic(Some(&dir), &spec, 3, 7);
        assert!(real);
        assert_eq!(cifar.num_classes(), CIFAR10_CLASSES);
    }
}
