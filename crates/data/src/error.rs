//! Error type for dataset loading.

use std::fmt;
use std::path::PathBuf;

/// Errors raised by the on-disk dataset loaders.
#[derive(Debug)]
pub enum DataError {
    /// The file could not be read.
    Io {
        /// Offending path.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The file's bytes do not form a valid dataset.
    Format {
        /// Offending path.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
}

impl DataError {
    pub(crate) fn format(path: impl Into<PathBuf>, reason: impl Into<String>) -> Self {
        DataError::Format {
            path: path.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            DataError::Format { path, reason } => {
                write!(f, "{} is not a valid dataset: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io { source, .. } => Some(source),
            DataError::Format { .. } => None,
        }
    }
}
