//! Synthetic image-classification datasets and accuracy evaluation helpers.
//!
//! The paper evaluates pretrained networks on ImageNet, CIFAR-10 and
//! CIFAR-100. Those datasets (and pretrained weights) are not available to an
//! offline reproduction, and the fault-tolerance experiments do not actually
//! need them — they need *a model with a meaningful clean accuracy whose
//! accuracy degrades as soft errors accumulate*. This crate generates
//! deterministic synthetic image datasets with class-specific structure
//! (oriented gratings plus localized blobs plus noise) that small CNNs learn
//! to high accuracy in a few epochs, standing in for the paper's datasets as
//! documented in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use wgft_data::{Dataset, SyntheticSpec};
//!
//! let spec = SyntheticSpec::small(); // 8 classes, 3x16x16 images
//! let data = Dataset::synthetic(&spec, 40, 123);
//! assert_eq!(data.len(), 40 * spec.num_classes);
//! let (train, test) = data.split(0.8);
//! assert!(train.len() > test.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cifar;
mod dataset;
mod error;
mod eval;
mod synthetic;

pub use cifar::{
    cifar10_or_synthetic, load_cifar10_bin, load_cifar10_dir, CIFAR10_CLASSES, CIFAR10_IMAGE_BYTES,
    CIFAR10_RECORD_BYTES,
};
pub use dataset::{Dataset, Sample};
pub use error::DataError;
pub use eval::{accuracy, argmax, confusion_matrix};
pub use synthetic::SyntheticSpec;
