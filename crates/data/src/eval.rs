//! Accuracy evaluation helpers.

/// Index of the largest logit (ties resolve to the first maximum).
///
/// Returns 0 for an empty slice so that degenerate networks still produce a
/// class index.
#[must_use]
pub fn argmax(logits: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_value = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best_value {
            best_value = v;
            best = i;
        }
    }
    best
}

/// Top-1 accuracy (fraction in `[0, 1]`) of predictions against labels.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must align"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix: `matrix[true_class][predicted_class]` counts.
///
/// # Panics
///
/// Panics if the slices have different lengths or a label exceeds `num_classes`.
#[must_use]
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<u64>> {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must align"
    );
    let mut matrix = vec![vec![0u64; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(
            l < num_classes && p < num_classes,
            "label/prediction out of range"
        );
        matrix[l][p] += 1;
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[2.0, 2.0, 1.0]), 0);
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[-3.0, -1.0, -2.0]), 1);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 2, 3], &[0, 1, 2, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn accuracy_panics_on_length_mismatch() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_accumulates() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_matrix_rejects_out_of_range() {
        let _ = confusion_matrix(&[5], &[0], 3);
    }
}
