//! Synthetic dataset specification and image generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wgft_tensor::{Shape, Tensor};

/// Specification of a synthetic image-classification task.
///
/// Each class is defined by a deterministic prototype built from an oriented
/// sinusoidal grating plus a class-specific bright blob; samples are the
/// prototype corrupted by additive Gaussian-ish noise. The structure is rich
/// enough that convolutional features are required, yet easy enough that the
/// small model-zoo networks reach high clean accuracy within a few epochs —
/// which is all the fault-tolerance experiments need.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Standard deviation of the additive noise.
    pub noise: f32,
}

impl SyntheticSpec {
    /// The default task used throughout the workspace: 8 classes of
    /// 3-channel 16x16 images (a scaled-down stand-in for CIFAR).
    #[must_use]
    pub fn small() -> Self {
        Self {
            num_classes: 8,
            channels: 3,
            height: 16,
            width: 16,
            noise: 0.25,
        }
    }

    /// A tiny task for fast unit tests: 4 classes of 1-channel 8x8 images.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            num_classes: 4,
            channels: 1,
            height: 8,
            width: 8,
            noise: 0.15,
        }
    }

    /// The CIFAR-10 geometry: 10 classes of 3-channel 32x32 images. Campaigns
    /// that load real CIFAR-10 batches use this spec so the zoo networks are
    /// built with matching input and output dimensions; the noise level only
    /// matters for the synthetic generator.
    #[must_use]
    pub fn cifar10() -> Self {
        Self {
            num_classes: 10,
            channels: 3,
            height: 32,
            width: 32,
            noise: 0.25,
        }
    }

    /// Number of values per image.
    #[must_use]
    pub fn image_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// The NCHW shape of a single image (batch dimension of 1).
    #[must_use]
    pub fn image_shape(&self) -> Shape {
        Shape::nchw(1, self.channels, self.height, self.width)
    }

    /// Deterministic class prototype (no noise).
    #[must_use]
    pub fn prototype(&self, class: usize) -> Tensor {
        let mut data = vec![0.0f32; self.image_len()];
        let class = class % self.num_classes.max(1);
        // Orientation and frequency vary with the class index.
        let angle = std::f32::consts::PI * class as f32 / self.num_classes as f32;
        let freq = 1.0 + (class % 4) as f32;
        let (sin_a, cos_a) = angle.sin_cos();
        // Blob centre walks around the image with the class index.
        let bx = (self.width as f32 / 4.0) * (1.0 + (class % 3) as f32);
        let by = (self.height as f32 / 4.0) * (1.0 + ((class / 3) % 3) as f32);
        for c in 0..self.channels {
            let channel_gain = 1.0 - 0.3 * c as f32 / self.channels.max(1) as f32;
            for y in 0..self.height {
                for x in 0..self.width {
                    let xf = x as f32 / self.width as f32;
                    let yf = y as f32 / self.height as f32;
                    let phase = 2.0 * std::f32::consts::PI * freq * (cos_a * xf + sin_a * yf);
                    let grating = phase.sin();
                    let dx = x as f32 - bx;
                    let dy = y as f32 - by;
                    let blob = (-(dx * dx + dy * dy) / 8.0).exp();
                    data[(c * self.height + y) * self.width + x] =
                        channel_gain * (0.6 * grating + 1.2 * blob);
                }
            }
        }
        Tensor::from_vec(self.image_shape(), data).expect("prototype length matches shape")
    }

    /// A noisy sample of `class` drawn with the given RNG.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, class: usize, rng: &mut R) -> Tensor {
        let mut proto = self.prototype(class);
        for v in proto.data_mut() {
            *v += self.noise * gaussian(rng);
        }
        proto
    }

    /// Generate `per_class` noisy samples of every class with a fixed seed.
    #[must_use]
    pub fn generate(&self, per_class: usize, seed: u64) -> Vec<(Tensor, usize)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(per_class * self.num_classes);
        for i in 0..per_class {
            for class in 0..self.num_classes {
                // Interleave classes so truncated prefixes stay balanced.
                let _ = i;
                out.push((self.sample(class, &mut rng), class));
            }
        }
        out
    }
}

/// A cheap approximately-Gaussian variate (sum of uniforms, Irwin–Hall).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let s: f32 = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum();
    s * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_dimensions() {
        let s = SyntheticSpec::small();
        assert_eq!(s.image_len(), 3 * 16 * 16);
        assert_eq!(s.image_shape().volume(), s.image_len());
        let t = SyntheticSpec::tiny();
        assert_eq!(t.image_len(), 64);
    }

    #[test]
    fn prototypes_are_deterministic_and_distinct() {
        let s = SyntheticSpec::small();
        let p0a = s.prototype(0);
        let p0b = s.prototype(0);
        assert_eq!(p0a, p0b);
        let p1 = s.prototype(1);
        let diff: f32 = p0a
            .data()
            .iter()
            .zip(p1.data())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / p0a.len() as f32;
        assert!(
            diff > 0.1,
            "prototypes of different classes must differ, got mean diff {diff}"
        );
    }

    #[test]
    fn samples_are_noisy_versions_of_the_prototype() {
        let s = SyntheticSpec::small();
        let mut rng = SmallRng::seed_from_u64(1);
        let proto = s.prototype(2);
        let sample = s.sample(2, &mut rng);
        let diff: f32 = proto
            .data()
            .iter()
            .zip(sample.data())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / proto.len() as f32;
        assert!(
            diff > 0.0 && diff < 3.0 * s.noise,
            "noise level out of range: {diff}"
        );
    }

    #[test]
    fn generate_is_balanced_and_seed_deterministic() {
        let s = SyntheticSpec::tiny();
        let a = s.generate(5, 42);
        let b = s.generate(5, 42);
        assert_eq!(a.len(), 20);
        assert_eq!(a[0].0, b[0].0);
        for class in 0..s.num_classes {
            let count = a.iter().filter(|(_, c)| *c == class).count();
            assert_eq!(count, 5);
        }
        let c = s.generate(5, 43);
        assert_ne!(
            a[0].0, c[0].0,
            "different seeds must give different samples"
        );
    }

    #[test]
    fn prototype_values_are_bounded() {
        let s = SyntheticSpec::small();
        for class in 0..s.num_classes {
            assert!(s.prototype(class).max_abs() <= 2.0);
        }
    }
}
