//! Neural network layers, training, quantized inference and the model zoo.
//!
//! The paper evaluates four pretrained benchmark networks (DenseNet169,
//! ResNet50, VGG19, GoogleNet) quantized to 8-bit and 16-bit fixed point.
//! This crate rebuilds that stack from scratch for the reproduction:
//!
//! * a **floating-point training path** — layers with forward/backward passes
//!   ([`Conv2d`], [`Linear`], [`Relu`], [`MaxPool2`], [`GlobalAvgPool`],
//!   [`Add`], [`Concat`]) composed into a [`Network`] graph and trained with
//!   SGD ([`Trainer`]) on the synthetic datasets of `wgft-data`,
//! * a **model zoo** ([`models`]) with scaled-down but architecturally
//!   faithful analogues of the paper's benchmarks (plain VGG-style stack,
//!   residual blocks, dense concatenation blocks, inception modules),
//! * a **quantized inference path** ([`QuantizedNetwork`]) that runs every
//!   convolution and fully-connected layer in fixed point through an
//!   instrumented [`wgft_faultsim::Arithmetic`] backend, selecting standard or
//!   winograd convolution per layer — the execution substrate of every
//!   fault-tolerance experiment in `wgft-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod conv;
mod error;
mod graph;
mod join;
mod linear;
pub mod models;
mod pool;
mod quantized;
mod train;
mod zoo;

pub use activation::Relu;
pub use conv::Conv2d;
pub use error::NnError;
pub use graph::{InputRef, Layer, Network, Node};
pub use join::{Add, Concat};
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2};
pub use quantized::{FastInference, QuantizedNetwork, QuantizerOptions};
pub use train::{TrainConfig, TrainReport, Trainer};
pub use zoo::{evaluate_f32, train_model, TrainedModel};
