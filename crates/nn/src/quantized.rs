//! Quantized fixed-point inference over an instrumented arithmetic backend.
//!
//! [`QuantizedNetwork`] is the execution substrate of every fault-tolerance
//! experiment: a trained floating-point [`Network`] is calibrated and
//! converted to 8-bit or 16-bit fixed point, and every convolution /
//! fully-connected layer then executes its multiply-accumulate work through a
//! [`wgft_faultsim::Arithmetic`] backend, selecting standard or winograd
//! convolution per call. Soft errors injected by a
//! [`wgft_faultsim::FaultyArithmetic`] therefore corrupt exactly the
//! operations the chosen algorithm actually performs — the property that lets
//! the platform distinguish ST-Conv from WG-Conv where neuron-level injectors
//! cannot (Figure 1).

use crate::{InputRef, Layer, Network, NnError};
use serde::{Deserialize, Serialize};
use wgft_abft::{
    abft_direct_conv, abft_linear, abft_winograd_conv, observe_max, AbftCalibration, AbftEvents,
    AbftMode, AbftPolicy, AbftRun, AbftScratch,
};
use wgft_data::argmax;
use wgft_faultsim::{Arithmetic, ExactArithmetic, NeuronLevelInjector, OpCount};
use wgft_fixedpoint::{BitWidth, QFormat, Quantizer};
use wgft_tensor::{gemm_i32, im2col_quantized, Tensor};
use wgft_winograd::{
    direct_conv_quantized, transform_weights_f32, winograd_conv_quantized_with_scratch,
    ConvAlgorithm, ConvOpModel, ConvShape, PreparedConvQuantizedFast, QuantizedRangeRecord,
    WinogradScratch, WinogradVariant, WinogradWeights,
};

/// Options controlling the float → fixed-point conversion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantizerOptions {
    /// Storage width of activations and weights.
    pub width: BitWidth,
    /// Winograd tile variant prepared for the 3x3 layers.
    pub variant: WinogradVariant,
    /// Headroom multiplier applied to calibrated activation ranges.
    pub activation_margin: f32,
}

impl QuantizerOptions {
    /// Options for the given storage width with the paper's defaults
    /// (F(2x2,3x3) tiles, 25 % activation headroom).
    #[must_use]
    pub fn new(width: BitWidth) -> Self {
        Self {
            width,
            variant: WinogradVariant::F2x2,
            activation_margin: 1.25,
        }
    }
}

/// A quantized node operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum QOp {
    Conv {
        shape: ConvShape,
        weights: Vec<i32>,
        weight_frac: u32,
        winograd: Option<WinogradWeights>,
        winograd_frac: u32,
        bias: Vec<f32>,
        layer_id: usize,
    },
    Linear {
        in_features: usize,
        out_features: usize,
        weights: Vec<i32>,
        weight_frac: u32,
        bias: Vec<f32>,
        layer_id: usize,
    },
    Relu,
    MaxPool {
        channels: usize,
        in_h: usize,
        in_w: usize,
    },
    GlobalAvgPool {
        channels: usize,
        in_h: usize,
        in_w: usize,
    },
    Add,
    Concat,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QNode {
    op: QOp,
    inputs: Vec<InputRef>,
    out_format: QFormat,
}

impl QNode {
    /// Evaluate the non-compute ops (activation / pooling / join) shared
    /// verbatim by every forward path — there must be exactly one copy of
    /// these semantics, or the protected and unprotected paths drift apart.
    /// Returns `None` for Conv/Linear, which each path executes through its
    /// own kernels.
    fn forward_simple<'a, G>(&self, gather: G) -> Option<(Vec<i32>, QFormat)>
    where
        G: Fn(&InputRef) -> (&'a [i32], QFormat),
    {
        Some(match &self.op {
            QOp::Conv { .. } | QOp::Linear { .. } => return None,
            QOp::Relu => {
                let (input, in_format) = gather(&self.inputs[0]);
                (input.iter().map(|&v| v.max(0)).collect(), in_format)
            }
            QOp::MaxPool {
                channels,
                in_h,
                in_w,
            } => {
                let (input, in_format) = gather(&self.inputs[0]);
                (maxpool_raw(input, *channels, *in_h, *in_w), in_format)
            }
            QOp::GlobalAvgPool {
                channels,
                in_h,
                in_w,
            } => {
                let (input, in_format) = gather(&self.inputs[0]);
                (gap_raw(input, *channels, *in_h, *in_w), in_format)
            }
            QOp::Add => {
                let (a, fa) = gather(&self.inputs[0]);
                let (b, fb) = gather(&self.inputs[1]);
                let out = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| {
                        let sum = fa.dequantize(x) + fb.dequantize(y);
                        self.out_format.quantize(sum)
                    })
                    .collect();
                (out, self.out_format)
            }
            QOp::Concat => {
                let mut out = Vec::new();
                for input_ref in &self.inputs {
                    let (data, fmt) = gather(input_ref);
                    out.extend(data.iter().map(|&v| {
                        self.out_format
                            .requantize_accumulator(i64::from(v), fmt.frac_bits())
                    }));
                }
                (out, self.out_format)
            }
        })
    }
}

/// An output-latch fault hook: called on each compute layer's wide
/// accumulator span after the kernel fills it and before requantization
/// (see [`QuantizedNetwork::forward_fast_with_faults`]).
pub type AccumulatorHook<'a> = dyn FnMut(&mut [i64]) + 'a;

/// Prepared per-network state for the **fast uninstrumented** forward pass
/// ([`QuantizedNetwork::forward_fast`]): cached
/// [`PreparedConvQuantizedFast`] plans for every winograd-capable
/// convolution node plus reusable im2col / accumulator scratch, so repeated
/// fault-free inferences allocate nothing per image.
///
/// Obtain one from [`QuantizedNetwork::prepare_fast`]; it is only valid for
/// the network that prepared it. Cloning gives an independent scratch for
/// another worker thread.
#[derive(Debug, Clone)]
pub struct FastInference {
    /// Node index → prepared fast winograd plan (3x3 unit-stride conv nodes
    /// with winograd weights only).
    wino: Vec<Option<PreparedConvQuantizedFast>>,
    /// im2col patch matrix scratch for fast direct convolution, `(C·k², P)`.
    im2col: Vec<i32>,
    /// Wide-accumulator scratch shared by all compute layers.
    acc: Vec<i64>,
}

/// A fixed-point network ready for instrumented inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    name: String,
    width: BitWidth,
    variant: WinogradVariant,
    input_format: QFormat,
    nodes: Vec<QNode>,
    compute_layers: usize,
    num_classes: usize,
}

impl QuantizedNetwork {
    /// Convert a trained floating-point network to fixed point.
    ///
    /// `calibration` is a set of representative images used to size the
    /// per-layer activation formats (a handful of training images suffices).
    ///
    /// # Errors
    ///
    /// Returns an [`NnError`] if the network cannot be executed on the
    /// calibration images or a calibration range is degenerate.
    pub fn from_network(
        network: &mut Network,
        calibration: &[Tensor],
        options: QuantizerOptions,
    ) -> Result<Self, NnError> {
        if network.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        // ---- Calibrate per-node activation ranges over the calibration set.
        let mut node_max = vec![0.0f32; network.len()];
        let mut input_max = 0.0f32;
        for image in calibration {
            input_max = input_max.max(image.max_abs());
            let trace = network.forward_trace(image)?;
            for (max, activation) in node_max.iter_mut().zip(trace.iter()) {
                *max = max.max(activation.max_abs());
            }
        }
        let quantizer = Quantizer::symmetric(options.width).with_margin(options.activation_margin);
        let input_format = quantizer.format_for_max_abs(input_max.max(1e-6));
        let weight_quantizer = Quantizer::symmetric(options.width);

        // Trace of the first calibration image: used to recover the spatial
        // dimensions feeding each pooling node.
        let first_image = calibration
            .first()
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(wgft_tensor::Shape::nchw(1, 1, 8, 8)));
        let first_trace = network.forward_trace(&first_image)?;
        let dims_of_input = |inputs: &[InputRef]| -> (usize, usize, usize) {
            let tensor = match inputs.first() {
                Some(InputRef::Image) | None => &first_image,
                Some(InputRef::Node(n)) => &first_trace[*n],
            };
            let dims = tensor.shape().dims();
            (dims[1], dims[2], dims[3])
        };

        let mut nodes = Vec::with_capacity(network.len());
        let mut layer_id = 0usize;
        let mut num_classes = 0usize;
        for (node, max_abs) in network.nodes().iter().zip(node_max.iter()) {
            let out_format = quantizer.format_for_max_abs(max_abs.max(1e-6));
            let op = match &node.layer {
                Layer::Conv(conv) => {
                    let shape = *conv.conv_shape();
                    let w_f32 = conv.weights().data();
                    let weight_format = weight_quantizer.calibrate(w_f32)?;
                    let weights = weight_format.quantize_slice(w_f32);
                    // Winograd-domain weights for 3x3 unit-stride layers.
                    let (winograd, winograd_frac) = if shape.geometry.is_unit_stride_3x3() {
                        let u = transform_weights_f32(
                            w_f32,
                            shape.out_channels,
                            shape.in_channels,
                            options.variant,
                        )?;
                        let u_format = weight_quantizer.calibrate(&u)?;
                        let u_q = u_format.quantize_slice(&u);
                        (
                            Some(WinogradWeights::new(
                                options.variant,
                                shape.out_channels,
                                shape.in_channels,
                                u_q,
                            )?),
                            u_format.frac_bits(),
                        )
                    } else {
                        (None, 0)
                    };
                    let op = QOp::Conv {
                        shape,
                        weights,
                        weight_frac: weight_format.frac_bits(),
                        winograd,
                        winograd_frac,
                        bias: conv.bias().data().to_vec(),
                        layer_id,
                    };
                    layer_id += 1;
                    op
                }
                Layer::Linear(linear) => {
                    let w_f32 = linear.weights().data();
                    let weight_format = weight_quantizer.calibrate(w_f32)?;
                    num_classes = linear.out_features();
                    let op = QOp::Linear {
                        in_features: linear.in_features(),
                        out_features: linear.out_features(),
                        weights: weight_format.quantize_slice(w_f32),
                        weight_frac: weight_format.frac_bits(),
                        bias: linear.bias().data().to_vec(),
                        layer_id,
                    };
                    layer_id += 1;
                    op
                }
                Layer::Relu(_) => QOp::Relu,
                Layer::MaxPool(_) => {
                    let dims = dims_of_input(&node.inputs);
                    QOp::MaxPool {
                        channels: dims.0,
                        in_h: dims.1,
                        in_w: dims.2,
                    }
                }
                Layer::GlobalAvgPool(_) => {
                    let dims = dims_of_input(&node.inputs);
                    QOp::GlobalAvgPool {
                        channels: dims.0,
                        in_h: dims.1,
                        in_w: dims.2,
                    }
                }
                Layer::Add(_) => QOp::Add,
                Layer::Concat(_) => QOp::Concat,
            };
            nodes.push(QNode {
                op,
                inputs: node.inputs.clone(),
                out_format,
            });
        }

        Ok(Self {
            name: network.name().to_string(),
            width: options.width,
            variant: options.variant,
            input_format,
            nodes,
            compute_layers: layer_id,
            num_classes,
        })
    }

    /// The network's name (copied from the floating-point model).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage width of activations and weights.
    #[must_use]
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Number of convolution / fully-connected layers (the unit of the paper's
    /// layer-wise analysis and of [`wgft_faultsim::ProtectionPlan`] layer ids).
    #[must_use]
    pub fn compute_layer_count(&self) -> usize {
        self.compute_layers
    }

    /// Number of output classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Analytic per-layer operation counts under the given convolution
    /// algorithm, indexed by compute-layer id.
    #[must_use]
    pub fn layer_op_counts(&self, algo: ConvAlgorithm) -> Vec<OpCount> {
        let mut counts = vec![OpCount::default(); self.compute_layers];
        for node in &self.nodes {
            match &node.op {
                QOp::Conv {
                    shape, layer_id, ..
                } => {
                    counts[*layer_id] = ConvOpModel::count(shape, algo);
                }
                QOp::Linear {
                    in_features,
                    out_features,
                    layer_id,
                    ..
                } => {
                    let macs = (in_features * out_features) as u64;
                    counts[*layer_id] = OpCount {
                        mul: macs,
                        add: macs,
                    };
                }
                _ => {}
            }
        }
        counts
    }

    /// Total operation count under the given algorithm.
    #[must_use]
    pub fn total_op_count(&self, algo: ConvAlgorithm) -> OpCount {
        self.layer_op_counts(algo)
            .into_iter()
            .fold(OpCount::default(), |acc, c| acc + c)
    }

    /// Run inference through the instrumented backend and return the
    /// dequantized logits.
    ///
    /// # Errors
    ///
    /// Returns an [`NnError`] if the graph or buffer shapes are inconsistent.
    pub fn forward<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
    ) -> Result<Vec<f32>, NnError> {
        self.forward_internal(image, arith, algo, None, &mut WinogradScratch::new())
    }

    /// [`QuantizedNetwork::forward`] with a caller-owned winograd scratch
    /// arena, so batch evaluation loops can reuse one set of buffers across
    /// many images instead of reallocating per forward pass. Results are
    /// bit-identical to [`QuantizedNetwork::forward`] (the kernels clear the
    /// scratch before use).
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn forward_with_scratch<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
        scratch: &mut WinogradScratch,
    ) -> Result<Vec<f32>, NnError> {
        self.forward_internal(image, arith, algo, None, scratch)
    }

    /// Run inference and return the predicted class.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn classify<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
    ) -> Result<usize, NnError> {
        Ok(argmax(&self.forward(image, arith, algo)?))
    }

    /// [`QuantizedNetwork::classify`] with a caller-owned winograd scratch
    /// arena (see [`QuantizedNetwork::forward_with_scratch`]).
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn classify_with_scratch<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
        scratch: &mut WinogradScratch,
    ) -> Result<usize, NnError> {
        Ok(argmax(
            &self.forward_with_scratch(image, arith, algo, scratch)?,
        ))
    }

    /// Prepare the cached plans and scratch of the fast uninstrumented
    /// forward pass ([`QuantizedNetwork::forward_fast`]).
    ///
    /// # Errors
    ///
    /// Returns an [`NnError`] if a winograd-capable layer's cached weights
    /// are inconsistent with its shape (cannot happen for a network built by
    /// [`QuantizedNetwork::from_network`]).
    pub fn prepare_fast(&self) -> Result<FastInference, NnError> {
        let mut wino = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            wino.push(match &node.op {
                QOp::Conv {
                    shape,
                    winograd: Some(w),
                    ..
                } if shape.geometry.is_unit_stride_3x3() => {
                    Some(PreparedConvQuantizedFast::new(w, shape)?)
                }
                _ => None,
            });
        }
        Ok(FastInference {
            wino,
            im2col: Vec::new(),
            acc: Vec::new(),
        })
    }

    /// Run **fault-free** inference on the fast uninstrumented path and
    /// return the dequantized logits.
    ///
    /// Convolution layers execute through [`PreparedConvQuantizedFast`]
    /// (winograd) or an im2col [`gemm_i32`] factorization (standard /
    /// non-winograd geometries); fully-connected layers run plain widening
    /// dot products. No [`Arithmetic`] backend is involved, so nothing can
    /// be injected — which is exactly why this path may only stand in for
    /// the instrumented one at BER 0.
    ///
    /// The logits are **bit-identical** to
    /// [`QuantizedNetwork::forward`] over [`ExactArithmetic`] (integer
    /// kernels are exact; the activation/pooling/join semantics are the
    /// literal same code) — the tested guarantee that lets campaign clean
    /// baselines, BER=0 sweep cells and ABFT calibration route here without
    /// changing a single journaled result.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn forward_fast(
        &self,
        image: &Tensor,
        algo: ConvAlgorithm,
        fast: &mut FastInference,
    ) -> Result<Vec<f32>, NnError> {
        self.forward_fast_internal(image, algo, fast, None, None)
    }

    /// [`QuantizedNetwork::forward_fast`] returning the predicted class.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn classify_fast(
        &self,
        image: &Tensor,
        algo: ConvAlgorithm,
        fast: &mut FastInference,
    ) -> Result<usize, NnError> {
        Ok(argmax(&self.forward_fast(image, algo, fast)?))
    }

    /// [`QuantizedNetwork::forward_fast`] with an output-latch fault hook:
    /// after each compute layer's kernel fills its wide accumulators —
    /// and before requantization — `corrupt` is called on the accumulator
    /// span, modelling soft errors striking a matrix engine's output
    /// latches (pass [`wgft_faultsim::GemmFaultInjector::corrupt_i64`]).
    ///
    /// With a hook that never writes, the logits are bit-identical to
    /// [`QuantizedNetwork::forward_fast`] — tested — so the hook's strikes
    /// are the *only* difference between the faulty and clean executions.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn forward_fast_with_faults(
        &self,
        image: &Tensor,
        algo: ConvAlgorithm,
        fast: &mut FastInference,
        corrupt: &mut AccumulatorHook<'_>,
    ) -> Result<Vec<f32>, NnError> {
        self.forward_fast_internal(image, algo, fast, None, Some(corrupt))
    }

    /// [`QuantizedNetwork::forward_fast_with_faults`] returning the
    /// predicted class.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn classify_fast_with_faults(
        &self,
        image: &Tensor,
        algo: ConvAlgorithm,
        fast: &mut FastInference,
        corrupt: &mut AccumulatorHook<'_>,
    ) -> Result<usize, NnError> {
        Ok(argmax(
            &self.forward_fast_with_faults(image, algo, fast, corrupt)?,
        ))
    }

    /// Run **fault-free** inference on the fast path for a whole batch of
    /// images at once, returning one logits vector per image.
    ///
    /// Winograd convolution layers coalesce the batch into the planned
    /// engine's GEMM free dimension (`N·P` tiles via
    /// [`PreparedConvQuantizedFast::execute_batch_into`]); every other op
    /// runs the literal single-image code per image. Both are bit-identical
    /// to per-image execution — tested — so the logits equal `n` calls to
    /// [`QuantizedNetwork::forward_fast`] for **any** batch coalescing
    /// schedule. This is the substrate of `wgft-serve`'s micro-batching:
    /// how concurrent requests were grouped can never change an answer.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`]; additionally rejects batches
    /// whose images disagree in length.
    pub fn forward_fast_batch<T: AsRef<Tensor>>(
        &self,
        images: &[T],
        algo: ConvAlgorithm,
        fast: &mut FastInference,
    ) -> Result<Vec<Vec<f32>>, NnError> {
        let n = images.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let FastInference { wino, im2col, acc } = fast;
        let image_len = images[0].as_ref().data().len();
        let mut image_q = Vec::with_capacity(n * image_len);
        for image in images {
            let data = image.as_ref().data();
            if data.len() != image_len {
                return Err(NnError::WrongInputCount {
                    layer: "batched image",
                    expected: image_len,
                    actual: data.len(),
                });
            }
            image_q.extend(self.input_format.quantize_slice(data));
        }
        // Per node: the batch's outputs stored image-major and contiguous
        // (image `i` occupies `[i·len, (i+1)·len)`), so a downstream node's
        // whole input slab is just its producer's buffer.
        let mut outputs: Vec<(Vec<i32>, QFormat, usize)> = Vec::with_capacity(self.nodes.len());
        for (node_idx, node) in self.nodes.iter().enumerate() {
            let slab = |r: &InputRef| -> (&[i32], QFormat, usize) {
                match r {
                    InputRef::Image => (&image_q, self.input_format, image_len),
                    InputRef::Node(nd) => {
                        let (data, fmt, len) = &outputs[*nd];
                        (data, *fmt, *len)
                    }
                }
            };
            let produced: (Vec<i32>, QFormat, usize) = match &node.op {
                QOp::Conv {
                    shape,
                    weights,
                    weight_frac,
                    winograd,
                    winograd_frac,
                    bias,
                    ..
                } => {
                    let (input_all, in_format, in_len) = slab(&node.inputs[0]);
                    if in_len != shape.input_len() {
                        return Err(wgft_winograd::WinogradError::BufferSizeMismatch {
                            what: "input",
                            expected: shape.input_len(),
                            actual: in_len,
                        }
                        .into());
                    }
                    let use_winograd = matches!(algo, ConvAlgorithm::Winograd(_))
                        && winograd.is_some()
                        && shape.geometry.is_unit_stride_3x3();
                    let out_len = shape.output_len();
                    resize_acc(acc, n * out_len);
                    let acc_frac = if use_winograd {
                        let plan = wino[node_idx]
                            .as_mut()
                            .expect("prepare_fast plans every winograd-capable node");
                        plan.execute_batch_into(input_all, n, &mut acc[..n * out_len])?;
                        in_format.frac_bits() + winograd_frac
                    } else {
                        for i in 0..n {
                            fast_direct_conv(
                                &input_all[i * in_len..(i + 1) * in_len],
                                weights,
                                shape,
                                im2col,
                                &mut acc[i * out_len..(i + 1) * out_len],
                            );
                        }
                        in_format.frac_bits() + weight_frac
                    };
                    let mut raw = Vec::with_capacity(n * out_len);
                    for i in 0..n {
                        raw.extend(requantize_with_bias(
                            &acc[i * out_len..(i + 1) * out_len],
                            acc_frac,
                            bias,
                            shape.geometry.out_pixels(),
                            node.out_format,
                        ));
                    }
                    (raw, node.out_format, out_len)
                }
                QOp::Linear {
                    in_features,
                    out_features,
                    weights,
                    weight_frac,
                    bias,
                    ..
                } => {
                    let (input_all, in_format, in_len) = slab(&node.inputs[0]);
                    if in_len != *in_features {
                        return Err(NnError::WrongInputCount {
                            layer: "quantized linear",
                            expected: *in_features,
                            actual: in_len,
                        });
                    }
                    resize_acc(acc, n * out_features);
                    for i in 0..n {
                        let input = &input_all[i * in_len..(i + 1) * in_len];
                        for (o, acc_v) in acc[i * out_features..(i + 1) * out_features]
                            .iter_mut()
                            .enumerate()
                        {
                            let row = &weights[o * in_features..(o + 1) * in_features];
                            let mut sum = 0i64;
                            for (&w, &x) in row.iter().zip(input.iter()) {
                                sum += i64::from(x) * i64::from(w);
                            }
                            *acc_v = sum;
                        }
                    }
                    let acc_frac = in_format.frac_bits() + weight_frac;
                    let raw: Vec<i32> = acc[..n * out_features]
                        .iter()
                        .enumerate()
                        .map(|(j, &a)| {
                            requantize_linear_acc(
                                a,
                                bias[j % out_features],
                                acc_frac,
                                node.out_format,
                            )
                        })
                        .collect();
                    (raw, node.out_format, *out_features)
                }
                _ => {
                    let mut raw = Vec::new();
                    let mut fmt = node.out_format;
                    let mut per_len = 0usize;
                    for i in 0..n {
                        let gather = |r: &InputRef| -> (&[i32], QFormat) {
                            let (data, f, len) = slab(r);
                            (&data[i * len..(i + 1) * len], f)
                        };
                        let (data, f) = node
                            .forward_simple(gather)
                            .expect("non-compute ops handled by forward_simple");
                        per_len = data.len();
                        fmt = f;
                        raw.extend(data);
                    }
                    (raw, fmt, per_len)
                }
            };
            outputs.push(produced);
        }
        let (raw, format, per_len) = outputs.last().ok_or(NnError::EmptyNetwork)?;
        Ok((0..n)
            .map(|i| {
                raw[i * per_len..(i + 1) * per_len]
                    .iter()
                    .map(|&v| format.dequantize(v))
                    .collect()
            })
            .collect())
    }

    /// [`QuantizedNetwork::forward_fast_batch`] returning one predicted
    /// class per image.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward_fast_batch`].
    pub fn classify_fast_batch<T: AsRef<Tensor>>(
        &self,
        images: &[T],
        algo: ConvAlgorithm,
        fast: &mut FastInference,
    ) -> Result<Vec<usize>, NnError> {
        Ok(self
            .forward_fast_batch(images, algo, fast)?
            .iter()
            .map(|logits| argmax(logits))
            .collect())
    }

    fn forward_fast_internal(
        &self,
        image: &Tensor,
        algo: ConvAlgorithm,
        fast: &mut FastInference,
        mut record: Option<&mut AbftCalibration>,
        mut corrupt: Option<&mut AccumulatorHook<'_>>,
    ) -> Result<Vec<f32>, NnError> {
        let FastInference { wino, im2col, acc } = fast;
        let image_q = self.input_format.quantize_slice(image.data());
        let mut outputs: Vec<(Vec<i32>, QFormat)> = Vec::with_capacity(self.nodes.len());
        for (node_idx, node) in self.nodes.iter().enumerate() {
            let gather = |r: &InputRef| -> (&[i32], QFormat) {
                match r {
                    InputRef::Image => (&image_q, self.input_format),
                    InputRef::Node(n) => (&outputs[*n].0, outputs[*n].1),
                }
            };
            let produced: (Vec<i32>, QFormat) = match &node.op {
                QOp::Conv {
                    shape,
                    weights,
                    weight_frac,
                    winograd,
                    winograd_frac,
                    bias,
                    layer_id,
                } => {
                    let (input, in_format) = gather(&node.inputs[0]);
                    let use_winograd = matches!(algo, ConvAlgorithm::Winograd(_))
                        && winograd.is_some()
                        && shape.geometry.is_unit_stride_3x3();
                    let out_len = shape.output_len();
                    resize_acc(acc, out_len);
                    if input.len() != shape.input_len() {
                        // The winograd arm validates inside `execute_into`;
                        // this keeps the direct arm on the same "# Errors"
                        // contract as the instrumented forward instead of
                        // panicking inside the im2col indexing.
                        return Err(wgft_winograd::WinogradError::BufferSizeMismatch {
                            what: "input",
                            expected: shape.input_len(),
                            actual: input.len(),
                        }
                        .into());
                    }
                    let acc_frac = if use_winograd {
                        let plan = wino[node_idx]
                            .as_mut()
                            .expect("prepare_fast plans every winograd-capable node");
                        if let Some(cal) = record.as_deref_mut() {
                            let mut ranges = QuantizedRangeRecord::new();
                            plan.execute_into_recording(input, &mut acc[..out_len], &mut ranges)?;
                            let layer = cal.layer_mut(*layer_id);
                            layer.v_max = layer.v_max.max(ranges.v_max);
                            layer.gemm_max = layer.gemm_max.max(ranges.gemm_max);
                        } else {
                            plan.execute_into(input, &mut acc[..out_len])?;
                        }
                        in_format.frac_bits() + winograd_frac
                    } else {
                        fast_direct_conv(input, weights, shape, im2col, &mut acc[..out_len]);
                        in_format.frac_bits() + weight_frac
                    };
                    if let Some(hook) = corrupt.as_deref_mut() {
                        hook(&mut acc[..out_len]);
                    }
                    if let Some(cal) = record.as_deref_mut() {
                        let layer = cal.layer_mut(*layer_id);
                        layer.acc_max = layer.acc_max.max(observe_max(&acc[..out_len]));
                    }
                    let raw = requantize_with_bias(
                        &acc[..out_len],
                        acc_frac,
                        bias,
                        shape.geometry.out_pixels(),
                        node.out_format,
                    );
                    (raw, node.out_format)
                }
                QOp::Linear {
                    in_features,
                    out_features,
                    weights,
                    weight_frac,
                    bias,
                    layer_id,
                } => {
                    let (input, in_format) = gather(&node.inputs[0]);
                    if input.len() != *in_features {
                        return Err(NnError::WrongInputCount {
                            layer: "quantized linear",
                            expected: *in_features,
                            actual: input.len(),
                        });
                    }
                    resize_acc(acc, *out_features);
                    for (o, acc_v) in acc[..*out_features].iter_mut().enumerate() {
                        let row = &weights[o * in_features..(o + 1) * in_features];
                        let mut sum = 0i64;
                        for (&w, &x) in row.iter().zip(input.iter()) {
                            sum += i64::from(x) * i64::from(w);
                        }
                        *acc_v = sum;
                    }
                    if let Some(hook) = corrupt.as_deref_mut() {
                        hook(&mut acc[..*out_features]);
                    }
                    if let Some(cal) = record.as_deref_mut() {
                        let layer = cal.layer_mut(*layer_id);
                        layer.acc_max = layer.acc_max.max(observe_max(&acc[..*out_features]));
                    }
                    let acc_frac = in_format.frac_bits() + weight_frac;
                    let raw: Vec<i32> = acc[..*out_features]
                        .iter()
                        .enumerate()
                        .map(|(o, &a)| requantize_linear_acc(a, bias[o], acc_frac, node.out_format))
                        .collect();
                    (raw, node.out_format)
                }
                _ => node
                    .forward_simple(gather)
                    .expect("non-compute ops handled by forward_simple"),
            };
            outputs.push(produced);
        }
        let (raw, format) = outputs.last().ok_or(NnError::EmptyNetwork)?;
        Ok(raw.iter().map(|&v| format.dequantize(v)).collect())
    }

    /// Run inference with a *neuron-level* injector corrupting every compute
    /// layer's output values (the TensorFI/PyTorchFI-style baseline of
    /// Figure 1). The arithmetic itself is exact.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn forward_with_neuron_faults(
        &self,
        image: &Tensor,
        injector: &mut NeuronLevelInjector,
        algo: ConvAlgorithm,
    ) -> Result<Vec<f32>, NnError> {
        self.forward_with_neuron_faults_scratch(image, injector, algo, &mut WinogradScratch::new())
    }

    /// [`QuantizedNetwork::forward_with_neuron_faults`] with a caller-owned
    /// winograd scratch arena for batch evaluation loops.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn forward_with_neuron_faults_scratch(
        &self,
        image: &Tensor,
        injector: &mut NeuronLevelInjector,
        algo: ConvAlgorithm,
        scratch: &mut WinogradScratch,
    ) -> Result<Vec<f32>, NnError> {
        let mut exact = ExactArithmetic::new();
        self.forward_internal(image, &mut exact, algo, Some(injector), scratch)
    }

    /// Run inference under an executable [`AbftPolicy`]: convolution and
    /// fully-connected layers whose mode is not [`AbftMode::Off`] execute
    /// through the protected `wgft-abft` engines (checksummed GEMMs,
    /// transform guards, range restriction), still issuing every primitive
    /// operation through `arith` so injected faults strike the protected
    /// datapath exactly as they strike the unprotected one.
    ///
    /// `calibration` supplies the per-layer value ranges that range
    /// restriction clips against (obtain one from
    /// [`QuantizedNetwork::calibrate_abft`]); without it, clipping modes run
    /// their checks but never clip. Detection/correction/clip events and the
    /// exact protection overhead accumulate into `events`.
    ///
    /// With an all-[`AbftMode::Off`] policy the layers run the stock
    /// instrumented kernels and perform exactly the operation counts of
    /// [`QuantizedNetwork::forward`] (the fully-connected layer issues its
    /// multiplies with the operand order swapped, so under fault injection
    /// the two unprotected paths are statistically — not bit — identical).
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    #[allow(clippy::too_many_arguments)]
    pub fn forward_abft<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
        policy: &AbftPolicy,
        calibration: Option<&AbftCalibration>,
        scratch: &mut AbftScratch,
        events: &mut AbftEvents,
    ) -> Result<Vec<f32>, NnError> {
        self.forward_abft_internal(
            image,
            arith,
            algo,
            policy,
            calibration,
            scratch,
            events,
            None,
        )
    }

    /// [`QuantizedNetwork::forward_abft`] returning the predicted class.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    #[allow(clippy::too_many_arguments)]
    pub fn classify_abft<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
        policy: &AbftPolicy,
        calibration: Option<&AbftCalibration>,
        scratch: &mut AbftScratch,
        events: &mut AbftEvents,
    ) -> Result<usize, NnError> {
        Ok(argmax(&self.forward_abft(
            image,
            arith,
            algo,
            policy,
            calibration,
            scratch,
            events,
        )?))
    }

    /// Record the fault-free per-layer value ranges (winograd-domain inputs,
    /// GEMM products, output accumulators) over a set of calibration images
    /// — the bounds range restriction clips against.
    ///
    /// Calibration is inherently fault-free, so it runs on the fast
    /// uninstrumented path ([`QuantizedNetwork::forward_fast`]) with a range
    /// recorder attached; the resulting [`AbftCalibration`] is identical to
    /// the instrumented reference pass
    /// ([`QuantizedNetwork::calibrate_abft_instrumented`]) because both
    /// observe the same exact integer values — tested.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn calibrate_abft(
        &self,
        images: &[Tensor],
        algo: ConvAlgorithm,
    ) -> Result<AbftCalibration, NnError> {
        let mut calibration = AbftCalibration::new(self.compute_layers);
        let mut fast = self.prepare_fast()?;
        for image in images {
            self.forward_fast_internal(image, algo, &mut fast, Some(&mut calibration), None)?;
        }
        Ok(calibration)
    }

    /// The instrumented reference implementation of
    /// [`QuantizedNetwork::calibrate_abft`]: a fault-free pass through the
    /// protected executors with their range recorders attached. Kept (and
    /// tested) as the ground truth the fast calibration must reproduce
    /// exactly.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward`].
    pub fn calibrate_abft_instrumented(
        &self,
        images: &[Tensor],
        algo: ConvAlgorithm,
    ) -> Result<AbftCalibration, NnError> {
        let mut calibration = AbftCalibration::new(self.compute_layers);
        let mut scratch = AbftScratch::new();
        let policy = AbftPolicy::off();
        for image in images {
            let mut arith = ExactArithmetic::new();
            let mut events = AbftEvents::new();
            self.forward_abft_internal(
                image,
                &mut arith,
                algo,
                &policy,
                None,
                &mut scratch,
                &mut events,
                Some(&mut calibration),
            )?;
        }
        Ok(calibration)
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_abft_internal<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
        policy: &AbftPolicy,
        calibration: Option<&AbftCalibration>,
        scratch: &mut AbftScratch,
        events: &mut AbftEvents,
        mut record: Option<&mut AbftCalibration>,
    ) -> Result<Vec<f32>, NnError> {
        let image_q = self.input_format.quantize_slice(image.data());
        let mut outputs: Vec<(Vec<i32>, QFormat)> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let gather = |r: &InputRef| -> (&[i32], QFormat) {
                match r {
                    InputRef::Image => (&image_q, self.input_format),
                    InputRef::Node(n) => (&outputs[*n].0, outputs[*n].1),
                }
            };
            let produced: (Vec<i32>, QFormat) = match &node.op {
                QOp::Conv {
                    shape,
                    weights,
                    weight_frac,
                    winograd,
                    winograd_frac,
                    bias,
                    layer_id,
                } => {
                    let (input, in_format) = gather(&node.inputs[0]);
                    let use_winograd = matches!(algo, ConvAlgorithm::Winograd(_))
                        && winograd.is_some()
                        && shape.geometry.is_unit_stride_3x3();
                    let mode = policy.mode_for(*layer_id);
                    let run = AbftRun {
                        mode,
                        recompute: policy.recompute_on_detect,
                        margin: policy.range_margin,
                        ranges: calibration.and_then(|c| c.layer(*layer_id)),
                    };
                    let engine = mode != AbftMode::Off || record.is_some();
                    let rec = record.as_deref_mut().map(|c| c.layer_mut(*layer_id));
                    let (acc, acc_frac) = if use_winograd {
                        let w = winograd.as_ref().expect("checked above");
                        let acc = if engine {
                            abft_winograd_conv(
                                arith, *layer_id, input, w, shape, scratch, run, rec, events,
                            )?
                        } else {
                            winograd_conv_quantized_with_scratch(
                                arith,
                                *layer_id,
                                input,
                                w,
                                shape,
                                &mut scratch.wino,
                            )?
                        };
                        (acc, in_format.frac_bits() + winograd_frac)
                    } else {
                        let acc = if engine {
                            abft_direct_conv(
                                arith, *layer_id, input, weights, shape, scratch, run, rec, events,
                            )?
                        } else {
                            direct_conv_quantized(arith, *layer_id, input, weights, shape)?
                        };
                        (acc, in_format.frac_bits() + weight_frac)
                    };
                    let raw = requantize_with_bias(
                        &acc,
                        acc_frac,
                        bias,
                        shape.geometry.out_pixels(),
                        node.out_format,
                    );
                    (raw, node.out_format)
                }
                QOp::Linear {
                    in_features,
                    out_features,
                    weights,
                    weight_frac,
                    bias,
                    layer_id,
                } => {
                    let (input, in_format) = gather(&node.inputs[0]);
                    if input.len() != *in_features {
                        return Err(NnError::WrongInputCount {
                            layer: "quantized linear",
                            expected: *in_features,
                            actual: input.len(),
                        });
                    }
                    let mode = policy.mode_for(*layer_id);
                    let run = AbftRun {
                        mode,
                        recompute: policy.recompute_on_detect,
                        margin: policy.range_margin,
                        ranges: calibration.and_then(|c| c.layer(*layer_id)),
                    };
                    let rec = record.as_deref_mut().map(|c| c.layer_mut(*layer_id));
                    let acc_frac = in_format.frac_bits() + weight_frac;
                    let acc = abft_linear(
                        arith,
                        *layer_id,
                        input,
                        weights,
                        *in_features,
                        *out_features,
                        scratch,
                        run,
                        rec,
                        events,
                    );
                    let raw: Vec<i32> = acc
                        .iter()
                        .enumerate()
                        .map(|(o, &a)| requantize_linear_acc(a, bias[o], acc_frac, node.out_format))
                        .collect();
                    (raw, node.out_format)
                }
                _ => node
                    .forward_simple(gather)
                    .expect("non-compute ops handled by forward_simple"),
            };
            outputs.push(produced);
        }
        let (raw, format) = outputs.last().ok_or(NnError::EmptyNetwork)?;
        Ok(raw.iter().map(|&v| format.dequantize(v)).collect())
    }

    fn forward_internal<A: Arithmetic>(
        &self,
        image: &Tensor,
        arith: &mut A,
        algo: ConvAlgorithm,
        mut neuron_injector: Option<&mut NeuronLevelInjector>,
        wino_scratch: &mut WinogradScratch,
    ) -> Result<Vec<f32>, NnError> {
        // The neuron-level baseline always sees the *standard* convolution
        // operation volume: a generic framework has no visibility into the
        // conv algorithm, which is exactly the blind spot Figure 1 exposes.
        let standard_counts = self.layer_op_counts(ConvAlgorithm::Standard);
        let image_q = self.input_format.quantize_slice(image.data());
        let mut outputs: Vec<(Vec<i32>, QFormat)> = Vec::with_capacity(self.nodes.len());
        // One scratch arena shared by every winograd layer of this forward
        // pass (and, via the `_with_scratch` entry points, across a whole
        // batch of forward passes) — nothing inside the kernels' per-tile
        // loops allocates.

        for node in &self.nodes {
            let gather = |r: &InputRef| -> (&[i32], QFormat) {
                match r {
                    InputRef::Image => (&image_q, self.input_format),
                    InputRef::Node(n) => (&outputs[*n].0, outputs[*n].1),
                }
            };
            let produced: (Vec<i32>, QFormat) = match &node.op {
                QOp::Conv {
                    shape,
                    weights,
                    weight_frac,
                    winograd,
                    winograd_frac,
                    bias,
                    layer_id,
                } => {
                    let (input, in_format) = gather(&node.inputs[0]);
                    let use_winograd = matches!(algo, ConvAlgorithm::Winograd(_))
                        && winograd.is_some()
                        && shape.geometry.is_unit_stride_3x3();
                    let (acc, acc_frac) = if use_winograd {
                        let w = winograd.as_ref().expect("checked above");
                        (
                            winograd_conv_quantized_with_scratch(
                                arith,
                                *layer_id,
                                input,
                                w,
                                shape,
                                wino_scratch,
                            )?,
                            in_format.frac_bits() + winograd_frac,
                        )
                    } else {
                        (
                            direct_conv_quantized(arith, *layer_id, input, weights, shape)?,
                            in_format.frac_bits() + weight_frac,
                        )
                    };
                    let mut raw = requantize_with_bias(
                        &acc,
                        acc_frac,
                        bias,
                        shape.geometry.out_pixels(),
                        node.out_format,
                    );
                    if let Some(injector) = neuron_injector.as_deref_mut() {
                        let ops = &standard_counts[*layer_id];
                        let per_neuron = ops.total() / raw.len().max(1) as u64;
                        injector.corrupt_layer(&mut raw, per_neuron);
                    }
                    (raw, node.out_format)
                }
                QOp::Linear {
                    in_features,
                    out_features,
                    weights,
                    weight_frac,
                    bias,
                    layer_id,
                } => {
                    let (input, in_format) = gather(&node.inputs[0]);
                    if input.len() != *in_features {
                        return Err(NnError::WrongInputCount {
                            layer: "quantized linear",
                            expected: *in_features,
                            actual: input.len(),
                        });
                    }
                    arith.begin_layer(*layer_id);
                    let acc_frac = in_format.frac_bits() + weight_frac;
                    let mut raw = Vec::with_capacity(*out_features);
                    for o in 0..*out_features {
                        let row = &weights[o * in_features..(o + 1) * in_features];
                        let mut acc = 0i64;
                        for (&w, &x) in row.iter().zip(input.iter()) {
                            let product = arith.mul(i64::from(x), i64::from(w));
                            acc = arith.add(acc, product);
                        }
                        raw.push(requantize_linear_acc(
                            acc,
                            bias[o],
                            acc_frac,
                            node.out_format,
                        ));
                    }
                    if let Some(injector) = neuron_injector.as_deref_mut() {
                        let ops = &standard_counts[*layer_id];
                        let per_neuron = ops.total() / raw.len().max(1) as u64;
                        injector.corrupt_layer(&mut raw, per_neuron);
                    }
                    (raw, node.out_format)
                }
                _ => node
                    .forward_simple(gather)
                    .expect("non-compute ops handled by forward_simple"),
            };
            outputs.push(produced);
        }

        let (raw, format) = outputs.last().ok_or(NnError::EmptyNetwork)?;
        Ok(raw.iter().map(|&v| format.dequantize(v)).collect())
    }
}

/// Grow-and-clear the shared accumulator scratch for one layer.
fn resize_acc(acc: &mut Vec<i64>, len: usize) {
    acc.clear();
    acc.resize(len, 0);
}

/// Fast uninstrumented direct convolution: the im2col factorization —
/// weights `(O × C·k²)` times patches `(C·k² × P)` — through the blocked
/// [`gemm_i32`] microkernel. Padding taps multiply zeros instead of being
/// skipped, so the accumulators are *bit-identical* to
/// [`direct_conv_quantized`] over exact arithmetic (zero products contribute
/// nothing to exact integer sums).
fn fast_direct_conv(
    input: &[i32],
    weights: &[i32],
    shape: &ConvShape,
    im2col: &mut Vec<i32>,
    acc: &mut [i64],
) {
    let g = &shape.geometry;
    let p = g.out_pixels();
    let kdim = shape.in_channels * g.k_h * g.k_w;
    im2col_quantized(input, shape.in_channels, g, im2col);
    gemm_i32(weights, im2col, acc, shape.out_channels, kdim, p);
}

/// Requantize one fully-connected accumulator, adding its bias in the
/// accumulator domain — the single copy of the bias-rounding expression all
/// three linear paths (instrumented, protected, fast) share, so the tested
/// bit-identity between them cannot drift.
fn requantize_linear_acc(acc: i64, bias: f32, acc_frac: u32, out_format: QFormat) -> i32 {
    let bias_acc = (f64::from(bias) * (1u64 << acc_frac) as f64).round() as i64;
    // Saturating for the same reason as `requantize_with_bias`: injected
    // faults can push `acc` to the i64 extremes.
    out_format.requantize_accumulator(acc.saturating_add(bias_acc), acc_frac)
}

/// Requantize a conv accumulator buffer, adding the per-channel bias in the
/// accumulator domain.
fn requantize_with_bias(
    acc: &[i64],
    acc_frac: u32,
    bias: &[f32],
    pixels_per_channel: usize,
    out_format: QFormat,
) -> Vec<i32> {
    let scale = (1u64 << acc_frac) as f64;
    let mut out = Vec::with_capacity(acc.len());
    for (i, &a) in acc.iter().enumerate() {
        let oc = i / pixels_per_channel.max(1);
        let bias_acc = (f64::from(bias.get(oc).copied().unwrap_or(0.0)) * scale).round() as i64;
        // Saturating: fault injection can leave `a` near the i64 extremes,
        // and the bias add must not overflow (clean accumulators sit far
        // below the saturation region, so this never changes exact results).
        out.push(out_format.requantize_accumulator(a.saturating_add(bias_acc), acc_frac));
    }
    out
}

/// 2x2/stride-2 max pooling on raw quantized words.
fn maxpool_raw(input: &[i32], channels: usize, in_h: usize, in_w: usize) -> Vec<i32> {
    let (oh, ow) = (in_h / 2, in_w / 2);
    let mut out = vec![0i32; channels * oh * ow];
    for c in 0..channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i32::MIN;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let idx = (c * in_h + oy * 2 + dy) * in_w + ox * 2 + dx;
                        best = best.max(input[idx]);
                    }
                }
                out[(c * oh + oy) * ow + ox] = best;
            }
        }
    }
    out
}

/// Global average pooling on raw quantized words (rounded mean).
fn gap_raw(input: &[i32], channels: usize, in_h: usize, in_w: usize) -> Vec<i32> {
    let area = (in_h * in_w) as i64;
    let mut out = vec![0i32; channels];
    for (c, out_v) in out.iter_mut().enumerate() {
        let base = c * in_h * in_w;
        let sum: i64 = input[base..base + in_h * in_w]
            .iter()
            .map(|&v| i64::from(v))
            .sum();
        *out_v = (sum + area / 2).div_euclid(area.max(1)) as i32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use crate::{TrainConfig, Trainer};
    use wgft_data::{Dataset, SyntheticSpec};
    use wgft_faultsim::{BitErrorRate, FaultConfig, FaultyArithmetic};

    fn trained_tiny() -> (crate::Network, Dataset, SyntheticSpec) {
        let spec = SyntheticSpec::tiny();
        let data = Dataset::synthetic(&spec, 16, 3);
        let mut net = ModelKind::VggSmall.build(&spec, 5);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 6,
            ..TrainConfig::fast()
        });
        trainer.fit(&mut net, &data).unwrap();
        (net, data, spec)
    }

    #[test]
    fn quantized_network_matches_float_predictions_mostly() {
        let (mut net, data, spec) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(8)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W16),
        )
        .unwrap();
        assert_eq!(qnet.width(), BitWidth::W16);
        assert_eq!(qnet.num_classes(), spec.num_classes);
        assert!(qnet.compute_layer_count() >= 6);
        assert_eq!(qnet.name(), "vgg_small");

        let mut agree = 0usize;
        let eval: Vec<_> = data.samples().iter().take(16).collect();
        for sample in &eval {
            let float_pred = argmax(net.forward(&sample.image).unwrap().data());
            let mut arith = ExactArithmetic::new();
            let q_pred = qnet
                .classify(&sample.image, &mut arith, ConvAlgorithm::Standard)
                .unwrap();
            if float_pred == q_pred {
                agree += 1;
            }
        }
        assert!(
            agree * 10 >= eval.len() * 8,
            "int16 quantization should agree with float on most samples ({agree}/{})",
            eval.len()
        );
    }

    #[test]
    fn winograd_and_standard_agree_without_faults() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(8)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W16),
        )
        .unwrap();
        let mut agree = 0usize;
        let eval: Vec<_> = data.samples().iter().take(16).collect();
        for sample in &eval {
            let mut a1 = ExactArithmetic::new();
            let mut a2 = ExactArithmetic::new();
            let std_pred = qnet
                .classify(&sample.image, &mut a1, ConvAlgorithm::Standard)
                .unwrap();
            let wg_pred = qnet
                .classify(&sample.image, &mut a2, ConvAlgorithm::winograd_default())
                .unwrap();
            if std_pred == wg_pred {
                agree += 1;
            }
        }
        assert!(
            agree * 10 >= eval.len() * 8,
            "winograd should agree with standard ({agree})"
        );
    }

    #[test]
    fn winograd_execution_issues_fewer_multiplications() {
        // Operation counts do not depend on training, so use an untrained
        // 16x16 model where boundary effects do not mask the winograd gain.
        let spec = SyntheticSpec::small();
        let data = Dataset::synthetic(&spec, 2, 3);
        let mut net = ModelKind::VggSmall.build(&spec, 5);
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(4)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W8),
        )
        .unwrap();
        let image = &data.samples()[0].image;
        let mut std_arith = ExactArithmetic::new();
        qnet.forward(image, &mut std_arith, ConvAlgorithm::Standard)
            .unwrap();
        let mut wg_arith = ExactArithmetic::new();
        qnet.forward(image, &mut wg_arith, ConvAlgorithm::winograd_default())
            .unwrap();
        let std_mul = std_arith.counters().total().mul;
        let wg_mul = wg_arith.counters().total().mul;
        assert!(
            (wg_mul as f64) < 0.65 * std_mul as f64,
            "winograd inference should use far fewer muls ({wg_mul} vs {std_mul})"
        );
        // Analytic totals should be in the same ballpark as the measurements.
        let analytic_std = qnet.total_op_count(ConvAlgorithm::Standard);
        assert!((analytic_std.mul as f64) >= std_mul as f64 * 0.9);
    }

    #[test]
    fn layer_op_counts_cover_all_compute_layers() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(2)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W8),
        )
        .unwrap();
        let counts = qnet.layer_op_counts(ConvAlgorithm::Standard);
        assert_eq!(counts.len(), qnet.compute_layer_count());
        assert!(counts.iter().all(|c| c.total() > 0));
    }

    #[test]
    fn high_fault_rate_destroys_accuracy() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(4)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W16),
        )
        .unwrap();
        let eval: Vec<_> = data.samples().iter().take(12).collect();
        let mut clean_correct = 0usize;
        let mut faulty_correct = 0usize;
        for (i, sample) in eval.iter().enumerate() {
            let mut exact = ExactArithmetic::new();
            if qnet
                .classify(&sample.image, &mut exact, ConvAlgorithm::Standard)
                .unwrap()
                == sample.label
            {
                clean_correct += 1;
            }
            let config = FaultConfig::new(BitErrorRate::new(5e-3), BitWidth::W16);
            let mut faulty = FaultyArithmetic::new(config, i as u64);
            if qnet
                .classify(&sample.image, &mut faulty, ConvAlgorithm::Standard)
                .unwrap()
                == sample.label
            {
                faulty_correct += 1;
            }
        }
        assert!(
            faulty_correct < clean_correct,
            "a huge fault rate must hurt accuracy (clean {clean_correct}, faulty {faulty_correct})"
        );
    }

    #[test]
    fn neuron_level_injection_corrupts_predictions_at_high_rates() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(4)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W16),
        )
        .unwrap();
        let image = &data.samples()[0].image;
        let mut injector = NeuronLevelInjector::new(BitErrorRate::new(1e-3), BitWidth::W16, 9);
        let corrupted = qnet
            .forward_with_neuron_faults(image, &mut injector, ConvAlgorithm::Standard)
            .unwrap();
        let mut exact = ExactArithmetic::new();
        let clean = qnet
            .forward(image, &mut exact, ConvAlgorithm::Standard)
            .unwrap();
        assert_ne!(
            clean, corrupted,
            "heavy neuron corruption must perturb the logits"
        );
    }

    /// The tentpole guarantee at network level: the fast uninstrumented
    /// forward pass must produce **bit-identical** logits to the
    /// instrumented forward pass on exact arithmetic, for both algorithms
    /// and both storage widths, across the evaluation set.
    #[test]
    fn fast_forward_is_bit_identical_to_instrumented_forward() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(8)
            .map(|s| s.image.clone())
            .collect();
        for width in [BitWidth::W8, BitWidth::W16] {
            let qnet = QuantizedNetwork::from_network(
                &mut net,
                &calibration,
                QuantizerOptions::new(width),
            )
            .unwrap();
            let mut fast = qnet.prepare_fast().unwrap();
            for algo in [ConvAlgorithm::Standard, ConvAlgorithm::winograd_default()] {
                for sample in data.samples().iter().take(12) {
                    let mut arith = ExactArithmetic::new();
                    let reference = qnet.forward(&sample.image, &mut arith, algo).unwrap();
                    let fast_logits = qnet.forward_fast(&sample.image, algo, &mut fast).unwrap();
                    assert_eq!(
                        reference, fast_logits,
                        "{width:?} {algo:?}: fast logits diverged"
                    );
                    assert_eq!(
                        argmax(&reference),
                        qnet.classify_fast(&sample.image, algo, &mut fast).unwrap()
                    );
                }
            }
        }
    }

    /// The serving guarantee at network level: batched fast inference must
    /// be **bit-identical** to per-image fast inference for every batch
    /// size (i.e. any coalescing schedule), both algorithms, on a trained
    /// model. `forward_fast` is itself bit-identical to the instrumented
    /// exact forward (tested above), so this chains all the way down.
    #[test]
    fn batched_fast_forward_is_bit_identical_to_sequential() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(8)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W8),
        )
        .unwrap();
        let images: Vec<Tensor> = data
            .samples()
            .iter()
            .take(7)
            .map(|s| s.image.clone())
            .collect();
        let mut fast = qnet.prepare_fast().unwrap();
        for algo in [ConvAlgorithm::Standard, ConvAlgorithm::winograd_default()] {
            let sequential: Vec<Vec<f32>> = images
                .iter()
                .map(|img| qnet.forward_fast(img, algo, &mut fast).unwrap())
                .collect();
            for batch in [1usize, 2, 3, 5, 7] {
                let mut batched = Vec::new();
                for chunk in images.chunks(batch) {
                    batched.extend(qnet.forward_fast_batch(chunk, algo, &mut fast).unwrap());
                }
                assert_eq!(
                    sequential, batched,
                    "{algo:?}: batch size {batch} diverged from sequential"
                );
            }
            let preds = qnet.classify_fast_batch(&images, algo, &mut fast).unwrap();
            let seq_preds: Vec<usize> = sequential.iter().map(|l| argmax(l)).collect();
            assert_eq!(preds, seq_preds);
        }
        assert!(qnet
            .forward_fast_batch::<Tensor>(&[], ConvAlgorithm::Standard, &mut fast)
            .unwrap()
            .is_empty());
    }

    /// Batched execution must also cover graphs with joins (Add / Concat):
    /// an untrained residual model exercises them without a training run
    /// (bit-identity does not depend on the weights).
    #[test]
    fn batched_fast_forward_covers_join_graphs() {
        let spec = SyntheticSpec::tiny();
        let data = Dataset::synthetic(&spec, 4, 11);
        let images: Vec<Tensor> = data
            .samples()
            .iter()
            .take(5)
            .map(|s| s.image.clone())
            .collect();
        for kind in [ModelKind::ResNetSmall, ModelKind::GoogLeNetSmall] {
            let mut net = kind.build(&spec, 5);
            let qnet = QuantizedNetwork::from_network(
                &mut net,
                &images,
                QuantizerOptions::new(BitWidth::W8),
            )
            .unwrap();
            let mut fast = qnet.prepare_fast().unwrap();
            for algo in [ConvAlgorithm::Standard, ConvAlgorithm::winograd_default()] {
                let sequential: Vec<Vec<f32>> = images
                    .iter()
                    .map(|img| qnet.forward_fast(img, algo, &mut fast).unwrap())
                    .collect();
                let batched = qnet.forward_fast_batch(&images, algo, &mut fast).unwrap();
                assert_eq!(sequential, batched, "{kind:?} {algo:?}: batch diverged");
            }
        }
    }

    /// The output-latch fault hook: a hook that never writes leaves the fast
    /// path bit-identical; a hook that flips accumulator bits changes the
    /// logits; and the deterministic `GemmFaultInjector` stream makes two
    /// identically-seeded faulty runs agree exactly (the idempotent-retry
    /// property `wgft-serve` relies on).
    #[test]
    fn fast_fault_hook_is_transparent_when_silent_and_deterministic_when_not() {
        use wgft_faultsim::GemmFaultInjector;
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(8)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W16),
        )
        .unwrap();
        let mut fast = qnet.prepare_fast().unwrap();
        let image = &data.samples()[0].image;
        let algo = ConvAlgorithm::winograd_default();

        let clean = qnet.forward_fast(image, algo, &mut fast).unwrap();
        let mut noop = |_acc: &mut [i64]| {};
        let silent = qnet
            .forward_fast_with_faults(image, algo, &mut fast, &mut noop)
            .unwrap();
        assert_eq!(clean, silent, "a silent hook must not perturb the logits");

        let faulty_run = |seed: u64| {
            let mut fast = qnet.prepare_fast().unwrap();
            let mut injector = GemmFaultInjector::new_for_bits(BitErrorRate::new(3e-3), 64, seed);
            let mut hook = |acc: &mut [i64]| {
                injector.corrupt_i64(acc);
            };
            let logits = qnet
                .forward_fast_with_faults(image, algo, &mut fast, &mut hook)
                .unwrap();
            (logits, injector.faults_injected())
        };
        let (a, faults_a) = faulty_run(3);
        let (b, faults_b) = faulty_run(3);
        assert_eq!(a, b, "same seed, same strikes, same logits");
        assert_eq!(faults_a, faults_b);
        assert!(faults_a > 0, "3e-3 over every accumulator must strike");
        assert_ne!(a, clean, "heavy accumulator corruption must show");
    }

    /// The fast path must keep the instrumented forward's error contract: a
    /// wrong-sized image returns `Err` on both paths (never a panic), for
    /// both conv algorithms.
    #[test]
    fn fast_forward_rejects_wrong_sized_images_like_instrumented() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(2)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W16),
        )
        .unwrap();
        let mut fast = qnet.prepare_fast().unwrap();
        let short = Tensor::zeros(wgft_tensor::Shape::nchw(1, 1, 2, 2));
        for algo in [ConvAlgorithm::Standard, ConvAlgorithm::winograd_default()] {
            let mut arith = ExactArithmetic::new();
            assert!(qnet.forward(&short, &mut arith, algo).is_err());
            assert!(qnet.forward_fast(&short, algo, &mut fast).is_err());
        }
    }

    /// The fast ABFT calibration must reproduce the instrumented reference
    /// calibration exactly — every layer's `v_max`, `gemm_max` and
    /// `acc_max` — for both algorithms.
    #[test]
    fn fast_abft_calibration_matches_instrumented_reference() {
        let (mut net, data, _) = trained_tiny();
        let images: Vec<Tensor> = data
            .samples()
            .iter()
            .take(6)
            .map(|s| s.image.clone())
            .collect();
        let qnet =
            QuantizedNetwork::from_network(&mut net, &images, QuantizerOptions::new(BitWidth::W16))
                .unwrap();
        for algo in [ConvAlgorithm::Standard, ConvAlgorithm::winograd_default()] {
            let fast = qnet.calibrate_abft(&images, algo).unwrap();
            let reference = qnet.calibrate_abft_instrumented(&images, algo).unwrap();
            assert_eq!(fast, reference, "{algo:?}: calibration diverged");
            assert_eq!(fast.len(), qnet.compute_layer_count());
        }
    }

    #[test]
    fn abft_forward_matches_plain_forward_when_fault_free() {
        let (mut net, data, _) = trained_tiny();
        let calibration_images: Vec<Tensor> = data
            .samples()
            .iter()
            .take(8)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration_images,
            QuantizerOptions::new(BitWidth::W16),
        )
        .unwrap();
        for algo in [ConvAlgorithm::Standard, ConvAlgorithm::winograd_default()] {
            let calibration = qnet.calibrate_abft(&calibration_images, algo).unwrap();
            assert_eq!(calibration.len(), qnet.compute_layer_count());
            for policy in [
                wgft_abft::AbftPolicy::off(),
                wgft_abft::AbftPolicy::checksum(),
                wgft_abft::AbftPolicy::range_only(),
                wgft_abft::AbftPolicy::checksum_range(),
            ] {
                let sample = &data.samples()[0];
                let mut plain_arith = ExactArithmetic::new();
                let plain = qnet.forward(&sample.image, &mut plain_arith, algo).unwrap();
                let mut arith = ExactArithmetic::new();
                let mut scratch = wgft_abft::AbftScratch::new();
                let mut events = wgft_abft::AbftEvents::new();
                let protected = qnet
                    .forward_abft(
                        &sample.image,
                        &mut arith,
                        algo,
                        &policy,
                        Some(&calibration),
                        &mut scratch,
                        &mut events,
                    )
                    .unwrap();
                assert_eq!(plain, protected, "{algo:?}: fault-free logits must agree");
                assert_eq!(events.detected, 0, "no false detections at BER 0");
                assert_eq!(events.clipped, 0, "calibrated ranges never clip clean runs");
                if policy.is_off() {
                    assert_eq!(events.overhead.total(), 0, "off policy is free");
                } else {
                    assert!(events.overhead.total() > 0, "protection is never free");
                }
            }
        }
    }

    #[test]
    fn observed_float_inference_is_bit_identical_when_unperturbed() {
        let (mut net, data, _) = trained_tiny();
        struct NullObserver;
        impl wgft_winograd::GemmObserver for NullObserver {
            fn after_gemm(
                &mut self,
                _a: &[f32],
                _b: &[f32],
                _out: &mut [f32],
                _m: usize,
                _k: usize,
                _p: usize,
            ) {
            }
        }
        let image = &data.samples()[0].image;
        let plain = net.forward_inference(image).unwrap();
        let observed = net
            .forward_inference_observed(image, &mut NullObserver)
            .unwrap();
        assert_eq!(plain.data(), observed.data());
    }

    #[test]
    fn serialization_roundtrip() {
        let (mut net, data, _) = trained_tiny();
        let calibration: Vec<Tensor> = data
            .samples()
            .iter()
            .take(2)
            .map(|s| s.image.clone())
            .collect();
        let qnet = QuantizedNetwork::from_network(
            &mut net,
            &calibration,
            QuantizerOptions::new(BitWidth::W8),
        )
        .unwrap();
        let json = serde_json::to_string(&qnet).unwrap();
        let restored: QuantizedNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(qnet, restored);
    }
}
