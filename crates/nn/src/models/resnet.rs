//! Residual network (analogue of ResNet50).

use crate::{Add, Conv2d, GlobalAvgPool, InputRef, Layer, Linear, MaxPool2, Network, Relu};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wgft_data::SyntheticSpec;

/// Append `conv 3x3 -> relu -> conv 3x3 (+ optional 1x1 projection) -> add -> relu`.
fn residual_block<R: Rng + ?Sized>(
    net: &mut Network,
    input: InputRef,
    in_c: usize,
    out_c: usize,
    size: usize,
    rng: &mut R,
) -> InputRef {
    let conv1 = net
        .push(
            Layer::Conv(Conv2d::new(in_c, out_c, size, 3, 1, rng)),
            vec![input],
        )
        .expect("topological construction");
    let relu1 = net
        .push(Layer::Relu(Relu::new()), vec![InputRef::Node(conv1)])
        .expect("topological construction");
    let conv2 = net
        .push(
            Layer::Conv(Conv2d::new(out_c, out_c, size, 3, 1, rng)),
            vec![InputRef::Node(relu1)],
        )
        .expect("topological construction");
    // Identity shortcut when the channel count matches, 1x1 projection otherwise.
    let shortcut = if in_c == out_c {
        input
    } else {
        let proj = net
            .push(
                Layer::Conv(Conv2d::new(in_c, out_c, size, 1, 0, rng)),
                vec![input],
            )
            .expect("topological construction");
        InputRef::Node(proj)
    };
    let add = net
        .push(
            Layer::Add(Add::new()),
            vec![InputRef::Node(conv2), shortcut],
        )
        .expect("topological construction");
    let relu2 = net
        .push(Layer::Relu(Relu::new()), vec![InputRef::Node(add)])
        .expect("topological construction");
    InputRef::Node(relu2)
}

/// Build the `resnet_small` network: a stem convolution followed by three
/// residual blocks (the middle one widens the channels through a projection
/// shortcut) separated by max-pooling, then global average pooling and a
/// linear classifier.
pub(super) fn build(spec: &SyntheticSpec, seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new("resnet_small");
    let mut size = spec.height;

    let stem = net
        .push(
            Layer::Conv(Conv2d::new(spec.channels, 16, size, 3, 1, &mut rng)),
            vec![InputRef::Image],
        )
        .expect("topological construction");
    let stem_relu = net
        .push(Layer::Relu(Relu::new()), vec![InputRef::Node(stem)])
        .expect("topological construction");

    let block1 = residual_block(&mut net, InputRef::Node(stem_relu), 16, 16, size, &mut rng);
    let pool1 = net
        .push(Layer::MaxPool(MaxPool2::new()), vec![block1])
        .expect("topological");
    size /= 2;

    let block2 = residual_block(&mut net, InputRef::Node(pool1), 16, 32, size, &mut rng);
    let pool2 = net
        .push(Layer::MaxPool(MaxPool2::new()), vec![block2])
        .expect("topological");
    size /= 2;

    let block3 = residual_block(&mut net, InputRef::Node(pool2), 32, 32, size, &mut rng);

    let gap = net
        .push(Layer::GlobalAvgPool(GlobalAvgPool::new()), vec![block3])
        .expect("topological construction");
    net.push(
        Layer::Linear(Linear::new(32, spec.num_classes, &mut rng)),
        vec![InputRef::Node(gap)],
    )
    .expect("topological construction");
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_contains_projection_and_identity_shortcuts() {
        let net = build(&SyntheticSpec::small(), 0);
        let adds = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Add(_)))
            .count();
        assert_eq!(adds, 3, "three residual blocks");
        let convs = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Conv(_)))
            .count();
        // stem + 2 per block + 1 projection in the widening block.
        assert_eq!(convs, 1 + 2 * 3 + 1);
        assert_eq!(net.compute_layer_count(), convs + 1);
    }
}
