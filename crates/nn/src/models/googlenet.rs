//! Inception-style network (analogue of GoogleNet).

use crate::{Concat, Conv2d, GlobalAvgPool, InputRef, Layer, Linear, MaxPool2, Network, Relu};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wgft_data::SyntheticSpec;

/// Branch widths of one inception module.
struct InceptionWidths {
    /// 1x1 branch output channels.
    b1: usize,
    /// 3x3 branch: (1x1 reduce, 3x3 output).
    b3: (usize, usize),
    /// "5x5" branch implemented as two stacked 3x3 convolutions:
    /// (1x1 reduce, output of each 3x3).
    b5: (usize, usize),
}

impl InceptionWidths {
    fn output_channels(&self) -> usize {
        self.b1 + self.b3.1 + self.b5.1
    }
}

#[allow(clippy::too_many_arguments)] // graph-construction helper mirrors the layer signature
fn conv_relu<R: Rng + ?Sized>(
    net: &mut Network,
    input: InputRef,
    in_c: usize,
    out_c: usize,
    size: usize,
    kernel: usize,
    padding: usize,
    rng: &mut R,
) -> InputRef {
    let conv = net
        .push(
            Layer::Conv(Conv2d::new(in_c, out_c, size, kernel, padding, rng)),
            vec![input],
        )
        .expect("topological construction");
    let relu = net
        .push(Layer::Relu(Relu::new()), vec![InputRef::Node(conv)])
        .expect("topological construction");
    InputRef::Node(relu)
}

/// Append an inception module: parallel 1x1, 1x1→3x3 and 1x1→3x3→3x3 branches
/// concatenated along the channel dimension. (The original 5x5 branch is
/// expressed as two 3x3 convolutions — the standard Inception-v2 refactoring —
/// so every spatial convolution can ride the winograd datapath.)
fn inception<R: Rng + ?Sized>(
    net: &mut Network,
    input: InputRef,
    in_c: usize,
    widths: &InceptionWidths,
    size: usize,
    rng: &mut R,
) -> (InputRef, usize) {
    let branch1 = conv_relu(net, input, in_c, widths.b1, size, 1, 0, rng);

    let reduce3 = conv_relu(net, input, in_c, widths.b3.0, size, 1, 0, rng);
    let branch3 = conv_relu(net, reduce3, widths.b3.0, widths.b3.1, size, 3, 1, rng);

    let reduce5 = conv_relu(net, input, in_c, widths.b5.0, size, 1, 0, rng);
    let mid5 = conv_relu(net, reduce5, widths.b5.0, widths.b5.1, size, 3, 1, rng);
    let branch5 = conv_relu(net, mid5, widths.b5.1, widths.b5.1, size, 3, 1, rng);

    let concat = net
        .push(
            Layer::Concat(Concat::new()),
            vec![branch1, branch3, branch5],
        )
        .expect("topological construction");
    (InputRef::Node(concat), widths.output_channels())
}

/// Build the `googlenet_small` network: a stem convolution with pooling, two
/// inception modules, a final pooling stage, global average pooling and a
/// linear classifier.
pub(super) fn build(spec: &SyntheticSpec, seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new("googlenet_small");
    let mut size = spec.height;

    let stem = conv_relu(
        &mut net,
        InputRef::Image,
        spec.channels,
        16,
        size,
        3,
        1,
        &mut rng,
    );
    let pool_stem = net
        .push(Layer::MaxPool(MaxPool2::new()), vec![stem])
        .expect("topological construction");
    size /= 2;

    let widths1 = InceptionWidths {
        b1: 8,
        b3: (8, 12),
        b5: (4, 4),
    };
    let (module1, c1) = inception(
        &mut net,
        InputRef::Node(pool_stem),
        16,
        &widths1,
        size,
        &mut rng,
    );

    let widths2 = InceptionWidths {
        b1: 12,
        b3: (8, 16),
        b5: (4, 4),
    };
    let (module2, c2) = inception(&mut net, module1, c1, &widths2, size, &mut rng);

    let pool_final = net
        .push(Layer::MaxPool(MaxPool2::new()), vec![module2])
        .expect("topological construction");
    let _ = size / 2;

    let gap = net
        .push(
            Layer::GlobalAvgPool(GlobalAvgPool::new()),
            vec![InputRef::Node(pool_final)],
        )
        .expect("topological construction");
    net.push(
        Layer::Linear(Linear::new(c2, spec.num_classes, &mut rng)),
        vec![InputRef::Node(gap)],
    )
    .expect("topological construction");
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_has_two_inception_modules() {
        let net = build(&SyntheticSpec::small(), 0);
        let concats = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Concat(_)))
            .count();
        assert_eq!(concats, 2);
        let convs = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Conv(_)))
            .count();
        // stem + 6 per module * 2 modules.
        assert_eq!(convs, 1 + 6 * 2);
    }

    #[test]
    fn inception_width_accounting() {
        let w = InceptionWidths {
            b1: 8,
            b3: (8, 12),
            b5: (4, 4),
        };
        assert_eq!(w.output_channels(), 24);
    }
}
