//! The model zoo: scaled-down analogues of the paper's benchmark networks.
//!
//! The paper evaluates DenseNet169 and ResNet50 on ImageNet, VGG19 on
//! CIFAR-100 and GoogleNet on CIFAR-10. Pretrained weights and those datasets
//! are not available offline, so the reproduction uses architecturally
//! faithful miniatures trained on the synthetic task of `wgft-data`
//! (see `DESIGN.md` for the substitution argument):
//!
//! | paper network | analogue | architectural trait preserved |
//! |---|---|---|
//! | VGG19      | [`ModelKind::VggSmall`]       | deep plain stack of 3x3 convolutions |
//! | ResNet50   | [`ModelKind::ResNetSmall`]    | residual blocks with identity / projection shortcuts |
//! | DenseNet169| [`ModelKind::DenseNetSmall`]  | dense concatenation blocks + 1x1 transitions |
//! | GoogleNet  | [`ModelKind::GoogLeNetSmall`] | multi-branch inception modules |
//!
//! All four keep the property the fault-tolerance results hinge on: most of
//! their arithmetic lives in 3x3 unit-stride convolutions that winograd can
//! accelerate, with a mix of layer sizes so the layer-wise analysis of
//! Figure 3 has structure to reveal.

mod densenet;
mod googlenet;
mod resnet;
mod vgg;

use crate::Network;
use serde::{Deserialize, Serialize};
use std::fmt;
use wgft_data::SyntheticSpec;

/// The benchmark network analogues available in the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Plain VGG-style stack (analogue of VGG19 @ CIFAR-100).
    VggSmall,
    /// Residual network (analogue of ResNet50 @ ImageNet).
    ResNetSmall,
    /// Densely connected network (analogue of DenseNet169 @ ImageNet).
    DenseNetSmall,
    /// Inception-style network (analogue of GoogleNet @ CIFAR-10).
    GoogLeNetSmall,
}

impl ModelKind {
    /// All four benchmark analogues, in the order the paper lists them.
    #[must_use]
    pub const fn all() -> [ModelKind; 4] {
        [
            ModelKind::DenseNetSmall,
            ModelKind::ResNetSmall,
            ModelKind::VggSmall,
            ModelKind::GoogLeNetSmall,
        ]
    }

    /// Short snake_case label (used in file names and reports).
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            ModelKind::VggSmall => "vgg_small",
            ModelKind::ResNetSmall => "resnet_small",
            ModelKind::DenseNetSmall => "densenet_small",
            ModelKind::GoogLeNetSmall => "googlenet_small",
        }
    }

    /// The paper benchmark this analogue stands in for.
    #[must_use]
    pub const fn paper_reference(&self) -> &'static str {
        match self {
            ModelKind::VggSmall => "VGG19 @ CIFAR-100",
            ModelKind::ResNetSmall => "ResNet50 @ ImageNet",
            ModelKind::DenseNetSmall => "DenseNet169 @ ImageNet",
            ModelKind::GoogLeNetSmall => "GoogleNet @ CIFAR-10",
        }
    }

    /// Build an untrained network for images shaped like `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the specification is too small for the architecture (images
    /// must be at least 8x8).
    #[must_use]
    pub fn build(&self, spec: &SyntheticSpec, seed: u64) -> Network {
        assert!(
            spec.height >= 8 && spec.width == spec.height,
            "images must be square and >= 8x8"
        );
        match self {
            ModelKind::VggSmall => vgg::build(spec, seed),
            ModelKind::ResNetSmall => resnet::build(spec, seed),
            ModelKind::DenseNetSmall => densenet::build(spec, seed),
            ModelKind::GoogLeNetSmall => googlenet::build(spec, seed),
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_tensor::Tensor;

    #[test]
    fn labels_and_references() {
        assert_eq!(ModelKind::all().len(), 4);
        for kind in ModelKind::all() {
            assert!(!kind.label().is_empty());
            assert!(!kind.paper_reference().is_empty());
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn every_model_builds_and_runs_forward() {
        let spec = SyntheticSpec::small();
        for kind in ModelKind::all() {
            let mut net = kind.build(&spec, 1);
            assert!(
                net.compute_layer_count() >= 6,
                "{kind} should have several compute layers"
            );
            let image = Tensor::zeros(spec.image_shape());
            let logits = net.forward(&image).expect("forward must succeed");
            assert_eq!(logits.len(), spec.num_classes, "{kind} logits");
        }
    }

    #[test]
    fn models_work_on_tiny_inputs_too() {
        let spec = SyntheticSpec::tiny();
        for kind in ModelKind::all() {
            let mut net = kind.build(&spec, 2);
            let image = Tensor::zeros(spec.image_shape());
            let logits = net.forward(&image).expect("forward must succeed");
            assert_eq!(logits.len(), spec.num_classes);
        }
    }

    #[test]
    fn seeds_change_initial_weights() {
        let spec = SyntheticSpec::tiny();
        let mut a = ModelKind::VggSmall.build(&spec, 1);
        let mut b = ModelKind::VggSmall.build(&spec, 2);
        let image = Tensor::full(spec.image_shape(), 0.5);
        let la = a.forward(&image).unwrap();
        let lb = b.forward(&image).unwrap();
        assert_ne!(la.data(), lb.data());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_spec_panics() {
        let spec = SyntheticSpec {
            width: 12,
            ..SyntheticSpec::small()
        };
        let _ = ModelKind::VggSmall.build(&spec, 0);
    }
}
