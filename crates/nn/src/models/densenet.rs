//! Densely connected network (analogue of DenseNet169).

use crate::{Concat, Conv2d, GlobalAvgPool, InputRef, Layer, Linear, MaxPool2, Network, Relu};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wgft_data::SyntheticSpec;

const GROWTH_RATE: usize = 8;
const LAYERS_PER_BLOCK: usize = 3;

/// Append a dense block: each inner layer convolves the concatenation of every
/// previous feature map in the block and contributes `GROWTH_RATE` channels.
fn dense_block<R: Rng + ?Sized>(
    net: &mut Network,
    input: InputRef,
    in_c: usize,
    size: usize,
    rng: &mut R,
) -> (InputRef, usize) {
    let mut features = input;
    let mut channels = in_c;
    for _ in 0..LAYERS_PER_BLOCK {
        let conv = net
            .push(
                Layer::Conv(Conv2d::new(channels, GROWTH_RATE, size, 3, 1, rng)),
                vec![features],
            )
            .expect("topological construction");
        let relu = net
            .push(Layer::Relu(Relu::new()), vec![InputRef::Node(conv)])
            .expect("topological construction");
        let concat = net
            .push(
                Layer::Concat(Concat::new()),
                vec![features, InputRef::Node(relu)],
            )
            .expect("topological construction");
        features = InputRef::Node(concat);
        channels += GROWTH_RATE;
    }
    (features, channels)
}

/// Append a transition: 1x1 convolution that roughly halves the channels,
/// followed by ReLU and 2x2 max pooling.
fn transition<R: Rng + ?Sized>(
    net: &mut Network,
    input: InputRef,
    in_c: usize,
    out_c: usize,
    size: usize,
    rng: &mut R,
) -> InputRef {
    let conv = net
        .push(
            Layer::Conv(Conv2d::new(in_c, out_c, size, 1, 0, rng)),
            vec![input],
        )
        .expect("topological construction");
    let relu = net
        .push(Layer::Relu(Relu::new()), vec![InputRef::Node(conv)])
        .expect("topological construction");
    let pool = net
        .push(Layer::MaxPool(MaxPool2::new()), vec![InputRef::Node(relu)])
        .expect("topological construction");
    InputRef::Node(pool)
}

/// Build the `densenet_small` network: a stem convolution, two dense blocks
/// separated by 1x1 transitions with pooling, global average pooling and a
/// linear classifier.
pub(super) fn build(spec: &SyntheticSpec, seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new("densenet_small");
    let mut size = spec.height;

    let stem = net
        .push(
            Layer::Conv(Conv2d::new(spec.channels, 16, size, 3, 1, &mut rng)),
            vec![InputRef::Image],
        )
        .expect("topological construction");
    let stem_relu = net
        .push(Layer::Relu(Relu::new()), vec![InputRef::Node(stem)])
        .expect("topological construction");

    let (block1, c1) = dense_block(&mut net, InputRef::Node(stem_relu), 16, size, &mut rng);
    let trans1 = transition(&mut net, block1, c1, c1 / 2, size, &mut rng);
    size /= 2;

    let (block2, c2) = dense_block(&mut net, trans1, c1 / 2, size, &mut rng);
    let trans2 = transition(&mut net, block2, c2, c2 / 2, size, &mut rng);
    let _ = size / 2;

    let gap = net
        .push(Layer::GlobalAvgPool(GlobalAvgPool::new()), vec![trans2])
        .expect("topological construction");
    net.push(
        Layer::Linear(Linear::new(c2 / 2, spec.num_classes, &mut rng)),
        vec![InputRef::Node(gap)],
    )
    .expect("topological construction");
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densenet_concatenates_growth_channels() {
        let net = build(&SyntheticSpec::small(), 0);
        let concats = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Concat(_)))
            .count();
        assert_eq!(concats, 2 * LAYERS_PER_BLOCK);
        let convs = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Conv(_)))
            .count();
        // stem + 3 per block * 2 blocks + 2 transition 1x1 convolutions.
        assert_eq!(convs, 1 + 2 * LAYERS_PER_BLOCK + 2);
    }
}
