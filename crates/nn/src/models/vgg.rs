//! VGG-style plain convolution stack (analogue of VGG19).

use crate::{Conv2d, GlobalAvgPool, InputRef, Layer, Linear, MaxPool2, Network, Relu};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use wgft_data::SyntheticSpec;

/// Build the `vgg_small` network: eight 3x3 convolutions in a plain stack with
/// two max-pooling stages, global average pooling and a linear classifier.
pub(super) fn build(spec: &SyntheticSpec, seed: u64) -> Network {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = Network::new("vgg_small");
    let mut size = spec.height;
    let mut last = InputRef::Image;
    let mut channels = spec.channels;

    let plan: &[(usize, bool)] = &[
        (12, false),
        (12, true), // pool after
        (24, false),
        (24, true), // pool after
        (32, false),
        (32, false),
        (32, false),
        (32, false),
    ];

    for &(out_c, pool_after) in plan {
        let conv = net
            .push(
                Layer::Conv(Conv2d::new(channels, out_c, size, 3, 1, &mut rng)),
                vec![last],
            )
            .expect("topological construction");
        let relu = net
            .push(Layer::Relu(Relu::new()), vec![InputRef::Node(conv)])
            .expect("topological construction");
        last = InputRef::Node(relu);
        channels = out_c;
        if pool_after && size >= 4 {
            let pool = net
                .push(Layer::MaxPool(MaxPool2::new()), vec![last])
                .expect("topological construction");
            last = InputRef::Node(pool);
            size /= 2;
        }
    }

    let gap = net
        .push(Layer::GlobalAvgPool(GlobalAvgPool::new()), vec![last])
        .expect("topological construction");
    net.push(
        Layer::Linear(Linear::new(channels, spec.num_classes, &mut rng)),
        vec![InputRef::Node(gap)],
    )
    .expect("topological construction");
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_has_eight_convolutions_and_one_classifier() {
        let net = build(&SyntheticSpec::small(), 0);
        let convs = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Conv(_)))
            .count();
        let linears = net
            .nodes()
            .iter()
            .filter(|n| matches!(n.layer, Layer::Linear(_)))
            .count();
        assert_eq!(convs, 8);
        assert_eq!(linears, 1);
        assert_eq!(net.compute_layer_count(), 9);
    }
}
