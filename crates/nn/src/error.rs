//! Error type for network construction, training and quantization.

use std::error::Error;
use std::fmt;
use wgft_fixedpoint::FixedPointError;
use wgft_tensor::TensorError;
use wgft_winograd::WinogradError;

/// Errors produced by the neural-network substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor operation failed (shape mismatch, bad index, ...).
    Tensor(TensorError),
    /// A convolution kernel rejected its configuration.
    Winograd(WinogradError),
    /// Fixed-point calibration failed.
    FixedPoint(FixedPointError),
    /// A layer received the wrong number of inputs.
    WrongInputCount {
        /// Layer description.
        layer: &'static str,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// A graph node referenced a node that does not precede it.
    InvalidGraph {
        /// The offending node index.
        node: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Backward was called before forward.
    BackwardBeforeForward,
    /// The network produced no output (empty graph).
    EmptyNetwork,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Winograd(e) => write!(f, "convolution error: {e}"),
            NnError::FixedPoint(e) => write!(f, "fixed-point error: {e}"),
            NnError::WrongInputCount {
                layer,
                expected,
                actual,
            } => {
                write!(f, "{layer} layer expected {expected} inputs, got {actual}")
            }
            NnError::InvalidGraph { node, reason } => {
                write!(f, "invalid graph at node {node}: {reason}")
            }
            NnError::BackwardBeforeForward => {
                write!(f, "backward called before forward cached the activations")
            }
            NnError::EmptyNetwork => write!(f, "the network graph has no nodes"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Winograd(e) => Some(e),
            NnError::FixedPoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<WinogradError> for NnError {
    fn from(e: WinogradError) -> Self {
        NnError::Winograd(e)
    }
}

impl From<FixedPointError> for NnError {
    fn from(e: FixedPointError) -> Self {
        NnError::FixedPoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = NnError::from(TensorError::InnerDimMismatch { left: 1, right: 2 });
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let e = NnError::WrongInputCount {
            layer: "add",
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("add"));
        assert!(e.source().is_none());
        assert!(NnError::EmptyNetwork.to_string().contains("no nodes"));
        assert!(NnError::BackwardBeforeForward
            .to_string()
            .contains("backward"));
        let e = NnError::InvalidGraph {
            node: 3,
            reason: "cycle".into(),
        };
        assert!(e.to_string().contains("node 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NnError>();
    }
}
