//! Softmax cross-entropy loss and the SGD trainer.

use crate::{Network, NnError};
use serde::{Deserialize, Serialize};
use wgft_data::{argmax, Dataset};
use wgft_tensor::{Shape, Tensor};

/// Numerically stable softmax.
#[must_use]
fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter()
        .map(|&e| e / sum.max(f32::MIN_POSITIVE))
        .collect()
}

/// Cross-entropy loss of `logits` against a target class, together with the
/// gradient with respect to the logits.
#[must_use]
pub(crate) fn cross_entropy_with_grad(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    let probs = softmax(logits);
    let p_target = probs.get(target).copied().unwrap_or(f32::MIN_POSITIVE);
    let loss = -(p_target.max(1e-12)).ln();
    let mut grad = probs;
    if target < grad.len() {
        grad[target] -= 1.0;
    }
    (loss, grad)
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Global gradient-norm clip applied per mini-batch (0 disables clipping).
    pub clip_norm: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 16,
            seed: 7,
            clip_norm: 4.0,
        }
    }
}

impl TrainConfig {
    /// A very small budget used by unit tests.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            epochs: 2,
            learning_rate: 0.08,
            batch_size: 8,
            ..Self::default()
        }
    }

    /// The deterministic CIFAR-10 recipe: seeded mini-batch SGD with momentum,
    /// sized for the small real-data splits the campaigns train on (the
    /// checked-in fixture in CI, a handful of batch files otherwise). A lower
    /// learning rate than the synthetic presets keeps the 32x32 nets stable,
    /// and the fixed shuffle seed makes retraining bit-reproducible.
    #[must_use]
    pub fn cifar10_recipe() -> Self {
        Self {
            epochs: 6,
            learning_rate: 0.03,
            batch_size: 8,
            ..Self::default()
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub final_train_accuracy: f64,
}

/// Mini-batch SGD trainer with momentum.
///
/// # Example
///
/// ```
/// use wgft_nn::{models::ModelKind, Trainer, TrainConfig};
/// use wgft_data::{Dataset, SyntheticSpec};
///
/// # fn main() -> Result<(), wgft_nn::NnError> {
/// let spec = SyntheticSpec::tiny();
/// let data = Dataset::synthetic(&spec, 4, 1);
/// let mut net = ModelKind::VggSmall.build(&spec, 42);
/// let mut trainer = Trainer::new(TrainConfig::fast());
/// let report = trainer.fit(&mut net, &data)?;
/// assert_eq!(report.epoch_losses.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    velocities: Vec<Tensor>,
}

impl Trainer {
    /// Create a trainer with the given hyper-parameters.
    #[must_use]
    pub fn new(config: TrainConfig) -> Self {
        Self {
            config,
            velocities: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Train `network` on `data`, returning per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Propagates any layer error raised during forward/backward execution.
    pub fn fit(&mut self, network: &mut Network, data: &Dataset) -> Result<TrainReport, NnError> {
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            let shuffled = data.shuffled(self.config.seed.wrapping_add(epoch as u64));
            let mut epoch_loss = 0.0f32;
            let mut sample_count = 0usize;
            for batch in shuffled.samples().chunks(self.config.batch_size.max(1)) {
                network.zero_grad();
                for sample in batch {
                    let logits = network.forward(&sample.image)?;
                    let (loss, grad) = cross_entropy_with_grad(logits.data(), sample.label);
                    epoch_loss += loss;
                    sample_count += 1;
                    let grad_t = Tensor::from_vec(Shape::d1(grad.len()), grad)?;
                    network.backward(&grad_t)?;
                }
                self.apply_update(network, batch.len())?;
            }
            epoch_losses.push(epoch_loss / sample_count.max(1) as f32);
        }
        let final_train_accuracy = evaluate(network, data)?;
        Ok(TrainReport {
            epoch_losses,
            final_train_accuracy,
        })
    }

    fn apply_update(&mut self, network: &mut Network, batch_len: usize) -> Result<(), NnError> {
        let lr = self.config.learning_rate / batch_len.max(1) as f32;
        let momentum = self.config.momentum;
        let mut params = network.params_and_grads();
        // Global gradient-norm clipping keeps the miniature models from
        // diverging on the small synthetic datasets.
        if self.config.clip_norm > 0.0 {
            let batch_scale = 1.0 / batch_len.max(1) as f32;
            let norm_sq: f32 = params
                .iter()
                .flat_map(|(_, g)| g.data().iter())
                .map(|&v| (v * batch_scale) * (v * batch_scale))
                .sum();
            let norm = norm_sq.sqrt();
            if norm > self.config.clip_norm {
                let scale = self.config.clip_norm / norm;
                for (_, grad) in &mut params {
                    grad.scale(scale);
                }
            }
        }
        if self.velocities.len() != params.len() {
            self.velocities = params
                .iter()
                .map(|(p, _)| Tensor::zeros(p.shape().clone()))
                .collect();
        }
        for ((param, grad), velocity) in params.into_iter().zip(self.velocities.iter_mut()) {
            if velocity.shape() != param.shape() {
                *velocity = Tensor::zeros(param.shape().clone());
            }
            // v = momentum * v - lr * grad ; p += v
            velocity.scale(momentum);
            velocity.axpy(-lr, grad)?;
            param.axpy(1.0, velocity)?;
        }
        Ok(())
    }
}

/// Images per [`Network::forward_inference_batch`] call when evaluating a
/// dataset: large enough to fill the batched winograd GEMMs, small enough to
/// keep per-batch activation memory modest.
pub(crate) const EVAL_BATCH: usize = 32;

/// Floating-point top-1 accuracy of `network` over `data`.
///
/// Evaluates in [`EVAL_BATCH`]-image chunks through the batched planned
/// winograd datapath — bit-identical to a per-image
/// [`Network::forward_inference`] loop, several times cheaper on the conv
/// layers.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub(crate) fn evaluate(network: &mut Network, data: &Dataset) -> Result<f64, NnError> {
    let mut correct = 0usize;
    let samples = data.samples();
    for chunk in samples.chunks(EVAL_BATCH.max(1)) {
        let images: Vec<&Tensor> = chunk.iter().map(|s| &s.image).collect();
        let logits = network.forward_inference_batch(&images)?;
        for (out, sample) in logits.iter().zip(chunk) {
            if argmax(out.data()) == sample.label {
                correct += 1;
            }
        }
    }
    Ok(correct as f64 / data.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelKind;
    use wgft_data::SyntheticSpec;

    #[test]
    fn softmax_normalizes() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (loss, grad) = cross_entropy_with_grad(&[0.3, -0.2, 1.5], 2);
        assert!(loss > 0.0);
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-5);
        // The target coordinate must have a negative gradient (pushing its
        // logit up reduces the loss).
        assert!(grad[2] < 0.0);
    }

    #[test]
    fn cross_entropy_loss_decreases_when_target_logit_grows() {
        let (l_small, _) = cross_entropy_with_grad(&[0.0, 0.0, 0.0], 1);
        let (l_big, _) = cross_entropy_with_grad(&[0.0, 5.0, 0.0], 1);
        assert!(l_big < l_small);
    }

    #[test]
    fn training_reduces_loss_on_a_tiny_task() {
        let spec = SyntheticSpec::tiny();
        let data = Dataset::synthetic(&spec, 8, 3);
        let mut net = ModelKind::VggSmall.build(&spec, 11);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 3,
            seed: 5,
            ..TrainConfig::fast()
        });
        let report = trainer.fit(&mut net, &data).unwrap();
        assert_eq!(report.epoch_losses.len(), 3);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first,
            "loss should decrease over epochs: first {first}, last {last}"
        );
        assert!(report.final_train_accuracy > 1.0 / spec.num_classes as f64);
        assert_eq!(trainer.config().epochs, 3);
    }

    #[test]
    fn default_and_fast_configs_are_sane() {
        let d = TrainConfig::default();
        assert!(d.epochs >= 1 && d.learning_rate > 0.0 && d.batch_size >= 1);
        let f = TrainConfig::fast();
        assert!(f.epochs <= d.epochs);
    }
}
