//! The network graph: nodes, layers and the forward/backward executor.

use crate::{Add, Concat, Conv2d, GlobalAvgPool, Linear, MaxPool2, NnError, Relu};
use serde::{Deserialize, Serialize};
use wgft_tensor::{Shape, Tensor};

/// Where a node reads its input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputRef {
    /// The network's input image.
    Image,
    /// The output of an earlier node.
    Node(usize),
}

/// One layer of the floating-point training graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Layer {
    /// 2-D convolution.
    Conv(Conv2d),
    /// Fully-connected layer.
    Linear(Linear),
    /// ReLU activation.
    Relu(Relu),
    /// 2x2 max pooling.
    MaxPool(MaxPool2),
    /// Global average pooling.
    GlobalAvgPool(GlobalAvgPool),
    /// Residual addition of two inputs.
    Add(Add),
    /// Channel concatenation of several inputs.
    Concat(Concat),
}

impl Layer {
    /// Short label used in diagnostics and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Layer::Conv(_) => "conv",
            Layer::Linear(_) => "linear",
            Layer::Relu(_) => "relu",
            Layer::MaxPool(_) => "maxpool",
            Layer::GlobalAvgPool(_) => "gap",
            Layer::Add(_) => "add",
            Layer::Concat(_) => "concat",
        }
    }

    /// Whether this layer carries trainable parameters executed as
    /// multiply-accumulate work (convolution or fully-connected) — these are
    /// the "layers" of the paper's layer-wise fault analysis.
    #[must_use]
    pub fn is_compute_layer(&self) -> bool {
        matches!(self, Layer::Conv(_) | Layer::Linear(_))
    }

    fn forward(&mut self, inputs: &[&Tensor]) -> Result<Tensor, NnError> {
        let single = |inputs: &[&Tensor], label: &'static str| -> Result<(), NnError> {
            if inputs.len() != 1 {
                return Err(NnError::WrongInputCount {
                    layer: label,
                    expected: 1,
                    actual: inputs.len(),
                });
            }
            Ok(())
        };
        match self {
            Layer::Conv(layer) => {
                single(inputs, "conv")?;
                layer.forward(inputs[0])
            }
            other => other.forward_common(inputs, single),
        }
    }

    /// Inference-only forward: convolution layers go through their planned
    /// winograd datapath ([`Conv2d::forward_planned`]); everything else is
    /// identical to [`Layer::forward`].
    fn forward_inference(&mut self, inputs: &[&Tensor]) -> Result<Tensor, NnError> {
        let single = |inputs: &[&Tensor], label: &'static str| -> Result<(), NnError> {
            if inputs.len() != 1 {
                return Err(NnError::WrongInputCount {
                    layer: label,
                    expected: 1,
                    actual: inputs.len(),
                });
            }
            Ok(())
        };
        match self {
            Layer::Conv(layer) => {
                single(inputs, "conv")?;
                layer.forward_planned(inputs[0])
            }
            other => other.forward_common(inputs, single),
        }
    }

    /// The non-convolution part of the forward dispatch, shared between the
    /// training and inference paths.
    fn forward_common(
        &mut self,
        inputs: &[&Tensor],
        single: impl Fn(&[&Tensor], &'static str) -> Result<(), NnError>,
    ) -> Result<Tensor, NnError> {
        match self {
            Layer::Conv(_) => unreachable!("conv handled by the caller"),
            Layer::Linear(layer) => {
                single(inputs, "linear")?;
                layer.forward(inputs[0])
            }
            Layer::Relu(layer) => {
                single(inputs, "relu")?;
                Ok(layer.forward(inputs[0]))
            }
            Layer::MaxPool(layer) => {
                single(inputs, "maxpool")?;
                layer.forward(inputs[0])
            }
            Layer::GlobalAvgPool(layer) => {
                single(inputs, "gap")?;
                layer.forward(inputs[0])
            }
            Layer::Add(layer) => layer.forward(inputs),
            Layer::Concat(layer) => layer.forward(inputs),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Vec<Tensor>, NnError> {
        match self {
            Layer::Conv(layer) => Ok(vec![layer.backward(grad_out)?]),
            Layer::Linear(layer) => Ok(vec![layer.backward(grad_out)?]),
            Layer::Relu(layer) => Ok(vec![layer.backward(grad_out)?]),
            Layer::MaxPool(layer) => Ok(vec![layer.backward(grad_out)?]),
            Layer::GlobalAvgPool(layer) => Ok(vec![layer.backward(grad_out)?]),
            Layer::Add(layer) => Ok(layer.backward(grad_out)),
            Layer::Concat(layer) => layer.backward(grad_out),
        }
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        match self {
            Layer::Conv(layer) => layer.params_and_grads(),
            Layer::Linear(layer) => layer.params_and_grads(),
            _ => Vec::new(),
        }
    }

    fn zero_grad(&mut self) {
        match self {
            Layer::Conv(layer) => layer.zero_grad(),
            Layer::Linear(layer) => layer.zero_grad(),
            _ => {}
        }
    }
}

/// Resolve one input of a batched forward pass to image `img`'s tensor.
fn resolve_batch_input<'a, T: AsRef<Tensor>>(
    images: &'a [T],
    activations: &'a [Option<Vec<Tensor>>],
    r: &InputRef,
    img: usize,
    node: usize,
) -> Result<&'a Tensor, NnError> {
    match r {
        InputRef::Image => Ok(images[img].as_ref()),
        InputRef::Node(src) => activations[*src]
            .as_ref()
            .and_then(|per_image| per_image.get(img))
            .ok_or(NnError::InvalidGraph {
                node,
                reason: format!("input node {src} produced no activation"),
            }),
    }
}

/// A node of the graph: a layer plus where it reads its inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The layer executed by this node.
    pub layer: Layer,
    /// The inputs the layer consumes, in order.
    pub inputs: Vec<InputRef>,
}

/// A feed-forward network expressed as a topologically ordered graph.
///
/// Nodes may only reference earlier nodes (or the input image), which makes
/// forward execution a single pass over the node list and backward execution a
/// single reverse pass.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    name: String,
}

impl Network {
    /// An empty network with a descriptive name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            nodes: Vec::new(),
            name: name.into(),
        }
    }

    /// The network's name (e.g. `"vgg_small"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a node and return its index.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if the node references itself or a
    /// later node.
    pub fn push(&mut self, layer: Layer, inputs: Vec<InputRef>) -> Result<usize, NnError> {
        let idx = self.nodes.len();
        for input in &inputs {
            if let InputRef::Node(n) = input {
                if *n >= idx {
                    return Err(NnError::InvalidGraph {
                        node: idx,
                        reason: format!("input {n} does not precede the node"),
                    });
                }
            }
        }
        self.nodes.push(Node { layer, inputs });
        Ok(idx)
    }

    /// The nodes in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Select the winograd tile variant every convolution layer prepares on
    /// its planned inference paths (see [`Conv2d::set_winograd_variant`]).
    /// Cached plans for a different variant are dropped and rebuilt lazily.
    pub fn set_winograd_variant(&mut self, variant: wgft_winograd::WinogradVariant) {
        for node in &mut self.nodes {
            if let Layer::Conv(conv) = &mut node.layer {
                conv.set_winograd_variant(variant);
            }
        }
    }

    /// Number of convolution / fully-connected layers (the paper's "layers").
    #[must_use]
    pub fn compute_layer_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.layer.is_compute_layer())
            .count()
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&mut self) -> usize {
        self.nodes
            .iter_mut()
            .flat_map(|n| n.layer.params_and_grads())
            .map(|(p, _)| p.len())
            .sum()
    }

    /// Forward pass on a single `(1, C, H, W)` image; returns the final node's
    /// output (the logits for the model-zoo classifiers).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for an empty graph or any layer error.
    pub fn forward(&mut self, image: &Tensor) -> Result<Tensor, NnError> {
        Ok(self
            .forward_trace(image)?
            .pop()
            .expect("trace of a non-empty network"))
    }

    /// Forward pass that returns the output of *every* node in order.
    ///
    /// Used by the quantizer to calibrate per-layer activation ranges and by
    /// diagnostic tooling.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for an empty graph or any layer error.
    pub fn forward_trace(&mut self, image: &Tensor) -> Result<Vec<Tensor>, NnError> {
        self.trace_internal(image, false, None)
    }

    /// Inference-only forward pass: winograd-eligible convolution layers
    /// execute through their cached [`wgft_winograd::PreparedConvF32`] plans
    /// (transforms paid once per network, not once per image), and no layer
    /// caches activations for a backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for an empty graph or any layer error.
    pub fn forward_inference(&mut self, image: &Tensor) -> Result<Tensor, NnError> {
        Ok(self
            .trace_internal(image, true, None)?
            .pop()
            .expect("trace of a non-empty network"))
    }

    /// Inference-only forward pass with a [`wgft_winograd::GemmObserver`]
    /// attached to every winograd-eligible convolution's GEMMs.
    ///
    /// This is how the fast float path is attacked and protected: a
    /// `wgft_faultsim::GemmFaultInjector` (wrapped in `wgft-abft`'s checksum
    /// guard) sees each GEMM product right after it is produced. With an
    /// observer that leaves the products untouched the result is
    /// bit-identical to [`Network::forward_inference`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for an empty graph or any layer
    /// error.
    pub fn forward_inference_observed(
        &mut self,
        image: &Tensor,
        obs: &mut dyn wgft_winograd::GemmObserver,
    ) -> Result<Tensor, NnError> {
        Ok(self
            .trace_internal(image, true, Some(obs))?
            .pop()
            .expect("trace of a non-empty network"))
    }

    /// Inference-only forward pass over a batch of images.
    ///
    /// Convolution layers execute through their batched winograd datapath
    /// ([`Conv2d::forward_planned_batch`]) with the whole batch folded into
    /// one scatter–GEMM–gather schedule; every other layer is applied
    /// per-image. Returns one logits tensor per input image, bit-identical to
    /// calling [`Network::forward_inference`] on each image in turn.
    ///
    /// In debug builds a winograd-eligible convolution that fails to advance
    /// its batched-kernel counter (i.e. silently degrades to per-image
    /// execution) panics.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for an empty graph or any layer
    /// error.
    pub fn forward_inference_batch<T: AsRef<Tensor>>(
        &mut self,
        images: &[T],
    ) -> Result<Vec<Tensor>, NnError> {
        if self.nodes.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        if images.is_empty() {
            return Ok(Vec::new());
        }
        let n = images.len();
        // Free each node's per-image activations once its last consumer ran.
        let mut last_use = vec![usize::MAX; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            for r in &node.inputs {
                if let InputRef::Node(src) = r {
                    last_use[*src] = idx;
                }
            }
        }
        let mut activations: Vec<Option<Vec<Tensor>>> = vec![None; self.nodes.len()];
        for idx in 0..self.nodes.len() {
            let input_ids: Vec<InputRef> = self.nodes[idx].inputs.clone();
            let out: Vec<Tensor> = match &mut self.nodes[idx].layer {
                Layer::Conv(conv) => {
                    if input_ids.len() != 1 {
                        return Err(NnError::WrongInputCount {
                            layer: "conv",
                            expected: 1,
                            actual: input_ids.len(),
                        });
                    }
                    // Stack the per-image inputs into one (N, C, H, W) batch.
                    let first = resolve_batch_input(images, &activations, &input_ids[0], 0, idx)?;
                    let dims = first.shape().dims().to_vec();
                    let mut stacked = Vec::with_capacity(n * first.len());
                    stacked.extend_from_slice(first.data());
                    for img in 1..n {
                        let t = resolve_batch_input(images, &activations, &input_ids[0], img, idx)?;
                        stacked.extend_from_slice(t.data());
                    }
                    let batched_in =
                        Tensor::from_vec(Shape::nchw(n, dims[1], dims[2], dims[3]), stacked)?;
                    let kernel_runs_before = conv.batched_kernel_executions();
                    let batched_out = conv.forward_planned_batch(&batched_in)?;
                    debug_assert!(
                        !conv.conv_shape().geometry.is_unit_stride_3x3()
                            || conv.batched_kernel_executions() > kernel_runs_before,
                        "winograd-eligible conv fell back to per-image execution \
                         inside the batched inference path"
                    );
                    let odims = batched_out.shape().dims().to_vec();
                    let per_out = odims[1] * odims[2] * odims[3];
                    (0..n)
                        .map(|img| {
                            Tensor::from_vec(
                                Shape::nchw(1, odims[1], odims[2], odims[3]),
                                batched_out.data()[img * per_out..(img + 1) * per_out].to_vec(),
                            )
                            .map_err(NnError::from)
                        })
                        .collect::<Result<Vec<Tensor>, NnError>>()?
                }
                other => {
                    let mut outs = Vec::with_capacity(n);
                    for img in 0..n {
                        let refs: Vec<&Tensor> = input_ids
                            .iter()
                            .map(|r| resolve_batch_input(images, &activations, r, img, idx))
                            .collect::<Result<_, _>>()?;
                        outs.push(other.forward_inference(&refs)?);
                    }
                    outs
                }
            };
            for r in &input_ids {
                if let InputRef::Node(src) = r {
                    if last_use[*src] == idx {
                        activations[*src] = None;
                    }
                }
            }
            activations[idx] = Some(out);
        }
        Ok(activations.pop().flatten().expect("final node executed"))
    }

    fn trace_internal(
        &mut self,
        image: &Tensor,
        planned: bool,
        mut obs: Option<&mut dyn wgft_winograd::GemmObserver>,
    ) -> Result<Vec<Tensor>, NnError> {
        if self.nodes.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        // For the inference path, free each activation as soon as its last
        // consumer has executed — a full trace is only kept when requested.
        let mut last_use = vec![usize::MAX; self.nodes.len()];
        if planned {
            for (idx, node) in self.nodes.iter().enumerate() {
                for r in &node.inputs {
                    if let InputRef::Node(n) = r {
                        last_use[*n] = idx;
                    }
                }
            }
        }
        let mut activations: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for idx in 0..self.nodes.len() {
            // Borrow input tensors in place (the per-node input list is
            // copied out so `activations` and the layer can be borrowed
            // simultaneously).
            let input_ids: Vec<InputRef> = self.nodes[idx].inputs.clone();
            let input_refs: Vec<&Tensor> = input_ids
                .iter()
                .map(|r| match r {
                    InputRef::Image => Ok(image),
                    InputRef::Node(n) => activations[*n].as_ref().ok_or(NnError::InvalidGraph {
                        node: idx,
                        reason: format!("input node {n} produced no activation"),
                    }),
                })
                .collect::<Result<_, _>>()?;
            let layer = &mut self.nodes[idx].layer;
            let out = if planned {
                // Observed inference routes convolutions through the
                // GEMM-hook entry point; everything else is unchanged.
                match (layer, obs.as_deref_mut()) {
                    (Layer::Conv(conv), Some(observer)) => {
                        if input_refs.len() != 1 {
                            return Err(NnError::WrongInputCount {
                                layer: "conv",
                                expected: 1,
                                actual: input_refs.len(),
                            });
                        }
                        conv.forward_planned_observed(input_refs[0], observer)?
                    }
                    (layer, _) => layer.forward_inference(&input_refs)?,
                }
            } else {
                layer.forward(&input_refs)?
            };
            drop(input_refs);
            if planned {
                for r in &input_ids {
                    if let InputRef::Node(n) = r {
                        if last_use[*n] == idx {
                            activations[*n] = None;
                        }
                    }
                }
            }
            activations[idx] = Some(out);
        }
        if planned {
            // Only the final activation is guaranteed to survive.
            return Ok(vec![activations
                .pop()
                .flatten()
                .expect("final node executed")]);
        }
        Ok(activations
            .into_iter()
            .map(|a| a.expect("every node executed"))
            .collect())
    }

    /// Backward pass from a gradient on the final node's output. Parameter
    /// gradients accumulate inside the layers; call [`Network::zero_grad`]
    /// between mini-batches.
    ///
    /// # Errors
    ///
    /// Returns an error if any layer's backward pass fails (e.g. forward was
    /// not run first).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<(), NnError> {
        if self.nodes.is_empty() {
            return Err(NnError::EmptyNetwork);
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[self.nodes.len() - 1] = Some(grad_output.clone());
        for idx in (0..self.nodes.len()).rev() {
            let Some(grad_out) = grads[idx].take() else {
                continue;
            };
            let input_grads = self.nodes[idx].layer.backward(&grad_out)?;
            for (input_ref, grad) in self.nodes[idx].inputs.clone().iter().zip(input_grads) {
                if let InputRef::Node(n) = input_ref {
                    grads[*n] = Some(match grads[*n].take() {
                        None => grad,
                        Some(existing) => existing.add(&grad)?,
                    });
                }
            }
        }
        Ok(())
    }

    /// All parameters and their gradients (for the optimizer).
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.nodes
            .iter_mut()
            .flat_map(|n| n.layer.params_and_grads())
            .collect()
    }

    /// Reset every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for node in &mut self.nodes {
            node.layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use wgft_tensor::Shape;

    /// conv -> relu -> gap -> linear on a 1x4x4 input.
    fn tiny_network(seed: u64) -> Network {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Network::new("tiny");
        let conv = net
            .push(
                Layer::Conv(Conv2d::new(1, 3, 4, 3, 1, &mut rng)),
                vec![InputRef::Image],
            )
            .unwrap();
        let relu = net
            .push(Layer::Relu(Relu::new()), vec![InputRef::Node(conv)])
            .unwrap();
        let gap = net
            .push(
                Layer::GlobalAvgPool(GlobalAvgPool::new()),
                vec![InputRef::Node(relu)],
            )
            .unwrap();
        net.push(
            Layer::Linear(Linear::new(3, 2, &mut rng)),
            vec![InputRef::Node(gap)],
        )
        .unwrap();
        net
    }

    #[test]
    fn push_rejects_forward_references() {
        let mut net = Network::new("bad");
        let err = net.push(Layer::Relu(Relu::new()), vec![InputRef::Node(5)]);
        assert!(matches!(err, Err(NnError::InvalidGraph { .. })));
    }

    #[test]
    fn forward_produces_logits() {
        let mut net = tiny_network(1);
        assert_eq!(net.len(), 4);
        assert!(!net.is_empty());
        assert_eq!(net.compute_layer_count(), 2);
        assert!(net.parameter_count() > 0);
        assert_eq!(net.name(), "tiny");
        let image = Tensor::full(Shape::nchw(1, 1, 4, 4), 0.3);
        let logits = net.forward(&image).unwrap();
        assert_eq!(logits.shape(), &Shape::d1(2));
    }

    #[test]
    fn empty_network_errors() {
        let mut net = Network::new("empty");
        assert!(matches!(
            net.forward(&Tensor::zeros(Shape::d1(1))),
            Err(NnError::EmptyNetwork)
        ));
        assert!(matches!(
            net.backward(&Tensor::zeros(Shape::d1(1))),
            Err(NnError::EmptyNetwork)
        ));
    }

    #[test]
    fn backward_fills_parameter_gradients() {
        let mut net = tiny_network(2);
        let image = Tensor::full(Shape::nchw(1, 1, 4, 4), 0.5);
        let logits = net.forward(&image).unwrap();
        let grad = Tensor::full(logits.shape().clone(), 1.0);
        net.backward(&grad).unwrap();
        let any_nonzero = net
            .params_and_grads()
            .iter()
            .any(|(_, g)| g.max_abs() > 0.0);
        assert!(
            any_nonzero,
            "at least one parameter gradient must be non-zero"
        );
        net.zero_grad();
        let all_zero = net
            .params_and_grads()
            .iter()
            .all(|(_, g)| g.max_abs() == 0.0);
        assert!(all_zero);
    }

    #[test]
    fn residual_and_concat_graphs_execute() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut net = Network::new("residual");
        let conv1 = net
            .push(
                Layer::Conv(Conv2d::new(1, 4, 4, 3, 1, &mut rng)),
                vec![InputRef::Image],
            )
            .unwrap();
        let conv2 = net
            .push(
                Layer::Conv(Conv2d::new(4, 4, 4, 3, 1, &mut rng)),
                vec![InputRef::Node(conv1)],
            )
            .unwrap();
        let add = net
            .push(
                Layer::Add(Add::new()),
                vec![InputRef::Node(conv1), InputRef::Node(conv2)],
            )
            .unwrap();
        let cat = net
            .push(
                Layer::Concat(Concat::new()),
                vec![InputRef::Node(add), InputRef::Node(conv1)],
            )
            .unwrap();
        let gap = net
            .push(
                Layer::GlobalAvgPool(GlobalAvgPool::new()),
                vec![InputRef::Node(cat)],
            )
            .unwrap();
        net.push(
            Layer::Linear(Linear::new(8, 3, &mut rng)),
            vec![InputRef::Node(gap)],
        )
        .unwrap();

        let image = Tensor::full(Shape::nchw(1, 1, 4, 4), 0.2);
        let logits = net.forward(&image).unwrap();
        assert_eq!(logits.len(), 3);
        net.backward(&Tensor::full(Shape::d1(3), 1.0)).unwrap();
        // conv1 feeds three consumers; its gradient accumulates from all of them.
        let grads_nonzero = net
            .params_and_grads()
            .iter()
            .filter(|(_, g)| g.max_abs() > 0.0)
            .count();
        assert!(grads_nonzero >= 4);
    }

    #[test]
    fn layer_labels() {
        assert_eq!(Layer::Relu(Relu::new()).label(), "relu");
        assert_eq!(Layer::Add(Add::new()).label(), "add");
        assert_eq!(Layer::Concat(Concat::new()).label(), "concat");
        assert_eq!(Layer::MaxPool(MaxPool2::new()).label(), "maxpool");
        assert_eq!(Layer::GlobalAvgPool(GlobalAvgPool::new()).label(), "gap");
        assert!(!Layer::Relu(Relu::new()).is_compute_layer());
    }

    #[test]
    fn forward_inference_matches_training_forward() {
        let mut net = tiny_network(4);
        let image = Tensor::full(Shape::nchw(1, 1, 4, 4), 0.3);
        let trained_path = net.forward(&image).unwrap();
        let planned_path = net.forward_inference(&image).unwrap();
        assert_eq!(trained_path.shape(), planned_path.shape());
        for (a, b) in trained_path.data().iter().zip(planned_path.data()) {
            assert!(
                (a - b).abs() < 1e-3,
                "training {a} vs planned inference {b}"
            );
        }
    }

    /// Batched inference must agree bit-for-bit with per-image inference,
    /// across plain stacks and graphs with residual/concat joins, for N=1
    /// and ragged batch sizes.
    #[test]
    fn forward_inference_batch_matches_per_image_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut residual = Network::new("residual");
        let conv1 = residual
            .push(
                Layer::Conv(Conv2d::new(1, 4, 6, 3, 1, &mut rng)),
                vec![InputRef::Image],
            )
            .unwrap();
        let conv2 = residual
            .push(
                Layer::Conv(Conv2d::new(4, 4, 6, 3, 1, &mut rng)),
                vec![InputRef::Node(conv1)],
            )
            .unwrap();
        let add = residual
            .push(
                Layer::Add(Add::new()),
                vec![InputRef::Node(conv1), InputRef::Node(conv2)],
            )
            .unwrap();
        let gap = residual
            .push(
                Layer::GlobalAvgPool(GlobalAvgPool::new()),
                vec![InputRef::Node(add)],
            )
            .unwrap();
        residual
            .push(
                Layer::Linear(Linear::new(4, 3, &mut rng)),
                vec![InputRef::Node(gap)],
            )
            .unwrap();

        for net in [&mut tiny_network(7), &mut residual] {
            for n in [1usize, 2, 5] {
                let image_size = if net.name() == "tiny" { 4 } else { 6 };
                let images: Vec<Tensor> = (0..n)
                    .map(|_| {
                        Tensor::uniform(Shape::nchw(1, 1, image_size, image_size), 1.0, &mut rng)
                    })
                    .collect();
                let batched = net.forward_inference_batch(&images).unwrap();
                assert_eq!(batched.len(), n);
                for (img, image) in images.iter().enumerate() {
                    let single = net.forward_inference(image).unwrap();
                    assert_eq!(
                        single.data(),
                        batched[img].data(),
                        "{} n{n} image {img}",
                        net.name()
                    );
                }
            }
        }
    }

    #[test]
    fn forward_inference_batch_edge_cases() {
        let mut net = tiny_network(9);
        let no_images: &[Tensor] = &[];
        assert!(net.forward_inference_batch(no_images).unwrap().is_empty());
        let mut empty = Network::new("empty");
        assert!(matches!(
            empty.forward_inference_batch(&[Tensor::zeros(Shape::nchw(1, 1, 4, 4))]),
            Err(NnError::EmptyNetwork)
        ));
    }

    #[test]
    fn network_serializes_weights() {
        let mut net = tiny_network(4);
        let image = Tensor::full(Shape::nchw(1, 1, 4, 4), 0.1);
        let logits_before = net.forward(&image).unwrap();
        let json = serde_json::to_string(&net).unwrap();
        let mut restored: Network = serde_json::from_str(&json).unwrap();
        let logits_after = restored.forward(&image).unwrap();
        for (a, b) in logits_before.data().iter().zip(logits_after.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
