//! Floating-point 2-D convolution layer with backward pass.

use crate::NnError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wgft_tensor::{ConvGeometry, Shape, Tensor, TensorError};
use wgft_winograd::{direct_conv_f32, ConvShape, PreparedConvF32, WinogradError, WinogradVariant};

/// A 2-D convolution layer (square kernel, cross-correlation convention) for
/// the floating-point training path.
///
/// Works on single-image batches shaped `(1, C, H, W)`; the trainer
/// accumulates gradients across the samples of a mini-batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    shape: ConvShape,
    weights: Tensor,
    bias: Tensor,
    #[serde(skip)]
    cached_input: Option<Tensor>,
    #[serde(skip, default = "empty_tensor")]
    grad_weights: Tensor,
    #[serde(skip, default = "empty_tensor")]
    grad_bias: Tensor,
    /// Planned winograd execution for the *current* weights; rebuilt lazily by
    /// [`Conv2d::forward_planned`] and dropped whenever the optimizer gets
    /// mutable access to the weights.
    #[serde(skip)]
    prepared: Option<PreparedConvF32>,
    /// Winograd tile variant the planned inference paths prepare for
    /// 3x3 unit-stride geometry. Serialized only when non-default so
    /// checkpoints written before the knob existed (and ones using the
    /// default) stay byte-identical.
    #[serde(default, skip_serializing_if = "variant_is_default")]
    winograd_variant: WinogradVariant,
}

/// Skip-serializing predicate: the default F(2x2,3x3) variant is left
/// implicit in checkpoints.
fn variant_is_default(v: &WinogradVariant) -> bool {
    *v == WinogradVariant::default()
}

/// Placeholder used when deserializing a layer (gradients are rebuilt lazily).
pub(crate) fn empty_tensor() -> Tensor {
    Tensor::zeros(Shape::d1(0))
}

impl Conv2d {
    /// Create a convolution layer with He-uniform initial weights.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        in_size: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let geometry = ConvGeometry::square(in_size, kernel, 1, padding);
        let shape = ConvShape::new(in_channels, out_channels, geometry);
        let fan_in = in_channels * kernel * kernel;
        let weights = Tensor::he_uniform(
            Shape::new(vec![out_channels, in_channels, kernel, kernel]),
            fan_in,
            rng,
        );
        let bias = Tensor::zeros(Shape::d1(out_channels));
        Self {
            shape,
            grad_weights: Tensor::zeros(weights.shape().clone()),
            grad_bias: Tensor::zeros(bias.shape().clone()),
            weights,
            bias,
            cached_input: None,
            prepared: None,
            winograd_variant: WinogradVariant::default(),
        }
    }

    /// The winograd tile variant the planned paths will prepare.
    #[must_use]
    pub fn winograd_variant(&self) -> WinogradVariant {
        self.winograd_variant
    }

    /// Select the winograd tile variant for the planned inference paths.
    ///
    /// Dropping any cached plan, so the next planned forward rebuilds with
    /// the new tile size. Direct (non-3x3) geometry ignores the knob.
    pub fn set_winograd_variant(&mut self, variant: WinogradVariant) {
        if self.winograd_variant != variant {
            self.winograd_variant = variant;
            self.prepared = None;
        }
    }

    /// The layer's convolution shape (channels and spatial geometry).
    #[must_use]
    pub fn conv_shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Weight tensor, laid out `(out_channels, in_channels, k, k)`.
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Per-output-channel bias.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Spatial size of the produced feature map.
    #[must_use]
    pub fn output_size(&self) -> usize {
        self.shape.geometry.out_h()
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.shape.out_channels
    }

    /// Forward pass on a `(1, C, H, W)` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input shape does not match the layer.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let out = direct_conv_f32(input.data(), self.weights.data(), &self.shape)?;
        let out_t = self.finish_output(out)?;
        self.cached_input = Some(input.clone());
        Ok(out_t)
    }

    /// Inference-only forward pass through the planned winograd datapath.
    ///
    /// Winograd-eligible layers (3x3, unit stride) execute through a cached
    /// [`PreparedConvF32`] so the weight transform is paid once per layer, not
    /// once per image; other geometries fall back to direct convolution. The
    /// plan is invalidated whenever the optimizer takes mutable access to the
    /// weights, so it is always consistent with the current parameters.
    ///
    /// Unlike [`Conv2d::forward`] this does not cache the input for a
    /// backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input shape does not match the layer.
    pub fn forward_planned(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if !self.shape.geometry.is_unit_stride_3x3() {
            let out = direct_conv_f32(input.data(), self.weights.data(), &self.shape)?;
            return self.finish_output(out);
        }
        if self.prepared.is_none() {
            self.prepared = Some(PreparedConvF32::new(
                self.weights.data(),
                &self.shape,
                self.winograd_variant,
            )?);
        }
        let prepared = self.prepared.as_mut().expect("prepared plan built above");
        let out = prepared.execute(input.data())?;
        self.finish_output(out)
    }

    /// [`Conv2d::forward_planned`] with a [`wgft_winograd::GemmObserver`]
    /// attached to every winograd-coordinate GEMM — the fault-injection /
    /// ABFT hook of the fast float path. Non-winograd geometries fall back
    /// to direct convolution with no observation points (they run no GEMM).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input shape does not match the layer.
    pub fn forward_planned_observed(
        &mut self,
        input: &Tensor,
        obs: &mut dyn wgft_winograd::GemmObserver,
    ) -> Result<Tensor, NnError> {
        if !self.shape.geometry.is_unit_stride_3x3() {
            let out = direct_conv_f32(input.data(), self.weights.data(), &self.shape)?;
            return self.finish_output(out);
        }
        if self.prepared.is_none() {
            self.prepared = Some(PreparedConvF32::new(
                self.weights.data(),
                &self.shape,
                self.winograd_variant,
            )?);
        }
        let prepared = self.prepared.as_mut().expect("prepared plan built above");
        let mut out = vec![0.0f32; self.shape.output_len()];
        prepared.execute_observed(input.data(), &mut out, obs)?;
        self.finish_output(out)
    }

    /// Inference-only forward pass on a whole `(N, C, H, W)` batch.
    ///
    /// Winograd-eligible layers run the batch through
    /// [`PreparedConvF32::execute_batch_into`], folding all `N·P` tiles into
    /// the GEMM free dimension so the weight transform and block scheduling
    /// are paid once per batch instead of once per image; other geometries
    /// fall back to per-image direct convolution. The result is bit-identical
    /// to `N` [`Conv2d::forward_planned`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input is not a 4-D batch matching the
    /// layer's geometry.
    pub fn forward_planned_batch(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: dims.len(),
            }));
        }
        let n = dims[0];
        let g = &self.shape.geometry;
        let (out_h, out_w) = (g.out_h(), g.out_w());
        let out_len = self.shape.output_len();
        let in_len = self.shape.input_len();
        // Validate before either path slices: the per-image volume must be
        // exactly the layer's input plane set.
        if dims[1] * dims[2] * dims[3] != in_len {
            return Err(NnError::Winograd(WinogradError::BufferSizeMismatch {
                what: "batched input image",
                expected: in_len,
                actual: dims[1] * dims[2] * dims[3],
            }));
        }
        if !g.is_unit_stride_3x3() {
            // Non-winograd geometry: per-image direct convolution. This is an
            // *announced* fallback — the layer's batched-kernel counter does
            // not advance, which is what the silent-fallback guard checks.
            let mut out = vec![0.0f32; n * out_len];
            for img in 0..n {
                let per = direct_conv_f32(
                    &input.data()[img * in_len..(img + 1) * in_len],
                    self.weights.data(),
                    &self.shape,
                )?;
                out[img * out_len..(img + 1) * out_len].copy_from_slice(&per);
            }
            let mut out_t =
                Tensor::from_vec(Shape::nchw(n, self.shape.out_channels, out_h, out_w), out)?;
            self.add_bias_batch(&mut out_t, n);
            return Ok(out_t);
        }
        if self.prepared.is_none() {
            self.prepared = Some(PreparedConvF32::new(
                self.weights.data(),
                &self.shape,
                self.winograd_variant,
            )?);
        }
        let prepared = self.prepared.as_mut().expect("prepared plan built above");
        let mut out_t = Tensor::zeros(Shape::nchw(n, self.shape.out_channels, out_h, out_w));
        prepared.execute_batch_into(input.data(), n, out_t.data_mut())?;
        self.add_bias_batch(&mut out_t, n);
        Ok(out_t)
    }

    /// How many times this layer's winograd plan has executed through the
    /// batched engine. Zero until a [`Conv2d::forward_planned_batch`] call
    /// reaches [`PreparedConvF32::execute_batch_into`]; the batched
    /// inference path asserts on the delta to catch a silent fallback to
    /// per-image execution.
    #[must_use]
    pub fn batched_kernel_executions(&self) -> u64 {
        self.prepared
            .as_ref()
            .map_or(0, PreparedConvF32::batched_executions)
    }

    /// Wrap a raw conv output in a tensor and add the per-channel bias.
    fn finish_output(&self, out: Vec<f32>) -> Result<Tensor, NnError> {
        let g = &self.shape.geometry;
        let (out_h, out_w) = (g.out_h(), g.out_w());
        let mut out_t =
            Tensor::from_vec(Shape::nchw(1, self.shape.out_channels, out_h, out_w), out)?;
        self.add_bias_batch(&mut out_t, 1);
        Ok(out_t)
    }

    /// Add the per-channel bias to every image of a `(N, O, H', W')` buffer.
    fn add_bias_batch(&self, out_t: &mut Tensor, n: usize) {
        let g = &self.shape.geometry;
        let pixels = g.out_h() * g.out_w();
        let out_len = self.shape.out_channels * pixels;
        for img in 0..n {
            for oc in 0..self.shape.out_channels {
                let b = self.bias.data()[oc];
                let base = img * out_len + oc * pixels;
                for v in &mut out_t.data_mut()[base..base + pixels] {
                    *v += b;
                }
            }
        }
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if no forward pass cached an
    /// input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        let g = self.shape.geometry;
        let (out_h, out_w) = (g.out_h(), g.out_w());
        let (in_c, out_c) = (self.shape.in_channels, self.shape.out_channels);
        let pad = g.padding as isize;
        if self.grad_weights.len() != self.weights.len() {
            self.grad_weights = Tensor::zeros(self.weights.shape().clone());
            self.grad_bias = Tensor::zeros(self.bias.shape().clone());
        }
        let mut grad_input = Tensor::zeros(input.shape().clone());
        {
            let gw = self.grad_weights.data_mut();
            let gb = self.grad_bias.data_mut();
            let gi = grad_input.data_mut();
            let go = grad_out.data();
            let xin = input.data();
            let w = self.weights.data();
            for oc in 0..out_c {
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let go_v = go[(oc * out_h + oy) * out_w + ox];
                        if go_v == 0.0 {
                            continue;
                        }
                        gb[oc] += go_v;
                        for ic in 0..in_c {
                            for ky in 0..g.k_h {
                                let iy = (oy * g.stride + ky) as isize - pad;
                                if iy < 0 || iy >= g.in_h as isize {
                                    continue;
                                }
                                for kx in 0..g.k_w {
                                    let ix = (ox * g.stride + kx) as isize - pad;
                                    if ix < 0 || ix >= g.in_w as isize {
                                        continue;
                                    }
                                    let in_idx = (ic * g.in_h + iy as usize) * g.in_w + ix as usize;
                                    let w_idx = ((oc * in_c + ic) * g.k_h + ky) * g.k_w + kx;
                                    gw[w_idx] += go_v * xin[in_idx];
                                    gi[in_idx] += go_v * w[w_idx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }

    /// Parameters and their accumulated gradients, for the optimizer.
    ///
    /// Handing out mutable weight references invalidates the cached winograd
    /// plan — it will be rebuilt from the updated weights on the next
    /// [`Conv2d::forward_planned`].
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.prepared = None;
        if self.grad_weights.len() != self.weights.len() {
            self.grad_weights = Tensor::zeros(self.weights.shape().clone());
            self.grad_bias = Tensor::zeros(self.bias.shape().clone());
        }
        vec![
            (&mut self.weights, &mut self.grad_weights),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    /// Reset accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        self.grad_weights = Tensor::zeros(self.weights.shape().clone());
        self.grad_bias = Tensor::zeros(self.bias.shape().clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn layer(in_c: usize, out_c: usize, size: usize, kernel: usize, pad: usize) -> Conv2d {
        let mut rng = SmallRng::seed_from_u64(3);
        Conv2d::new(in_c, out_c, size, kernel, pad, &mut rng)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut conv = layer(2, 4, 8, 3, 1);
        let input = Tensor::full(Shape::nchw(1, 2, 8, 8), 0.0);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &Shape::nchw(1, 4, 8, 8));
        // Zero input -> output equals the (zero) bias everywhere.
        assert!(out.data().iter().all(|&v| v == 0.0));
        assert_eq!(conv.out_channels(), 4);
        assert_eq!(conv.output_size(), 8);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut conv = layer(1, 1, 4, 3, 1);
        let grad = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        assert!(matches!(
            conv.backward(&grad),
            Err(NnError::BackwardBeforeForward)
        ));
    }

    /// Numerical gradient check on a tiny convolution.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut conv = Conv2d::new(1, 2, 4, 3, 1, &mut rng);
        let input = Tensor::uniform(Shape::nchw(1, 1, 4, 4), 1.0, &mut rng);
        // Scalar objective: sum of outputs weighted by fixed coefficients.
        let coeffs = Tensor::uniform(Shape::nchw(1, 2, 4, 4), 1.0, &mut rng);
        let objective = |conv: &mut Conv2d, input: &Tensor| -> f32 {
            let out = conv.forward(input).unwrap();
            out.data()
                .iter()
                .zip(coeffs.data())
                .map(|(a, b)| a * b)
                .sum()
        };

        // Analytic gradients.
        let _ = objective(&mut conv, &input);
        conv.zero_grad();
        let _ = conv.forward(&input).unwrap();
        let grad_in = conv.backward(&coeffs).unwrap();

        // Finite differences on a few weights.
        let eps = 1e-3f32;
        for &idx in &[0usize, 5, 10, 17] {
            let orig = conv.weights.data()[idx];
            conv.weights.data_mut()[idx] = orig + eps;
            let plus = objective(&mut conv, &input);
            conv.weights.data_mut()[idx] = orig - eps;
            let minus = objective(&mut conv, &input);
            conv.weights.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = conv.grad_weights.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "weight {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }

        // Finite differences on a few input pixels.
        let mut input_var = input.clone();
        for &idx in &[0usize, 7, 15] {
            let orig = input_var.data()[idx];
            input_var.data_mut()[idx] = orig + eps;
            let plus = objective(&mut conv, &input_var);
            input_var.data_mut()[idx] = orig - eps;
            let minus = objective(&mut conv, &input_var);
            input_var.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grad_in.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "input {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }

        // Bias gradient: derivative of the objective w.r.t. bias oc is the sum
        // of that channel's coefficients.
        for oc in 0..2 {
            let expected: f32 = coeffs.data()[oc * 16..(oc + 1) * 16].iter().sum();
            let got = conv.grad_bias.data()[oc];
            assert!(
                (expected - got).abs() < 1e-3,
                "bias {oc}: {expected} vs {got}"
            );
        }
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut conv = layer(1, 1, 4, 3, 1);
        let input = Tensor::full(Shape::nchw(1, 1, 4, 4), 1.0);
        let grad = Tensor::full(Shape::nchw(1, 1, 4, 4), 1.0);
        let _ = conv.forward(&input).unwrap();
        let _ = conv.backward(&grad).unwrap();
        assert!(conv.grad_weights.max_abs() > 0.0);
        conv.zero_grad();
        assert_eq!(conv.grad_weights.max_abs(), 0.0);
        assert_eq!(conv.params_and_grads().len(), 2);
    }

    #[test]
    fn planned_forward_matches_direct_forward() {
        let mut rng = SmallRng::seed_from_u64(21);
        for (in_c, out_c, size, kernel, pad) in [
            (2usize, 3usize, 8usize, 3usize, 1usize),
            (1, 2, 5, 3, 1),
            (3, 2, 6, 1, 0),
        ] {
            let mut conv = Conv2d::new(in_c, out_c, size, kernel, pad, &mut rng);
            let input = Tensor::uniform(Shape::nchw(1, in_c, size, size), 1.0, &mut rng);
            let direct = conv.forward(&input).unwrap();
            let planned = conv.forward_planned(&input).unwrap();
            assert_eq!(direct.shape(), planned.shape());
            for (d, p) in direct.data().iter().zip(planned.data()) {
                assert!((d - p).abs() < 1e-3, "direct {d} vs planned {p}");
            }
            // Second call reuses the cached plan and stays deterministic.
            let planned2 = conv.forward_planned(&input).unwrap();
            assert_eq!(planned.data(), planned2.data());
        }
    }

    #[test]
    fn planned_cache_is_invalidated_when_weights_change() {
        let mut conv = layer(1, 1, 6, 3, 1);
        let input = Tensor::full(Shape::nchw(1, 1, 6, 6), 1.0);
        let before = conv.forward_planned(&input).unwrap();
        // Mutate the weights the way the optimizer does.
        for (param, _) in conv.params_and_grads() {
            if param.len() == 9 {
                for v in param.data_mut() {
                    *v += 0.5;
                }
            }
        }
        let after = conv.forward_planned(&input).unwrap();
        assert_ne!(
            before.data(),
            after.data(),
            "stale plan served after weight update"
        );
        // And the refreshed plan agrees with direct convolution.
        let direct = conv.forward(&input).unwrap();
        for (d, p) in direct.data().iter().zip(after.data()) {
            assert!((d - p).abs() < 1e-3);
        }
    }

    /// The batched planned forward must be bit-identical to running each
    /// image through `forward_planned`, for winograd-eligible layers and for
    /// the announced 1x1 direct fallback, including N=1 and ragged sizes.
    #[test]
    fn batched_planned_forward_matches_per_image_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(31);
        for (in_c, out_c, size, kernel, pad) in [
            (2usize, 3usize, 8usize, 3usize, 1usize),
            (1, 2, 5, 3, 1),
            (3, 2, 6, 1, 0), // non-winograd geometry: direct fallback
        ] {
            for n in [1usize, 2, 5] {
                let mut conv = Conv2d::new(in_c, out_c, size, kernel, pad, &mut rng);
                let images: Vec<Tensor> = (0..n)
                    .map(|_| Tensor::uniform(Shape::nchw(1, in_c, size, size), 1.0, &mut rng))
                    .collect();
                let mut stacked = Vec::new();
                for image in &images {
                    stacked.extend_from_slice(image.data());
                }
                let batch = Tensor::from_vec(Shape::nchw(n, in_c, size, size), stacked).unwrap();
                let batched = conv.forward_planned_batch(&batch).unwrap();
                let out_size = conv.output_size();
                assert_eq!(batched.shape(), &Shape::nchw(n, out_c, out_size, out_size));
                let per_len = out_c * out_size * out_size;
                for (img, image) in images.iter().enumerate() {
                    let single = conv.forward_planned(image).unwrap();
                    assert_eq!(
                        single.data(),
                        &batched.data()[img * per_len..(img + 1) * per_len],
                        "k{kernel} c{in_c}->{out_c} s{size} n{n} image {img}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_kernel_counter_flags_fallbacks() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Winograd-eligible layer: the counter must advance on a batch.
        let mut conv = Conv2d::new(1, 1, 6, 3, 1, &mut rng);
        let batch = Tensor::uniform(Shape::nchw(2, 1, 6, 6), 1.0, &mut rng);
        assert_eq!(conv.batched_kernel_executions(), 0);
        let _ = conv.forward_planned_batch(&batch).unwrap();
        assert_eq!(conv.batched_kernel_executions(), 1);
        // 1x1 layer: announced direct fallback, counter stays put.
        let mut one = Conv2d::new(1, 1, 6, 1, 0, &mut rng);
        let _ = one.forward_planned_batch(&batch).unwrap();
        assert_eq!(one.batched_kernel_executions(), 0);
    }

    #[test]
    fn batched_forward_rejects_non_batched_input() {
        let mut conv = layer(1, 1, 4, 3, 1);
        let flat = Tensor::zeros(Shape::d2(4, 4));
        assert!(conv.forward_planned_batch(&flat).is_err());
    }

    /// A size-mismatched batch must be an error (not a slice panic) on both
    /// the winograd path and the direct fallback.
    #[test]
    fn batched_forward_rejects_wrong_image_size_on_both_paths() {
        let wrong = Tensor::zeros(Shape::nchw(2, 1, 5, 5));
        let mut wino = layer(1, 1, 6, 3, 1);
        assert!(wino.forward_planned_batch(&wrong).is_err());
        let mut direct = layer(1, 1, 6, 1, 0);
        assert!(direct.forward_planned_batch(&wrong).is_err());
    }

    /// The tile-size knob must reach the planned engine: every variant's
    /// planned forward agrees with direct convolution (F(6x6,3x3) gets the
    /// wider round-off budget of its larger transform), and switching the
    /// knob drops the stale plan.
    #[test]
    fn winograd_variant_knob_threads_through_planned_paths() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut conv = Conv2d::new(2, 3, 12, 3, 1, &mut rng);
        let input = Tensor::uniform(Shape::nchw(1, 2, 12, 12), 1.0, &mut rng);
        let direct = conv.forward(&input).unwrap();
        for variant in WinogradVariant::all() {
            conv.set_winograd_variant(variant);
            assert_eq!(conv.winograd_variant(), variant);
            let tol = if variant == wgft_winograd::F6X6_3X3 {
                2e-1
            } else {
                2e-2
            };
            let planned = conv.forward_planned(&input).unwrap();
            for (d, p) in direct.data().iter().zip(planned.data()) {
                assert!((d - p).abs() < tol, "{variant}: direct {d} vs planned {p}");
            }
        }
    }

    /// Checkpoint compatibility of the tile knob: the default variant is
    /// left implicit (byte-identical to pre-knob checkpoints, which load
    /// back as F(2x2,3x3)), while a non-default variant round-trips.
    #[test]
    fn winograd_variant_knob_checkpoint_compatibility() {
        let default_layer = layer(1, 1, 6, 3, 1);
        let json = serde_json::to_string(&default_layer).unwrap();
        assert!(!json.contains("winograd_variant"));
        let back: Conv2d = serde_json::from_str(&json).unwrap();
        assert_eq!(back.winograd_variant(), WinogradVariant::default());
        let mut six = layer(1, 1, 6, 3, 1);
        six.set_winograd_variant(wgft_winograd::F6X6_3X3);
        let json6 = serde_json::to_string(&six).unwrap();
        assert!(json6.contains("winograd_variant"));
        let back6: Conv2d = serde_json::from_str(&json6).unwrap();
        assert_eq!(back6.winograd_variant(), wgft_winograd::F6X6_3X3);
    }

    #[test]
    fn one_by_one_convolution_is_supported() {
        let mut conv = layer(3, 5, 6, 1, 0);
        let input = Tensor::full(Shape::nchw(1, 3, 6, 6), 0.5);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &Shape::nchw(1, 5, 6, 6));
    }
}
