//! Training entry points and a disk cache for trained models.
//!
//! Fault-injection campaigns need *trained* networks (an untrained network has
//! chance-level accuracy, which leaves nothing for soft errors to degrade).
//! Training the miniature model zoo takes tens of seconds per model, so the
//! benchmark harness caches trained weights as JSON under a user-supplied
//! directory (typically `target/wgft-models`).

use crate::models::ModelKind;
use crate::{Network, NnError, TrainConfig, Trainer};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;
use wgft_data::{Dataset, SyntheticSpec};

/// A trained floating-point model together with its task and test accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    /// Which benchmark analogue this is.
    pub kind: ModelKind,
    /// The task it was trained on.
    pub spec: SyntheticSpec,
    /// The trained network.
    pub network: Network,
    /// Floating-point accuracy on the held-out test split.
    pub clean_accuracy: f64,
    /// Mean loss of the final training epoch.
    pub final_loss: f32,
}

/// Floating-point top-1 accuracy of a network over a dataset.
///
/// Evaluates through [`Network::forward_inference_batch`] in 32-image chunks,
/// bit-identical to (and much faster than) a per-image inference loop.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn evaluate_f32(network: &mut Network, data: &Dataset) -> Result<f64, NnError> {
    crate::train::evaluate(network, data)
}

/// Train a model-zoo network on the given train/test split.
///
/// # Errors
///
/// Propagates any layer error raised during training or evaluation.
pub fn train_model(
    kind: ModelKind,
    spec: &SyntheticSpec,
    train: &Dataset,
    test: &Dataset,
    config: TrainConfig,
    seed: u64,
) -> Result<TrainedModel, NnError> {
    let mut network = kind.build(spec, seed);
    let mut trainer = Trainer::new(config);
    let report = trainer.fit(&mut network, train)?;
    let clean_accuracy = evaluate_f32(&mut network, test)?;
    Ok(TrainedModel {
        kind,
        spec: *spec,
        network,
        clean_accuracy,
        final_loss: report.epoch_losses.last().copied().unwrap_or(f32::NAN),
    })
}

impl TrainedModel {
    /// File name used by the disk cache for this model/task combination.
    #[must_use]
    pub fn cache_file_name(kind: ModelKind, spec: &SyntheticSpec) -> String {
        format!(
            "{}_{}c_{}x{}_{}cls.json",
            kind.label(),
            spec.channels,
            spec.height,
            spec.width,
            spec.num_classes
        )
    }

    /// Load a cached model if present, otherwise train and cache it.
    ///
    /// Pass `None` as `cache_dir` to force training without touching the file
    /// system (what unit tests do).
    ///
    /// # Errors
    ///
    /// Propagates training errors; cache I/O problems fall back to training.
    pub fn load_or_train(
        kind: ModelKind,
        spec: &SyntheticSpec,
        train: &Dataset,
        test: &Dataset,
        config: TrainConfig,
        seed: u64,
        cache_dir: Option<&Path>,
    ) -> Result<TrainedModel, NnError> {
        if let Some(dir) = cache_dir {
            let path = dir.join(Self::cache_file_name(kind, spec));
            if let Ok(bytes) = fs::read(&path) {
                if let Ok(model) = serde_json::from_slice::<TrainedModel>(&bytes) {
                    if model.kind == kind && model.spec == *spec {
                        return Ok(model);
                    }
                }
            }
        }
        let model = train_model(kind, spec, train, test, config, seed)?;
        if let Some(dir) = cache_dir {
            let path = dir.join(Self::cache_file_name(kind, spec));
            if fs::create_dir_all(dir).is_ok() {
                if let Ok(json) = serde_json::to_vec(&model) {
                    // Best-effort cache write; campaigns work fine without it.
                    let _ = fs::write(path, json);
                }
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_task() -> (SyntheticSpec, Dataset, Dataset) {
        let spec = SyntheticSpec::tiny();
        let data = Dataset::synthetic(&spec, 12, 9);
        let (train, test) = data.split(0.75);
        (spec, train, test)
    }

    #[test]
    fn training_beats_chance_on_the_tiny_task() {
        let (spec, train, test) = tiny_task();
        let model = train_model(
            ModelKind::VggSmall,
            &spec,
            &train,
            &test,
            TrainConfig {
                epochs: 4,
                ..TrainConfig::fast()
            },
            1,
        )
        .unwrap();
        let chance = 1.0 / spec.num_classes as f64;
        assert!(
            model.clean_accuracy > 1.5 * chance,
            "trained accuracy {} should beat chance {}",
            model.clean_accuracy,
            chance
        );
        assert!(model.final_loss.is_finite());
    }

    #[test]
    fn cache_roundtrip_reuses_the_trained_model() {
        let (spec, train, test) = tiny_task();
        let dir = std::env::temp_dir().join(format!("wgft_zoo_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = TrainedModel::load_or_train(
            ModelKind::VggSmall,
            &spec,
            &train,
            &test,
            TrainConfig::fast(),
            2,
            Some(&dir),
        )
        .unwrap();
        let second = TrainedModel::load_or_train(
            ModelKind::VggSmall,
            &spec,
            &train,
            &test,
            TrainConfig::fast(),
            999, // different seed: must not matter because the cache is hit
            Some(&dir),
        )
        .unwrap();
        // Compare through the serialized form: runtime-only fields (gradient
        // buffers, forward caches) are skipped by serde and differ between a
        // freshly trained model and one restored from disk.
        assert_eq!(
            serde_json::to_value(&first).unwrap(),
            serde_json::to_value(&second).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_file_name_encodes_task() {
        let name = TrainedModel::cache_file_name(ModelKind::ResNetSmall, &SyntheticSpec::small());
        assert_eq!(name, "resnet_small_3c_16x16_8cls.json");
    }

    #[test]
    fn evaluate_f32_matches_training_report_scale() {
        let (spec, train, _test) = tiny_task();
        let mut net = ModelKind::VggSmall.build(&spec, 3);
        let acc = evaluate_f32(&mut net, &train).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    /// `evaluate_f32` runs batched inference under the hood; its verdicts
    /// must be exactly what a per-image inference loop produces.
    #[test]
    fn batched_evaluation_matches_per_image_inference() {
        let (spec, train, _test) = tiny_task();
        let mut net = ModelKind::VggSmall.build(&spec, 3);
        let batched = evaluate_f32(&mut net, &train).unwrap();
        let mut correct = 0usize;
        for sample in train.iter() {
            let logits = net.forward_inference(&sample.image).unwrap();
            if wgft_data::argmax(logits.data()) == sample.label {
                correct += 1;
            }
        }
        assert_eq!(batched, correct as f64 / train.len() as f64);
    }
}
