//! Activation layers.

use crate::NnError;
use serde::{Deserialize, Serialize};
use wgft_tensor::Tensor;

/// Rectified linear unit, `y = max(0, x)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Create a ReLU layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mask: Vec<bool> = input.data().iter().map(|&v| v > 0.0).collect();
        let out = input.map(|v| if v > 0.0 { v } else { 0.0 });
        self.mask = Some(mask);
        out
    }

    /// Backward pass: zeroes the gradient where the input was non-positive.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if forward was not called.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self.mask.as_ref().ok_or(NnError::BackwardBeforeForward)?;
        let data = grad_out
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(grad_out.shape().clone(), data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_tensor::Shape;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(Shape::d1(4), vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(Shape::d1(4), vec![-1.0, 3.0, 2.0, -0.5]).unwrap();
        let _ = relu.forward(&x);
        let g = Tensor::from_vec(Shape::d1(4), vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let gi = relu.backward(&g).unwrap();
        assert_eq!(gi.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        let g = Tensor::zeros(Shape::d1(2));
        assert!(matches!(
            relu.backward(&g),
            Err(NnError::BackwardBeforeForward)
        ));
    }
}
