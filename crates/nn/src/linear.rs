//! Fully-connected layer.

use crate::conv::empty_tensor;
use crate::NnError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wgft_tensor::{Shape, Tensor};

/// A fully-connected (dense) layer mapping a flattened feature vector to
/// `out_features` logits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weights: Tensor, // (out, in)
    bias: Tensor,    // (out)
    #[serde(skip)]
    cached_input: Option<Tensor>,
    #[serde(skip, default = "empty_tensor")]
    grad_weights: Tensor,
    #[serde(skip, default = "empty_tensor")]
    grad_bias: Tensor,
}

impl Linear {
    /// Create a dense layer with He-uniform initial weights.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let weights = Tensor::he_uniform(Shape::d2(out_features, in_features), in_features, rng);
        let bias = Tensor::zeros(Shape::d1(out_features));
        Self {
            in_features,
            out_features,
            grad_weights: Tensor::zeros(weights.shape().clone()),
            grad_bias: Tensor::zeros(bias.shape().clone()),
            weights,
            bias,
            cached_input: None,
        }
    }

    /// Number of input features.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Weight matrix `(out_features, in_features)`.
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Bias vector.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Forward pass: the input is flattened to `in_features` values.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WrongInputCount`] if the flattened input length does
    /// not equal `in_features`.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.len() != self.in_features {
            return Err(NnError::WrongInputCount {
                layer: "linear",
                expected: self.in_features,
                actual: input.len(),
            });
        }
        let mut out = vec![0.0f32; self.out_features];
        let w = self.weights.data();
        let x = input.data();
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &w[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = self.bias.data()[o];
            for (wv, xv) in row.iter().zip(x.iter()) {
                acc += wv * xv;
            }
            *out_v = acc;
        }
        self.cached_input = Some(input.clone());
        Ok(Tensor::from_vec(Shape::d1(self.out_features), out)?)
    }

    /// Backward pass: accumulates gradients and returns the input gradient
    /// (shaped like the cached input).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if forward was not called.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        if self.grad_weights.len() != self.weights.len() {
            self.grad_weights = Tensor::zeros(self.weights.shape().clone());
            self.grad_bias = Tensor::zeros(self.bias.shape().clone());
        }
        let mut grad_input = Tensor::zeros(input.shape().clone());
        {
            let gw = self.grad_weights.data_mut();
            let gb = self.grad_bias.data_mut();
            let gi = grad_input.data_mut();
            let x = input.data();
            let w = self.weights.data();
            #[allow(clippy::needless_range_loop)] // `o` indexes three parallel buffers
            for o in 0..self.out_features {
                let go = grad_out.data()[o];
                if go == 0.0 {
                    continue;
                }
                gb[o] += go;
                let row = o * self.in_features;
                for i in 0..self.in_features {
                    gw[row + i] += go * x[i];
                    gi[i] += go * w[row + i];
                }
            }
        }
        Ok(grad_input)
    }

    /// Parameters and their accumulated gradients, for the optimizer.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        if self.grad_weights.len() != self.weights.len() {
            self.grad_weights = Tensor::zeros(self.weights.shape().clone());
            self.grad_bias = Tensor::zeros(self.bias.shape().clone());
        }
        vec![
            (&mut self.weights, &mut self.grad_weights),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    /// Reset accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weights = Tensor::zeros(self.weights.shape().clone());
        self.grad_bias = Tensor::zeros(self.bias.shape().clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lin = Linear::new(3, 2, &mut rng);
        // Overwrite with known weights.
        lin.weights =
            Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5]).unwrap();
        lin.bias = Tensor::from_vec(Shape::d1(2), vec![0.5, -1.0]).unwrap();
        let x = Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.data(), &[1.0 - 3.0 + 0.5, 2.0 + 2.0 + 1.5 - 1.0]);
        assert_eq!(lin.in_features(), 3);
        assert_eq!(lin.out_features(), 2);
    }

    #[test]
    fn forward_rejects_wrong_length() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lin = Linear::new(4, 2, &mut rng);
        let x = Tensor::zeros(Shape::d1(3));
        assert!(matches!(
            lin.forward(&x),
            Err(NnError::WrongInputCount { .. })
        ));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = Tensor::uniform(Shape::d1(4), 1.0, &mut rng);
        let coeff = Tensor::uniform(Shape::d1(3), 1.0, &mut rng);
        let objective = |lin: &mut Linear, x: &Tensor| -> f32 {
            lin.forward(x)
                .unwrap()
                .data()
                .iter()
                .zip(coeff.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        lin.zero_grad();
        let _ = lin.forward(&x).unwrap();
        let grad_in = lin.backward(&coeff).unwrap();
        let eps = 1e-3;
        for idx in 0..lin.weights.len() {
            let orig = lin.weights.data()[idx];
            lin.weights.data_mut()[idx] = orig + eps;
            let plus = objective(&mut lin, &x);
            lin.weights.data_mut()[idx] = orig - eps;
            let minus = objective(&mut lin, &x);
            lin.weights.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = lin.grad_weights.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "w{idx}: {numeric} vs {analytic}"
            );
        }
        for idx in 0..4 {
            let mut xv = x.clone();
            let orig = xv.data()[idx];
            xv.data_mut()[idx] = orig + eps;
            let plus = objective(&mut lin, &xv);
            xv.data_mut()[idx] = orig - eps;
            let minus = objective(&mut lin, &xv);
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - grad_in.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        assert!(matches!(
            lin.backward(&Tensor::zeros(Shape::d1(2))),
            Err(NnError::BackwardBeforeForward)
        ));
    }

    #[test]
    fn params_and_zero_grad() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        assert_eq!(lin.params_and_grads().len(), 2);
        let x = Tensor::full(Shape::d1(2), 1.0);
        let _ = lin.forward(&x).unwrap();
        let _ = lin.backward(&Tensor::full(Shape::d1(2), 1.0)).unwrap();
        assert!(lin.grad_bias.max_abs() > 0.0);
        lin.zero_grad();
        assert_eq!(lin.grad_bias.max_abs(), 0.0);
    }
}
