//! Pooling layers.

use crate::NnError;
use serde::{Deserialize, Serialize};
use wgft_tensor::{Shape, Tensor};

/// 2x2 max pooling with stride 2 on `(1, C, H, W)` tensors.
///
/// Odd trailing rows/columns are dropped (floor division), matching the
/// behaviour of the frameworks the paper's networks were trained with.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MaxPool2 {
    #[serde(skip)]
    argmax: Option<(Shape, Vec<usize>)>,
}

impl MaxPool2 {
    /// Create a 2x2/stride-2 max-pooling layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input is not 4-D.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 {
            return Err(NnError::WrongInputCount {
                layer: "maxpool",
                expected: 4,
                actual: dims.len(),
            });
        }
        let (c, h, w) = (dims[1], dims[2], dims[3]);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; c * oh * ow];
        let mut argmax = vec![0usize; c * oh * ow];
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let iy = oy * 2 + dy;
                            let ix = ox * 2 + dx;
                            let idx = (ci * h + iy) * w + ix;
                            let v = input.data()[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    let o_idx = (ci * oh + oy) * ow + ox;
                    out[o_idx] = best;
                    argmax[o_idx] = best_idx;
                }
            }
        }
        self.argmax = Some((input.shape().clone(), argmax));
        Ok(Tensor::from_vec(Shape::nchw(1, c, oh, ow), out)?)
    }

    /// Backward pass: routes each gradient to the position that won the max.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if forward was not called.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let (in_shape, argmax) = self.argmax.as_ref().ok_or(NnError::BackwardBeforeForward)?;
        let mut grad_in = Tensor::zeros(in_shape.clone());
        for (g, &src) in grad_out.data().iter().zip(argmax.iter()) {
            grad_in.data_mut()[src] += g;
        }
        Ok(grad_in)
    }
}

/// Global average pooling: `(1, C, H, W)` → `(C)` feature vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GlobalAvgPool {
    #[serde(skip)]
    input_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Create a global average pooling layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input is not 4-D.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let dims = input.shape().dims();
        if dims.len() != 4 {
            return Err(NnError::WrongInputCount {
                layer: "global_avg_pool",
                expected: 4,
                actual: dims.len(),
            });
        }
        let (c, h, w) = (dims[1], dims[2], dims[3]);
        let area = (h * w) as f32;
        let mut out = vec![0.0f32; c];
        for (ci, value) in out.iter_mut().enumerate() {
            let base = ci * h * w;
            *value = input.data()[base..base + h * w].iter().sum::<f32>() / area;
        }
        self.input_shape = Some(input.shape().clone());
        Ok(Tensor::from_vec(Shape::d1(c), out)?)
    }

    /// Backward pass: spreads each channel gradient evenly over the map.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if forward was not called.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let in_shape = self
            .input_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        let dims = in_shape.dims();
        let (c, h, w) = (dims[1], dims[2], dims[3]);
        let area = (h * w) as f32;
        let mut grad_in = Tensor::zeros(in_shape.clone());
        for ci in 0..c {
            let g = grad_out.data()[ci] / area;
            let base = ci * h * w;
            for v in &mut grad_in.data_mut()[base..base + h * w] {
                *v = g;
            }
        }
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima_and_routes_gradients() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 4, 4),
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &Shape::nchw(1, 1, 2, 2));
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        let g = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let gi = pool.backward(&g).unwrap();
        assert_eq!(gi.get4(0, 0, 1, 1).unwrap(), 1.0);
        assert_eq!(gi.get4(0, 0, 1, 3).unwrap(), 2.0);
        assert_eq!(gi.get4(0, 0, 3, 1).unwrap(), 3.0);
        assert_eq!(gi.get4(0, 0, 3, 3).unwrap(), 4.0);
        assert_eq!(gi.get4(0, 0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let mut pool = MaxPool2::new();
        let x = Tensor::full(Shape::nchw(1, 2, 5, 5), 1.0);
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.shape(), &Shape::nchw(1, 2, 2, 2));
    }

    #[test]
    fn gap_averages_and_spreads() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            Shape::nchw(1, 2, 2, 2),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        )
        .unwrap();
        let y = gap.forward(&x).unwrap();
        assert_eq!(y.data(), &[2.5, 10.0]);
        let g = Tensor::from_vec(Shape::d1(2), vec![4.0, 8.0]).unwrap();
        let gi = gap.backward(&g).unwrap();
        assert_eq!(gi.get4(0, 0, 0, 0).unwrap(), 1.0);
        assert_eq!(gi.get4(0, 1, 1, 1).unwrap(), 2.0);
    }

    #[test]
    fn backward_requires_forward() {
        let mut pool = MaxPool2::new();
        assert!(pool
            .backward(&Tensor::zeros(Shape::nchw(1, 1, 1, 1)))
            .is_err());
        let mut gap = GlobalAvgPool::new();
        assert!(gap.backward(&Tensor::zeros(Shape::d1(1))).is_err());
    }

    #[test]
    fn non_4d_inputs_are_rejected() {
        let mut pool = MaxPool2::new();
        assert!(pool.forward(&Tensor::zeros(Shape::d2(4, 4))).is_err());
        let mut gap = GlobalAvgPool::new();
        assert!(gap.forward(&Tensor::zeros(Shape::d1(4))).is_err());
    }
}
