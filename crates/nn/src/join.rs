//! Multi-input join layers: element-wise addition (residual connections) and
//! channel concatenation (dense blocks, inception modules).

use crate::NnError;
use serde::{Deserialize, Serialize};
use wgft_tensor::{Shape, Tensor};

/// Element-wise addition of two feature maps (a residual connection).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Add;

impl Add {
    /// Create an addition join.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Forward pass over exactly two inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WrongInputCount`] for a wrong number of inputs and a
    /// tensor error if the shapes differ.
    pub fn forward(&mut self, inputs: &[&Tensor]) -> Result<Tensor, NnError> {
        if inputs.len() != 2 {
            return Err(NnError::WrongInputCount {
                layer: "add",
                expected: 2,
                actual: inputs.len(),
            });
        }
        Ok(inputs[0].add(inputs[1])?)
    }

    /// Backward pass: the gradient flows unchanged to both inputs.
    #[must_use]
    pub fn backward(&self, grad_out: &Tensor) -> Vec<Tensor> {
        vec![grad_out.clone(), grad_out.clone()]
    }
}

/// Channel-dimension concatenation of any number of `(1, C_i, H, W)` maps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Concat {
    #[serde(skip)]
    input_channels: Vec<usize>,
    #[serde(skip)]
    spatial: (usize, usize),
}

impl Concat {
    /// Create a concatenation join.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::WrongInputCount`] when fewer than two inputs are
    /// given and [`NnError::InvalidGraph`]-style tensor errors when spatial
    /// sizes disagree.
    pub fn forward(&mut self, inputs: &[&Tensor]) -> Result<Tensor, NnError> {
        if inputs.len() < 2 {
            return Err(NnError::WrongInputCount {
                layer: "concat",
                expected: 2,
                actual: inputs.len(),
            });
        }
        let dims0 = inputs[0].shape().dims();
        let (h, w) = (dims0[2], dims0[3]);
        let mut channels = Vec::with_capacity(inputs.len());
        let mut total_c = 0usize;
        for t in inputs {
            let dims = t.shape().dims();
            if dims.len() != 4 || dims[2] != h || dims[3] != w {
                return Err(NnError::Tensor(wgft_tensor::TensorError::ShapeMismatch {
                    left: inputs[0].shape().clone(),
                    right: t.shape().clone(),
                }));
            }
            channels.push(dims[1]);
            total_c += dims[1];
        }
        let mut data = Vec::with_capacity(total_c * h * w);
        for t in inputs {
            data.extend_from_slice(t.data());
        }
        self.input_channels = channels;
        self.spatial = (h, w);
        Ok(Tensor::from_vec(Shape::nchw(1, total_c, h, w), data)?)
    }

    /// Backward pass: splits the gradient back into per-input chunks.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if forward was not called.
    pub fn backward(&self, grad_out: &Tensor) -> Result<Vec<Tensor>, NnError> {
        if self.input_channels.is_empty() {
            return Err(NnError::BackwardBeforeForward);
        }
        let (h, w) = self.spatial;
        let mut grads = Vec::with_capacity(self.input_channels.len());
        let mut offset = 0usize;
        for &c in &self.input_channels {
            let len = c * h * w;
            let slice = grad_out.data()[offset..offset + len].to_vec();
            grads.push(Tensor::from_vec(Shape::nchw(1, c, h, w), slice)?);
            offset += len;
        }
        Ok(grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_and_broadcasts_gradient() {
        let mut add = Add::new();
        let a = Tensor::full(Shape::nchw(1, 2, 2, 2), 1.0);
        let b = Tensor::full(Shape::nchw(1, 2, 2, 2), 2.0);
        let y = add.forward(&[&a, &b]).unwrap();
        assert!(y.data().iter().all(|&v| v == 3.0));
        let grads = add.backward(&y);
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0], y);
        assert!(add.forward(&[&a]).is_err());
        let c = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        assert!(add.forward(&[&a, &c]).is_err());
    }

    #[test]
    fn concat_stacks_channels_and_splits_gradient() {
        let mut concat = Concat::new();
        let a = Tensor::full(Shape::nchw(1, 1, 2, 2), 1.0);
        let b = Tensor::full(Shape::nchw(1, 2, 2, 2), 2.0);
        let y = concat.forward(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), &Shape::nchw(1, 3, 2, 2));
        assert_eq!(y.data()[0], 1.0);
        assert_eq!(y.data()[4], 2.0);
        let grads = concat.backward(&y).unwrap();
        assert_eq!(grads.len(), 2);
        assert_eq!(grads[0].shape(), a.shape());
        assert_eq!(grads[1].shape(), b.shape());
        assert!(grads[1].data().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn concat_rejects_bad_inputs() {
        let mut concat = Concat::new();
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(concat.forward(&[&a]).is_err());
        let b = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(concat.forward(&[&a, &b]).is_err());
        assert!(Concat::new().backward(&a).is_err());
    }
}
