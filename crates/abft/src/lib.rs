//! Executable algorithm-based fault tolerance (ABFT) for the winograd
//! fault-injection platform.
//!
//! Every protection scheme the workspace had before this crate was
//! *idealized*: a [`wgft_faultsim::ProtectionPlan`] masks faults before they
//! corrupt anything, and the TMR planner only charges a cost model. Nothing
//! actually detected or corrected an injected fault. This crate closes that
//! gap with protection that **executes**:
//!
//! * [`checked_gemm_i64`] / [`verify_gemm_f32`] — classic Huang–Abraham
//!   row/column checksums around the winograd-domain (and im2col
//!   standard-conv) GEMMs: single errors are located and corrected exactly,
//!   anything messier falls back to a recompute. The `f32` variant's
//!   comparisons carry a numerical tolerance derived from the operand
//!   magnitudes so float rounding never false-positives.
//! * Transform guards — the `Bᵀ·B` / `Aᵀ·A` winograd transforms are linear,
//!   so a column checksum carried through them detects transform-stage
//!   faults at `O(t²)` cost per tile ([`abft_winograd_conv`]).
//! * Range restriction — [`AbftMode::Range`] clips winograd-domain values
//!   and output accumulators to calibrated per-layer ranges
//!   ([`AbftCalibration`]), the detector-free baseline from the
//!   fault-tolerance literature.
//! * [`AbftPolicy`] — per-layer off / range / checksum / checksum+range with
//!   a recompute-on-detect switch; composes with the idealized
//!   [`wgft_faultsim::ProtectionPlan`] (which keeps masking *inside* the
//!   arithmetic) and reports what happened through [`AbftEvents`]:
//!   detected/corrected/uncorrected counts plus the exact extra Mul/Add
//!   work as a [`wgft_faultsim::OpCount`].
//!
//! The protected executors ([`abft_winograd_conv`], [`abft_direct_conv`],
//! [`abft_linear`]) keep issuing every primitive operation through the
//! instrumented [`wgft_faultsim::Arithmetic`] backend, so soft errors strike
//! the protected datapath exactly as they strike the unprotected one — the
//! protection earns its accuracy back at runtime or not at all.
//!
//! `wgft-nn` threads an [`AbftPolicy`] through `QuantizedNetwork` forwards,
//! `wgft-core` builds the accuracy-vs-overhead `protection_tradeoff`
//! campaign on top, and `wgft-sweep` shards that campaign with journaled,
//! bit-identical-on-resume execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
mod engine;
mod policy;
mod profile;

pub use checksum::{checked_gemm_i64, plain_gemm_i64, verify_gemm_f32, MAX_RECOMPUTES};
pub use engine::{
    abft_direct_conv, abft_linear, abft_winograd_conv, observe_max, AbftRun, AbftScratch,
};
pub use policy::{AbftCalibration, AbftEvents, AbftMode, AbftPolicy, LayerRanges};
pub use profile::{
    LayerChoice, MeasuredDelta, ProfileError, ProfileProvenance, ProtectionProfile, PROFILE_VERSION,
};

use wgft_faultsim::GemmFaultInjector;
use wgft_winograd::GemmObserver;

/// [`GemmObserver`] for the fast planned `f32` path: optionally corrupts
/// each GEMM product with a [`GemmFaultInjector`] (attack), then verifies
/// and repairs it with [`verify_gemm_f32`] (defend).
///
/// Plug into [`wgft_winograd::PreparedConvF32::execute_observed`]; with
/// `verify` off it is a pure fault hook, with no injector it is a pure
/// integrity guard.
#[derive(Debug, Default)]
pub struct ChecksumGuardF32 {
    /// Fault injector applied to each product before verification.
    pub injector: Option<GemmFaultInjector>,
    /// Whether checksum verification/repair runs.
    pub verify: bool,
    /// Whether verification failures recompute (they always can on the
    /// float path — the recompute kernel is fault-free).
    pub recompute: bool,
    /// Accumulated events.
    pub events: AbftEvents,
}

impl ChecksumGuardF32 {
    /// A guard that verifies (and repairs, via recompute when needed) every
    /// observed GEMM.
    #[must_use]
    pub fn verifying() -> Self {
        Self {
            injector: None,
            verify: true,
            recompute: true,
            events: AbftEvents::new(),
        }
    }

    /// Attach a fault injector (attack + defend).
    #[must_use]
    pub fn with_injector(mut self, injector: GemmFaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// An attack-only hook: inject faults, never verify.
    #[must_use]
    pub fn attack_only(injector: GemmFaultInjector) -> Self {
        Self {
            injector: Some(injector),
            verify: false,
            recompute: false,
            events: AbftEvents::new(),
        }
    }
}

impl GemmObserver for ChecksumGuardF32 {
    fn after_gemm(&mut self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, p: usize) {
        if let Some(injector) = self.injector.as_mut() {
            injector.corrupt(out);
        }
        if self.verify {
            verify_gemm_f32(a, b, out, m, k, p, self.recompute, &mut self.events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_faultsim::BitErrorRate;
    use wgft_tensor::ConvGeometry;
    use wgft_winograd::{ConvShape, PreparedConvF32, F2X2_3X3};

    fn fixture() -> (ConvShape, Vec<f32>, Vec<f32>) {
        let shape = ConvShape::new(3, 4, ConvGeometry::square(12, 3, 1, 1));
        let input: Vec<f32> = (0..shape.input_len())
            .map(|i| ((i * 31 % 23) as f32) * 0.17 - 1.9)
            .collect();
        let weights: Vec<f32> = (0..shape.weight_len())
            .map(|i| ((i * 17 % 13) as f32) * 0.11 - 0.7)
            .collect();
        (shape, input, weights)
    }

    #[test]
    fn observed_execution_without_injection_is_bit_identical_and_quiet() {
        let (shape, input, weights) = fixture();
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let clean = prepared.execute(&input).unwrap();
        let mut guard = ChecksumGuardF32::verifying();
        let mut observed = vec![0.0f32; shape.output_len()];
        prepared
            .execute_observed(&input, &mut observed, &mut guard)
            .unwrap();
        assert_eq!(clean, observed, "verification must not perturb a clean run");
        assert_eq!(guard.events.detected, 0, "no false positives at BER 0");
    }

    #[test]
    fn planned_path_can_be_attacked_and_defended() {
        let (shape, input, weights) = fixture();
        let mut prepared = PreparedConvF32::new(&weights, &shape, F2X2_3X3).unwrap();
        let clean = prepared.execute(&input).unwrap();

        // Attack only: a high-BER injector corrupts the planned output.
        let mut attack =
            ChecksumGuardF32::attack_only(GemmFaultInjector::new(BitErrorRate::new(3e-3), 11));
        let mut corrupted = vec![0.0f32; shape.output_len()];
        prepared
            .execute_observed(&input, &mut corrupted, &mut attack)
            .unwrap();
        assert!(attack.injector.unwrap().faults_injected() > 0);
        assert_ne!(clean, corrupted, "the fast path must be attackable");

        // Attack + defend: the checksum guard repairs what the injector broke.
        let mut defend = ChecksumGuardF32::verifying()
            .with_injector(GemmFaultInjector::new(BitErrorRate::new(3e-3), 11));
        let mut protected = vec![0.0f32; shape.output_len()];
        prepared
            .execute_observed(&input, &mut protected, &mut defend)
            .unwrap();
        assert!(defend.events.detected > 0, "faults must be detected");
        let max_err = clean
            .iter()
            .zip(protected.iter())
            .map(|(c, p)| (c - p).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_err <= 1e-3,
            "checksum repair must restore the planned output (max err {max_err})"
        );
    }
}
