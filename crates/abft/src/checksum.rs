//! Checksummed GEMM: detect, locate and correct soft errors around the
//! matrix multiplies at the heart of both convolution algorithms.
//!
//! Classic algorithm-based fault tolerance (Huang & Abraham): for
//! `C = A · B` with `A (M×K)` and `B (K×P)`, maintain the column-checksum
//! vector `e^T A` and the row-sum vector `B e`. Linearity gives two
//! invariants over the product,
//!
//! ```text
//! row o:    Σ_j C[o][j]  ==  Σ_q A[o][q] · (B e)[q]
//! column j: Σ_o C[o][j]  ==  Σ_q (e^T A)[q] · B[q][j]
//! ```
//!
//! A single corrupted output element breaks exactly one row invariant and
//! one column invariant, which both *locates* the element and yields the
//! exact correction delta. Anything messier (multiple corrupted elements,
//! a fault inside an accumulation chain that smears) falls back to a
//! recompute of the whole product when the policy allows it.
//!
//! The checksum arithmetic itself runs on hardened (exact) arithmetic —
//! the standard ABFT hardware assumption — but its cost is charged, op by
//! op, to [`AbftEvents::overhead`] so protection is never free.
//!
//! Two variants exist: an integer one wrapping the *instrumented* quantized
//! datapath (the fault-injection experiments), and an `f32` one for the fast
//! planned engine, whose comparisons use a numerical tolerance derived from
//! the actual operand magnitudes so float rounding never false-positives.

use crate::policy::AbftEvents;
use wgft_faultsim::Arithmetic;

/// Recompute attempts before a detection is abandoned as uncorrected: the
/// recompute runs on the same faulty hardware as the original, so it may be
/// struck again; retrying until the checksum verifies (bounded) is what a
/// real ABFT recovery loop does.
pub const MAX_RECOMPUTES: usize = 3;

/// Instrumented integer GEMM `out = a · b` with `a (m×k)`, `b (k×p)`: one
/// backend `mul` and one backend `add` per multiply-accumulate, exactly like
/// the direct and winograd kernels it stands in for.
pub fn plain_gemm_i64<A: Arithmetic>(
    arith: &mut A,
    a: &[i64],
    b: &[i64],
    out: &mut [i64],
    m: usize,
    k: usize,
    p: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * p);
    debug_assert_eq!(out.len(), m * p);
    for o in 0..m {
        let arow = &a[o * k..(o + 1) * k];
        for j in 0..p {
            let mut acc = 0i64;
            for (q, &av) in arow.iter().enumerate() {
                let product = arith.mul(av, b[q * p + j]);
                acc = arith.add(acc, product);
            }
            out[o * p + j] = acc;
        }
    }
}

/// Failing invariants of one verification pass: `(index, expected − actual)`
/// per bad row and per bad column.
type Mismatches<T> = (Vec<(usize, T)>, Vec<(usize, T)>);

/// Exact (hardened) checksum state of one `m×k · k×p` product, with every
/// checksum operation charged to the overhead tally.
///
/// All checksum sums accumulate in `i128`: a row checksum is a sum of `K·P`
/// products of worst-case accumulator-domain magnitudes, which can exceed
/// `i64` even when every individual product element fits (e.g. winograd
/// accumulators near `2⁵⁶` summed over a few hundred tiles) — in a debug
/// build the old `i64` accumulation panicked on overflow, in release it
/// wrapped and could silently mask or invent detections.
struct GemmChecksums {
    exp_row: Vec<i128>,
    exp_col: Vec<i128>,
}

impl GemmChecksums {
    fn prepare(
        a: &[i64],
        b: &[i64],
        m: usize,
        k: usize,
        p: usize,
        events: &mut AbftEvents,
    ) -> Self {
        // e^T A — column checksums of A.
        let mut col_a = vec![0i128; k];
        for o in 0..m {
            for (q, ca) in col_a.iter_mut().enumerate() {
                *ca += i128::from(a[o * k + q]);
            }
        }
        // B e — row sums of B.
        let mut row_b = vec![0i128; k];
        for (q, rb) in row_b.iter_mut().enumerate() {
            for j in 0..p {
                *rb += i128::from(b[q * p + j]);
            }
        }
        // Expected row sums: A · (B e).
        let mut exp_row = vec![0i128; m];
        for (o, er) in exp_row.iter_mut().enumerate() {
            for (q, &rb) in row_b.iter().enumerate() {
                *er += i128::from(a[o * k + q]) * rb;
            }
        }
        // Expected column sums: (e^T A) · B.
        let mut exp_col = vec![0i128; p];
        for (q, &ca) in col_a.iter().enumerate() {
            for (j, ec) in exp_col.iter_mut().enumerate() {
                *ec += ca * i128::from(b[q * p + j]);
            }
        }
        let (m64, k64, p64) = (m as u64, k as u64, p as u64);
        events.charge(
            // exp_row and exp_col multiplies.
            m64 * k64 + k64 * p64,
            // col_a + row_b sums, plus the two expectation accumulations.
            k64 * m64.saturating_sub(1)
                + k64 * p64.saturating_sub(1)
                + m64 * k64.saturating_sub(1)
                + k64.saturating_sub(1) * p64,
        );
        Self { exp_row, exp_col }
    }

    /// Rows and columns whose invariant fails, with their deltas
    /// (`expected − actual`). Charges the actual-sum arithmetic.
    fn mismatches(
        &self,
        out: &[i64],
        m: usize,
        p: usize,
        events: &mut AbftEvents,
    ) -> Mismatches<i128> {
        let mut bad_rows = Vec::new();
        for (o, &exp) in self.exp_row.iter().enumerate() {
            let actual: i128 = out[o * p..(o + 1) * p].iter().map(|&v| i128::from(v)).sum();
            if actual != exp {
                bad_rows.push((o, exp - actual));
            }
        }
        let mut bad_cols = Vec::new();
        for (j, &exp) in self.exp_col.iter().enumerate() {
            let mut actual = 0i128;
            for o in 0..m {
                actual += i128::from(out[o * p + j]);
            }
            if actual != exp {
                bad_cols.push((j, exp - actual));
            }
        }
        let (m64, p64) = (m as u64, p as u64);
        events.charge(0, m64 * p64.saturating_sub(1) + m64.saturating_sub(1) * p64);
        (bad_rows, bad_cols)
    }
}

/// Try to repair `out` from a mismatch signature; returns `true` when the
/// signature names exactly one element, the two deltas agree and the
/// repaired value fits the accumulator domain (a delta that would push the
/// element out of `i64` cannot come from a single corrupted element, so it
/// falls through to the recompute path instead).
fn correct_single(
    out: &mut [i64],
    p: usize,
    bad_rows: &[(usize, i128)],
    bad_cols: &[(usize, i128)],
) -> bool {
    if let ([(o, dr)], [(j, dc)]) = (bad_rows, bad_cols) {
        if dr == dc {
            if let Ok(fixed) = i64::try_from(i128::from(out[o * p + j]) + dr) {
                out[o * p + j] = fixed;
                return true;
            }
        }
    }
    false
}

/// Checksummed instrumented GEMM: compute `out = a · b` through the (faulty)
/// backend, verify the row/column invariants on hardened arithmetic, and
/// repair what they expose.
///
/// * A single corrupted element is located and corrected **exactly** (the
///   integer deltas are exact).
/// * Any other mismatch triggers one recompute through the backend when
///   `recompute_on_detect` is set (counted in
///   [`AbftEvents::recomputes`]; the recompute can itself be struck, so it
///   is re-verified and single-corrected before giving up).
/// * For `p == 1` (the fully-connected GEMV) row checksums degenerate into
///   duplication, so only the column invariant is kept: detect + recompute,
///   no location.
///
/// Every checksum/verification/recompute operation is charged to
/// [`AbftEvents::overhead`].
#[allow(clippy::too_many_arguments)]
pub fn checked_gemm_i64<A: Arithmetic>(
    arith: &mut A,
    a: &[i64],
    b: &[i64],
    out: &mut [i64],
    m: usize,
    k: usize,
    p: usize,
    recompute_on_detect: bool,
    events: &mut AbftEvents,
) {
    plain_gemm_i64(arith, a, b, out, m, k, p);
    if p == 1 {
        checked_gemv_verify(arith, a, b, out, m, k, recompute_on_detect, events);
        return;
    }
    let sums = GemmChecksums::prepare(a, b, m, k, p, events);
    let (bad_rows, bad_cols) = sums.mismatches(out, m, p, events);
    if bad_rows.is_empty() && bad_cols.is_empty() {
        return;
    }
    events.detected += 1;
    if correct_single(out, p, &bad_rows, &bad_cols) {
        events.corrected += 1;
        return;
    }
    if !recompute_on_detect {
        events.uncorrected += 1;
        return;
    }
    // The recompute runs on the same faulty backend, so it may be struck
    // again — retry until the checksums verify (or a single stray error can
    // be patched), up to the recovery budget.
    for _ in 0..MAX_RECOMPUTES {
        events.recomputes += 1;
        plain_gemm_i64(arith, a, b, out, m, k, p);
        let mkp = (m * k * p) as u64;
        events.charge(mkp, mkp);
        let (bad_rows, bad_cols) = sums.mismatches(out, m, p, events);
        if bad_rows.is_empty() && bad_cols.is_empty()
            || correct_single(out, p, &bad_rows, &bad_cols)
        {
            events.corrected += 1;
            return;
        }
    }
    events.uncorrected += 1;
}

/// Column-checksum verification of a GEMV result (`p == 1`): the single
/// invariant `Σ out == (e^T A) · b` detects but cannot locate, so repair is
/// recompute-only.
#[allow(clippy::too_many_arguments)]
fn checked_gemv_verify<A: Arithmetic>(
    arith: &mut A,
    a: &[i64],
    b: &[i64],
    out: &mut [i64],
    m: usize,
    k: usize,
    recompute_on_detect: bool,
    events: &mut AbftEvents,
) {
    // `i128` accumulation for the same reason as `GemmChecksums`: the single
    // column checksum sums K·M products of worst-case magnitudes.
    let expected = |events: &mut AbftEvents| -> i128 {
        let mut col_a = vec![0i128; k];
        for o in 0..m {
            for (q, ca) in col_a.iter_mut().enumerate() {
                *ca += i128::from(a[o * k + q]);
            }
        }
        let exp: i128 = col_a
            .iter()
            .zip(b.iter())
            .map(|(&ca, &bv)| ca * i128::from(bv))
            .sum();
        let (m64, k64) = (m as u64, k as u64);
        events.charge(k64, k64 * m64.saturating_sub(1) + k64.saturating_sub(1));
        exp
    };
    let actual = |out: &[i64], events: &mut AbftEvents| -> i128 {
        events.charge(0, (m as u64).saturating_sub(1));
        out.iter().map(|&v| i128::from(v)).sum()
    };
    let exp = expected(events);
    if actual(out, events) == exp {
        return;
    }
    events.detected += 1;
    if !recompute_on_detect {
        events.uncorrected += 1;
        return;
    }
    for _ in 0..MAX_RECOMPUTES {
        events.recomputes += 1;
        plain_gemm_i64(arith, a, b, out, m, k, 1);
        let mk = (m * k) as u64;
        events.charge(mk, mk);
        if actual(out, events) == exp {
            events.corrected += 1;
            return;
        }
    }
    events.uncorrected += 1;
}

/// Verify (and repair) an `f32` GEMM product that was computed by the fast
/// planned engine and possibly corrupted by a
/// [`wgft_faultsim::GemmFaultInjector`].
///
/// The invariant comparisons run in `f64` against a tolerance derived from
/// the actual operand magnitudes: the worst-case rounding error of a
/// `k`-term `f32` dot product is proportional to `k · ε · Σ|a||b|`, so the
/// per-row/column tolerance is that bound (times a safety factor) computed
/// from the very values being summed — large activations widen it, small
/// ones tighten it, and a fault-free product never trips it.
///
/// A single out-of-tolerance row/column pair is corrected in place with the
/// row delta; anything else is recomputed with [`wgft_tensor::gemm_f32`]
/// (the planned engine's own kernel). Checksum work is charged to
/// [`AbftEvents::overhead`] with the same op-counting conventions as the
/// integer variant.
#[allow(clippy::too_many_arguments)]
pub fn verify_gemm_f32(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    p: usize,
    recompute_on_detect: bool,
    events: &mut AbftEvents,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * p);
    debug_assert_eq!(out.len(), m * p);
    if m == 0 || k == 0 || p == 0 {
        return;
    }
    // Rounding-error headroom: worst-case f32 accumulation error plus a wide
    // safety factor. A bit flip in an exponent or high mantissa bit moves a
    // value far beyond this; flips below it are numerically indistinguishable
    // from rounding and harmless by the same argument.
    let eps = f64::from(f32::EPSILON);
    let rel = 32.0 * eps * (k + p) as f64;

    let mut col_a = vec![0f64; k];
    let mut abs_col_a = vec![0f64; k];
    for o in 0..m {
        for q in 0..k {
            let v = f64::from(a[o * k + q]);
            col_a[q] += v;
            abs_col_a[q] += v.abs();
        }
    }
    let mut row_b = vec![0f64; k];
    let mut abs_row_b = vec![0f64; k];
    for q in 0..k {
        for j in 0..p {
            let v = f64::from(b[q * p + j]);
            row_b[q] += v;
            abs_row_b[q] += v.abs();
        }
    }
    let (m64, k64, p64) = (m as u64, k as u64, p as u64);
    events.charge(
        m64 * k64 + k64 * p64,
        k64 * m64.saturating_sub(1)
            + k64 * p64.saturating_sub(1)
            + m64 * k64.saturating_sub(1)
            + k64.saturating_sub(1) * p64
            + m64 * p64.saturating_sub(1)
            + m64.saturating_sub(1) * p64,
    );

    let mismatches = |out: &[f32]| -> Mismatches<f64> {
        let mut bad_rows = Vec::new();
        for o in 0..m {
            let mut exp = 0f64;
            let mut bound = 0f64;
            for q in 0..k {
                let v = f64::from(a[o * k + q]);
                exp += v * row_b[q];
                bound += v.abs() * abs_row_b[q];
            }
            let actual: f64 = out[o * p..(o + 1) * p].iter().map(|&x| f64::from(x)).sum();
            if (actual - exp).abs() > rel * bound + f64::MIN_POSITIVE || !actual.is_finite() {
                bad_rows.push((o, exp - actual));
            }
        }
        let mut bad_cols = Vec::new();
        for j in 0..p {
            let mut exp = 0f64;
            let mut bound = 0f64;
            let mut actual = 0f64;
            for q in 0..k {
                let bv = f64::from(b[q * p + j]);
                exp += col_a[q] * bv;
                bound += abs_col_a[q] * bv.abs();
            }
            for o in 0..m {
                actual += f64::from(out[o * p + j]);
            }
            if (actual - exp).abs() > rel * bound + f64::MIN_POSITIVE || !actual.is_finite() {
                bad_cols.push((j, exp - actual));
            }
        }
        (bad_rows, bad_cols)
    };

    let (bad_rows, bad_cols) = mismatches(out);
    if bad_rows.is_empty() && bad_cols.is_empty() {
        return;
    }
    events.detected += 1;
    if let ([(o, dr)], [(j, dc)]) = (bad_rows.as_slice(), bad_cols.as_slice()) {
        // Like the integer path, the row and column deltas must agree — they
        // are two views of the same single corrupted element. Disagreement
        // (beyond rounding) means several errors aliasing as one; repairing
        // with either delta would patch the wrong value, so fall through to
        // the recompute instead.
        let agree = (dr - dc).abs() <= 1e-2 * dr.abs().max(dc.abs()) + f64::MIN_POSITIVE;
        let repaired = f64::from(out[o * p + j]) + dr;
        if agree && repaired.is_finite() {
            out[o * p + j] = repaired as f32;
            events.corrected += 1;
            return;
        }
    }
    if !recompute_on_detect {
        events.uncorrected += 1;
        return;
    }
    events.recomputes += 1;
    wgft_tensor::gemm_f32(a, b, out, m, k, p);
    let mkp = m64 * k64 * p64;
    events.charge(mkp, mkp);
    events.corrected += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_faultsim::ExactArithmetic;

    fn fixture(m: usize, k: usize, p: usize) -> (Vec<i64>, Vec<i64>) {
        let a: Vec<i64> = (0..m * k).map(|i| ((i * 7 % 23) as i64) - 11).collect();
        let b: Vec<i64> = (0..k * p).map(|i| ((i * 5 % 17) as i64) - 8).collect();
        (a, b)
    }

    fn reference(a: &[i64], b: &[i64], m: usize, k: usize, p: usize) -> Vec<i64> {
        let mut out = vec![0i64; m * p];
        for o in 0..m {
            for j in 0..p {
                out[o * p + j] = (0..k).map(|q| a[o * k + q] * b[q * p + j]).sum();
            }
        }
        out
    }

    #[test]
    fn plain_gemm_matches_reference_and_counts_ops() {
        let (m, k, p) = (4, 5, 6);
        let (a, b) = fixture(m, k, p);
        let mut arith = ExactArithmetic::new();
        arith.begin_layer(2);
        let mut out = vec![0i64; m * p];
        plain_gemm_i64(&mut arith, &a, &b, &mut out, m, k, p);
        assert_eq!(out, reference(&a, &b, m, k, p));
        assert_eq!(arith.counters().layer(2).executed.mul, (m * k * p) as u64);
        assert_eq!(arith.counters().layer(2).executed.add, (m * k * p) as u64);
    }

    #[test]
    fn clean_product_verifies_without_events() {
        let (m, k, p) = (3, 7, 5);
        let (a, b) = fixture(m, k, p);
        let mut arith = ExactArithmetic::new();
        let mut out = vec![0i64; m * p];
        let mut events = AbftEvents::new();
        checked_gemm_i64(&mut arith, &a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(out, reference(&a, &b, m, k, p));
        assert_eq!(events.detected, 0);
        assert_eq!(events.corrected, 0);
        assert_eq!(events.uncorrected, 0);
        assert!(events.overhead.total() > 0, "checksums are never free");
    }

    /// The acceptance-criterion property: a single corrupted GEMM output
    /// element — any element, any magnitude — is located and corrected
    /// exactly.
    #[test]
    fn single_injected_fault_is_located_and_corrected_exactly() {
        let (m, k, p) = (4, 6, 9);
        let (a, b) = fixture(m, k, p);
        let truth = reference(&a, &b, m, k, p);
        for victim in 0..m * p {
            for flip in [1i64, -1, 1 << 7, -(1 << 13), 1 << 20] {
                let mut out = truth.clone();
                out[victim] += flip;
                let sums = GemmChecksums::prepare(&a, &b, m, k, p, &mut AbftEvents::new());
                let (bad_rows, bad_cols) = sums.mismatches(&out, m, p, &mut AbftEvents::new());
                assert_eq!(bad_rows.len(), 1, "one bad row for victim {victim}");
                assert_eq!(bad_cols.len(), 1, "one bad col for victim {victim}");
                assert_eq!(bad_rows[0].0, victim / p);
                assert_eq!(bad_cols[0].0, victim % p);
                assert!(correct_single(&mut out, p, &bad_rows, &bad_cols));
                assert_eq!(
                    out, truth,
                    "victim {victim} flip {flip} must repair exactly"
                );
            }
        }
    }

    #[test]
    fn multi_error_falls_back_to_recompute() {
        use wgft_faultsim::{BitErrorRate, FaultConfig, FaultyArithmetic};
        use wgft_fixedpoint::BitWidth;
        // A backend that faults every operation: the product is corrupted far
        // beyond single-error repair, so the recompute fallback must engage
        // (and, with the fault storm still raging, report the outcome
        // honestly rather than claiming success).
        let (m, k, p) = (3, 4, 5);
        let (a, b) = fixture(m, k, p);
        let config = FaultConfig::new(BitErrorRate::new(1.0), BitWidth::W8);
        let mut arith = FaultyArithmetic::new(config, 9);
        let mut out = vec![0i64; m * p];
        let mut events = AbftEvents::new();
        checked_gemm_i64(&mut arith, &a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(events.detected, 1);
        assert!(events.recomputes >= 1, "the fallback must engage");
        assert_eq!(events.corrected + events.uncorrected, 1);

        // Without the fallback the detection is recorded as uncorrected.
        let config = FaultConfig::new(BitErrorRate::new(1.0), BitWidth::W8);
        let mut arith = FaultyArithmetic::new(config, 9);
        let mut events = AbftEvents::new();
        checked_gemm_i64(&mut arith, &a, &b, &mut out, m, k, p, false, &mut events);
        assert_eq!(events.detected, 1);
        assert_eq!(events.recomputes, 0);
        assert_eq!(events.uncorrected, 1);
    }

    #[test]
    fn gemv_detects_and_recomputes() {
        let (m, k) = (6, 5);
        let (a, b) = fixture(m, k, 1);
        let truth = reference(&a, &b, m, k, 1);
        // Clean pass.
        let mut arith = ExactArithmetic::new();
        let mut out = vec![0i64; m];
        let mut events = AbftEvents::new();
        checked_gemm_i64(&mut arith, &a, &b, &mut out, m, k, 1, true, &mut events);
        assert_eq!(out, truth);
        assert_eq!(events.detected, 0);
        // Hand-corrupt and verify through the GEMV invariant alone.
        let mut corrupted = truth.clone();
        corrupted[2] += 1 << 9;
        let mut arith = ExactArithmetic::new();
        let mut events = AbftEvents::new();
        checked_gemv_verify(&mut arith, &a, &b, &mut corrupted, m, k, true, &mut events);
        assert_eq!(events.detected, 1);
        assert_eq!(events.recomputes, 1);
        assert_eq!(events.corrected, 1);
        assert_eq!(corrupted, truth, "recompute on exact arithmetic repairs");
    }

    #[test]
    fn checksum_overhead_is_small_relative_to_the_gemm() {
        let (m, k, p) = (16, 32, 64);
        let (a, b) = fixture(m, k, p);
        let mut arith = ExactArithmetic::new();
        let mut out = vec![0i64; m * p];
        let mut events = AbftEvents::new();
        checked_gemm_i64(&mut arith, &a, &b, &mut out, m, k, p, true, &mut events);
        let gemm_ops = 2 * (m * k * p) as u64;
        assert!(
            events.overhead.total() * 4 < gemm_ops,
            "O(MK+KP+MP) checksums must stay well under the O(MKP) GEMM \
             ({} vs {gemm_ops})",
            events.overhead.total()
        );
    }

    /// The i128-accumulation regression: checksum sums over K·M / K·P
    /// products of extreme accumulator-domain magnitudes exceed `i64` even
    /// though every product element fits. The old `i64` accumulation
    /// panicked here in debug builds (and wrapped in release); with `i128`
    /// the clean product verifies quietly and a single injected error is
    /// still located and corrected exactly.
    #[test]
    fn checksums_survive_extreme_magnitudes_without_overflow() {
        // Every product element ≈ 2·2^60 fits i64, but a row checksum sums
        // p = 4 of them (≈ 2^63) and the expected-row accumulation sums
        // k·A·B terms of the same size — both beyond i64.
        let (m, k, p) = (3usize, 2usize, 4usize);
        let big = 1i64 << 30;
        let a: Vec<i64> = (0..m * k).map(|i| big + i as i64).collect();
        let b: Vec<i64> = (0..k * p).map(|i| big - i as i64 * 13).collect();
        let truth = reference(&a, &b, m, k, p);
        assert!(
            truth.iter().all(|&v| v > 1i64 << 60),
            "fixture must exercise near-full accumulators"
        );

        // Clean pass: no detections, no corrections.
        let mut arith = ExactArithmetic::new();
        let mut out = vec![0i64; m * p];
        let mut events = AbftEvents::new();
        checked_gemm_i64(&mut arith, &a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(out, truth);
        assert_eq!(events.detected, 0, "extreme magnitudes must not overflow");

        // A single injected error at extreme magnitude is repaired exactly.
        for victim in [0usize, m * p - 1] {
            let mut corrupted = truth.clone();
            corrupted[victim] ^= 1 << 37;
            let sums = GemmChecksums::prepare(&a, &b, m, k, p, &mut AbftEvents::new());
            let (bad_rows, bad_cols) = sums.mismatches(&corrupted, m, p, &mut AbftEvents::new());
            assert!(correct_single(&mut corrupted, p, &bad_rows, &bad_cols));
            assert_eq!(corrupted, truth, "victim {victim} must repair exactly");
        }

        // The GEMV invariant survives large K at extreme Q-format values:
        // each output fits (700 · 2^52 ≈ 2^61.5) but the column checksum
        // sums k·m ≈ 2^18.7 products of ~2^52 — beyond i64.
        let (m, k) = (600usize, 700usize);
        let a: Vec<i64> = (0..m * k).map(|i| (1i64 << 40) - (i as i64 % 97)).collect();
        let bvec: Vec<i64> = (0..k).map(|i| (1i64 << 12) + i as i64 % 31).collect();
        let mut out = vec![0i64; m];
        let mut arith = ExactArithmetic::new();
        let mut events = AbftEvents::new();
        checked_gemm_i64(&mut arith, &a, &bvec, &mut out, m, k, 1, true, &mut events);
        assert_eq!(out, reference(&a, &bvec, m, k, 1));
        assert_eq!(events.detected, 0);
        // And still detects a flip at those magnitudes.
        out[17] ^= 1 << 50;
        let mut arith = ExactArithmetic::new();
        let mut events = AbftEvents::new();
        checked_gemv_verify(&mut arith, &a, &bvec, &mut out, m, k, true, &mut events);
        assert_eq!(events.detected, 1);
        assert_eq!(events.corrected, 1, "recompute on exact arithmetic repairs");
        assert_eq!(out, reference(&a, &bvec, m, k, 1));
    }

    /// A delta that would push the repaired element outside `i64` cannot be
    /// a single corrupted element; the repair must refuse it (and recompute)
    /// instead of wrapping.
    #[test]
    fn out_of_domain_repair_delta_is_refused() {
        let (m, k, p) = (3usize, 2usize, 4usize);
        let (a, b) = fixture(m, k, p);
        let truth = reference(&a, &b, m, k, p);
        // Fabricate a mismatch signature whose delta overflows the element.
        let bad_rows = [(1usize, i128::from(i64::MAX))];
        let bad_cols = [(2usize, i128::from(i64::MAX))];
        let mut out = truth.clone();
        out[p + 2] = i64::MAX - 5;
        assert!(!correct_single(&mut out, p, &bad_rows, &bad_cols));
        assert_eq!(out[p + 2], i64::MAX - 5, "no partial repair");
    }

    #[test]
    fn f32_verification_never_false_positives_on_clean_products() {
        // The BER-0 half of the acceptance criterion: across sizes and value
        // ranges, a fault-free f32 product must never trip the tolerance.
        for &(m, k, p) in &[
            (1usize, 1usize, 1usize),
            (4, 16, 9),
            (8, 64, 33),
            (16, 128, 5),
        ] {
            for &scale in &[1e-3f32, 1.0, 1e3] {
                let a: Vec<f32> = (0..m * k)
                    .map(|i| (((i * 31 % 53) as f32) - 26.0) * scale * 0.037)
                    .collect();
                let b: Vec<f32> = (0..k * p)
                    .map(|i| (((i * 17 % 41) as f32) - 20.0) * scale * 0.051)
                    .collect();
                let mut out = vec![0f32; m * p];
                wgft_tensor::gemm_f32(&a, &b, &mut out, m, k, p);
                let mut events = AbftEvents::new();
                verify_gemm_f32(&a, &b, &mut out, m, k, p, true, &mut events);
                assert_eq!(
                    events.detected, 0,
                    "clean {m}x{k}x{p} at scale {scale} must not detect"
                );
                assert_eq!(events.corrected + events.uncorrected, 0);
            }
        }
    }

    /// Degenerate value ranges — all-zero operands, constant-valued
    /// operands, an all-zero row inside an otherwise live GEMM — collapse
    /// the value-range-derived tolerance to (near) zero. That zero-width
    /// tolerance must neither flag fault-free products (the invariant holds
    /// *exactly* when no rounding is possible) nor miss real flips (any
    /// nonzero deviation from an exact-zero expectation is a fault).
    #[test]
    fn f32_degenerate_ranges_neither_false_positive_nor_miss_flips() {
        let (m, k, p) = (4usize, 8usize, 6usize);

        // All-zero operands: zero-width range everywhere.
        let a = vec![0f32; m * k];
        let b = vec![0f32; k * p];
        let mut out = vec![0f32; m * p];
        wgft_tensor::gemm_f32(&a, &b, &mut out, m, k, p);
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(events.detected, 0, "all-zero GEMM must verify quietly");
        // A flip of an exactly-zero product element — even one landing on a
        // tiny denormal — must be detected and repaired to zero.
        for bit in [27u32, 30, 10] {
            let mut corrupted = vec![0f32; m * p];
            let victim = 2 * p + 3;
            corrupted[victim] = f32::from_bits(corrupted[victim].to_bits() ^ (1 << bit));
            let mut events = AbftEvents::new();
            verify_gemm_f32(&a, &b, &mut corrupted, m, k, p, true, &mut events);
            assert_eq!(events.detected, 1, "bit {bit}: flip in a zero GEMM");
            assert_eq!(events.corrected, 1);
            assert_eq!(corrupted[victim], 0.0, "bit {bit}: repaired to zero");
        }

        // Constant-valued operands (constant layer output): the checksums
        // are exact multiples, rounding is still covered by the bound.
        let a = vec![0.1f32; m * k];
        let b = vec![-0.3f32; k * p];
        let mut out = vec![0f32; m * p];
        wgft_tensor::gemm_f32(&a, &b, &mut out, m, k, p);
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(events.detected, 0, "constant GEMM must verify quietly");
        let mut corrupted = out.clone();
        corrupted[5] = f32::from_bits(corrupted[5].to_bits() ^ (1 << 28));
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut corrupted, m, k, p, true, &mut events);
        assert_eq!(events.detected, 1);
        assert!(events.corrected >= 1);
        // Delta-based repair restores the value to within float rounding
        // (the documented contract of the f32 repair path).
        for (i, (got, want)) in corrupted.iter().zip(out.iter()).enumerate() {
            assert!(
                (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                "element {i}: {got} vs {want}"
            );
        }

        // A zero row inside an otherwise live GEMM: that row's tolerance is
        // exactly zero while its neighbours' is not.
        let mut a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 % 29) as f32) * 0.21 - 2.9)
            .collect();
        a[k..2 * k].fill(0.0); // row 1 of `a` is dead
        let b: Vec<f32> = (0..k * p)
            .map(|i| ((i * 7 % 31) as f32) * 0.17 - 2.5)
            .collect();
        let mut out = vec![0f32; m * p];
        wgft_tensor::gemm_f32(&a, &b, &mut out, m, k, p);
        assert!(out[p..2 * p].iter().all(|&v| v == 0.0));
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(events.detected, 0, "dead row must not false-positive");
        let mut corrupted = out.clone();
        corrupted[p + 2] = f32::from_bits(corrupted[p + 2].to_bits() ^ (1 << 26));
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut corrupted, m, k, p, true, &mut events);
        assert_eq!(events.detected, 1, "flip in the dead row is a fault");
        assert_eq!(corrupted[p + 2], 0.0, "repaired back to exact zero");
    }

    /// Two errors aliasing as one (one large flip plus a second, sub-column-
    /// tolerance error in the same row) present a single-bad-row/-column
    /// signature whose deltas disagree: the repair path must refuse the
    /// mismatched delta and recompute instead of "correcting" with it.
    #[test]
    fn f32_disagreeing_deltas_recompute_instead_of_misrepairing() {
        let (m, k, p) = (6usize, 24usize, 10usize);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 % 29) as f32) * 0.21 - 2.9)
            .collect();
        let b: Vec<f32> = (0..k * p)
            .map(|i| ((i * 7 % 31) as f32) * 0.17 - 2.5)
            .collect();
        let mut truth = vec![0f32; m * p];
        wgft_tensor::gemm_f32(&a, &b, &mut truth, m, k, p);
        // The verification tolerance of a column, reconstructed from the
        // same formula `verify_gemm_f32` uses.
        let rel = 32.0 * f64::from(f32::EPSILON) * (k + p) as f64;
        let col_bound: f64 = (0..k)
            .map(|q| {
                let abs_col: f64 = (0..m).map(|o| f64::from(a[o * k + q]).abs()).sum();
                abs_col * f64::from(b[q * p + 7]).abs()
            })
            .sum();
        let tol = rel * col_bound;
        // Large error at (3, 5); second error at (3, 7) big enough to make
        // the two deltas disagree, small enough that column 7 stays quiet.
        let mut out = truth.clone();
        out[3 * p + 5] += (50.0 * tol) as f32;
        out[3 * p + 7] += (0.9 * tol) as f32;
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(events.detected, 1);
        assert_eq!(
            events.recomputes, 1,
            "disagreeing deltas must recompute, not mis-repair"
        );
        for (i, (got, want)) in out.iter().zip(truth.iter()).enumerate() {
            assert!(
                (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                "element {i}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn f32_verification_repairs_an_injected_flip() {
        let (m, k, p) = (6, 24, 10);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 % 29) as f32) * 0.21 - 2.9)
            .collect();
        let b: Vec<f32> = (0..k * p)
            .map(|i| ((i * 7 % 31) as f32) * 0.17 - 2.5)
            .collect();
        let mut truth = vec![0f32; m * p];
        wgft_tensor::gemm_f32(&a, &b, &mut truth, m, k, p);
        // Flip a high exponent bit of one element.
        let mut out = truth.clone();
        let victim = 3 * p + 7;
        out[victim] = f32::from_bits(out[victim].to_bits() ^ (1 << 27));
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut out, m, k, p, true, &mut events);
        assert_eq!(events.detected, 1);
        assert_eq!(events.corrected, 1);
        for (i, (got, want)) in out.iter().zip(truth.iter()).enumerate() {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "element {i}: {got} vs {want}"
            );
        }
        // A NaN-producing corruption is caught and recomputed away.
        let mut out = truth.clone();
        out[victim] = f32::NAN;
        let mut events = AbftEvents::new();
        verify_gemm_f32(&a, &b, &mut out, m, k, p, true, &mut events);
        assert!(out.iter().all(|v| v.is_finite()));
        assert_eq!(events.detected, 1);
        assert!(events.corrected >= 1);
    }
}
