//! Protection policies and event accounting for the executable ABFT engine.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::AddAssign;
use wgft_faultsim::OpCount;

/// How one layer's multiply-accumulate work is protected at execution time.
///
/// Unlike [`wgft_faultsim::ProtectionPlan`] — which *masks* faults before
/// they strike (an idealized model of hardware redundancy) — every mode here
/// runs real detection/correction code around the faulty computation and
/// pays for it in counted arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbftMode {
    /// No execution-time protection.
    #[default]
    Off,
    /// Range restriction only: winograd-domain values and output
    /// accumulators are clipped to a calibrated per-layer range. Detector
    /// free — a fault that stays in range passes through.
    Range,
    /// Checksummed GEMMs plus transform guards: single errors in a GEMM
    /// output are located and corrected exactly; transform faults and
    /// multi-error GEMMs fall back to recompute (when enabled on the
    /// policy).
    Checksum,
    /// [`AbftMode::Checksum`] and [`AbftMode::Range`] composed.
    ChecksumRange,
}

impl AbftMode {
    /// Whether checksummed GEMMs and transform guards run.
    #[must_use]
    pub const fn checks(self) -> bool {
        matches!(self, AbftMode::Checksum | AbftMode::ChecksumRange)
    }

    /// Whether range-restriction clipping runs.
    #[must_use]
    pub const fn clips(self) -> bool {
        matches!(self, AbftMode::Range | AbftMode::ChecksumRange)
    }

    /// Short label used in reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            AbftMode::Off => "off",
            AbftMode::Range => "range",
            AbftMode::Checksum => "checksum",
            AbftMode::ChecksumRange => "checksum+range",
        }
    }
}

impl fmt::Display for AbftMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Per-layer execution-time protection policy.
///
/// Composes with a [`wgft_faultsim::ProtectionPlan`]: the plan decides which
/// faults are masked *inside* the arithmetic, the policy decides which
/// detection/correction machinery runs *around* it. A default mode applies
/// to every compute layer unless overridden per layer id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbftPolicy {
    default_mode: AbftMode,
    overrides: BTreeMap<usize, AbftMode>,
    /// Whether an uncorrectable detection (multi-error GEMM, failed
    /// transform guard) triggers a recompute of the affected stage.
    pub recompute_on_detect: bool,
    /// Headroom multiplier applied to calibrated ranges before clipping
    /// (guards against evaluation images exceeding the calibration set).
    pub range_margin: f64,
}

impl Default for AbftPolicy {
    fn default() -> Self {
        Self::off()
    }
}

impl AbftPolicy {
    /// No execution-time protection on any layer.
    #[must_use]
    pub fn off() -> Self {
        Self {
            default_mode: AbftMode::Off,
            overrides: BTreeMap::new(),
            recompute_on_detect: false,
            range_margin: 2.0,
        }
    }

    /// The given mode on every layer, with recompute-on-detect enabled for
    /// checksummed modes.
    #[must_use]
    pub fn uniform(mode: AbftMode) -> Self {
        Self {
            default_mode: mode,
            recompute_on_detect: mode.checks(),
            ..Self::off()
        }
    }

    /// Checksummed GEMMs + transform guards + recompute on every layer (the
    /// strongest executable scheme).
    #[must_use]
    pub fn checksum() -> Self {
        Self::uniform(AbftMode::Checksum)
    }

    /// Range restriction only, on every layer (the detector-free baseline).
    #[must_use]
    pub fn range_only() -> Self {
        Self::uniform(AbftMode::Range)
    }

    /// Checksum + range restriction on every layer.
    #[must_use]
    pub fn checksum_range() -> Self {
        Self::uniform(AbftMode::ChecksumRange)
    }

    /// Override the mode of one layer.
    #[must_use]
    pub fn with_layer_mode(mut self, layer: usize, mode: AbftMode) -> Self {
        self.overrides.insert(layer, mode);
        self
    }

    /// Disable or enable the recompute fallback.
    #[must_use]
    pub fn with_recompute(mut self, recompute: bool) -> Self {
        self.recompute_on_detect = recompute;
        self
    }

    /// Replace the range-clipping headroom multiplier (floored at 1.0).
    #[must_use]
    pub fn with_range_margin(mut self, margin: f64) -> Self {
        self.range_margin = if margin.is_finite() {
            margin.max(1.0)
        } else {
            1.0
        };
        self
    }

    /// The mode applied to `layer`.
    #[must_use]
    pub fn mode_for(&self, layer: usize) -> AbftMode {
        self.overrides
            .get(&layer)
            .copied()
            .unwrap_or(self.default_mode)
    }

    /// Whether the policy protects nothing at all.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.default_mode == AbftMode::Off && self.overrides.values().all(|m| *m == AbftMode::Off)
    }
}

/// Everything the protection engine observed during one or more protected
/// executions: detection/correction events plus the exact extra arithmetic
/// the protection itself performed.
///
/// Counts are plain sums, so events from shards, batches or images can be
/// merged in any order with identical results — the property the sharded
/// `protection_tradeoff` sweep relies on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbftEvents {
    /// Checksum or guard mismatches observed (one per failed verification).
    pub detected: u64,
    /// Errors repaired — located-and-corrected exactly, or cleaned by a
    /// recompute that subsequently verified.
    pub corrected: u64,
    /// Detections that could not be repaired (no recompute, or the recompute
    /// itself failed verification).
    pub uncorrected: u64,
    /// Recompute fallbacks taken.
    pub recomputes: u64,
    /// Values clamped by range restriction.
    pub clipped: u64,
    /// Extra multiply/add work performed by checksums, guards, range checks
    /// and recomputes — the measured arithmetic cost of the protection.
    pub overhead: OpCount,
}

impl AbftEvents {
    /// Fresh, empty event record.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge protection arithmetic to the overhead tally.
    pub fn charge(&mut self, mul: u64, add: u64) {
        self.overhead.mul += mul;
        self.overhead.add += add;
    }

    /// Total detection-pipeline events (useful in assertions).
    #[must_use]
    pub fn total_detected(&self) -> u64 {
        self.detected
    }
}

impl AddAssign for AbftEvents {
    fn add_assign(&mut self, rhs: Self) {
        self.detected += rhs.detected;
        self.corrected += rhs.corrected;
        self.uncorrected += rhs.uncorrected;
        self.recomputes += rhs.recomputes;
        self.clipped += rhs.clipped;
        self.overhead += rhs.overhead;
    }
}

impl fmt::Display for AbftEvents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "detected {} corrected {} uncorrected {} recomputes {} clipped {} overhead {}mul+{}add",
            self.detected,
            self.corrected,
            self.uncorrected,
            self.recomputes,
            self.clipped,
            self.overhead.mul,
            self.overhead.add
        )
    }
}

/// Calibrated value ranges of one compute layer (maxima of fault-free
/// absolute values, before the policy's margin is applied).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerRanges {
    /// Max |value| of winograd-domain transformed inputs (`V = Bᵀ d B`).
    pub v_max: i64,
    /// Max |value| of winograd-domain GEMM outputs (before `Aᵀ M A`).
    pub gemm_max: i64,
    /// Max |value| of the layer's output accumulators.
    pub acc_max: i64,
}

impl LayerRanges {
    /// Fold another observation into the maxima.
    pub fn observe(&mut self, other: &LayerRanges) {
        self.v_max = self.v_max.max(other.v_max);
        self.gemm_max = self.gemm_max.max(other.gemm_max);
        self.acc_max = self.acc_max.max(other.acc_max);
    }

    /// The clipping bound for a calibrated maximum under `margin`.
    #[must_use]
    pub fn bound(max: i64, margin: f64) -> i64 {
        let scaled = (max.max(1) as f64 * margin.max(1.0)).ceil();
        if scaled >= i64::MAX as f64 {
            i64::MAX
        } else {
            scaled as i64
        }
    }
}

/// Per-layer calibrated ranges for one (network, algorithm) pair, produced
/// by a fault-free calibration pass and consumed by range restriction.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbftCalibration {
    layers: Vec<LayerRanges>,
}

impl AbftCalibration {
    /// Empty calibration for `layer_count` compute layers.
    #[must_use]
    pub fn new(layer_count: usize) -> Self {
        Self {
            layers: vec![LayerRanges::default(); layer_count],
        }
    }

    /// Ranges of one layer (`None` past the calibrated layer count).
    #[must_use]
    pub fn layer(&self, layer: usize) -> Option<&LayerRanges> {
        self.layers.get(layer)
    }

    /// Mutable ranges of one layer, growing the table on demand (used by the
    /// calibration recorder).
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerRanges {
        if layer >= self.layers.len() {
            self.layers.resize(layer + 1, LayerRanges::default());
        }
        &mut self.layers[layer]
    }

    /// Number of calibrated layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether no layer has been calibrated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates_and_labels() {
        assert!(!AbftMode::Off.checks() && !AbftMode::Off.clips());
        assert!(AbftMode::Range.clips() && !AbftMode::Range.checks());
        assert!(AbftMode::Checksum.checks() && !AbftMode::Checksum.clips());
        assert!(AbftMode::ChecksumRange.checks() && AbftMode::ChecksumRange.clips());
        assert_eq!(AbftMode::ChecksumRange.to_string(), "checksum+range");
    }

    #[test]
    fn policy_defaults_and_overrides() {
        let policy = AbftPolicy::checksum().with_layer_mode(2, AbftMode::Off);
        assert_eq!(policy.mode_for(0), AbftMode::Checksum);
        assert_eq!(policy.mode_for(2), AbftMode::Off);
        assert!(policy.recompute_on_detect);
        assert!(!policy.is_off());
        assert!(AbftPolicy::off().is_off());
        assert!(!AbftPolicy::range_only().recompute_on_detect);
        assert!(AbftPolicy::checksum_range().mode_for(9).clips());
    }

    #[test]
    fn range_margin_is_floored_and_sanitized() {
        assert_eq!(AbftPolicy::off().with_range_margin(0.5).range_margin, 1.0);
        assert_eq!(
            AbftPolicy::off().with_range_margin(f64::NAN).range_margin,
            1.0
        );
        assert_eq!(AbftPolicy::off().with_range_margin(3.0).range_margin, 3.0);
    }

    #[test]
    fn events_merge_additively() {
        let mut a = AbftEvents::new();
        a.detected = 1;
        a.charge(10, 20);
        let mut b = AbftEvents::new();
        b.corrected = 2;
        b.clipped = 3;
        b.charge(1, 2);
        a += b;
        assert_eq!(a.detected, 1);
        assert_eq!(a.corrected, 2);
        assert_eq!(a.clipped, 3);
        assert_eq!(a.overhead, OpCount { mul: 11, add: 22 });
        assert!(a.to_string().contains("corrected 2"));
    }

    #[test]
    fn calibration_grows_and_bounds_apply_margin() {
        let mut cal = AbftCalibration::new(1);
        cal.layer_mut(3).acc_max = 100;
        assert_eq!(cal.len(), 4);
        assert_eq!(cal.layer(3).unwrap().acc_max, 100);
        assert!(cal.layer(9).is_none());
        assert_eq!(LayerRanges::bound(100, 2.0), 200);
        assert_eq!(LayerRanges::bound(0, 2.0), 2, "floored at 1 before margin");
        assert!(!cal.is_empty());
    }

    #[test]
    fn policy_serde_round_trip() {
        let policy = AbftPolicy::checksum_range()
            .with_layer_mode(1, AbftMode::Range)
            .with_range_margin(1.5)
            .with_recompute(false);
        let json = serde_json::to_string(&policy).unwrap();
        let back: AbftPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, policy);
    }
}
