//! Protected convolution / fully-connected executors: the instrumented
//! kernels restructured around checksummed GEMMs, transform guards and
//! range restriction.
//!
//! The protected winograd executor runs the same three stages as the
//! unprotected instrumented kernel — input transform `V = Bᵀ d B`,
//! winograd-domain multiply-accumulate, output transform `Y = Aᵀ M A` —
//! with every stage's primitive operations still issued through the
//! (faulty) [`Arithmetic`] backend. What changes is the shape of the middle
//! stage: the per-tile element-wise products are batched into the `t²`
//! GEMMs `U_k (O×C) · V_k (C×P)` that production winograd engines execute,
//! which is exactly the shape classic ABFT checksums wrap. The transforms
//! are linear too, so a checksum carried through `Bᵀ·B` / `Aᵀ·A` guards
//! them at `O(t²)` cost per tile.
//!
//! The protected standard-convolution executor performs the im2col
//! factorization — weights `(O × C·k²)` times patches `(C·k² × P)` — and
//! wraps that single GEMM; a real GEMM engine multiplies the padding zeros
//! too, so the operation count is the dense `O·C·k²·P` rather than the
//! scalar kernel's padding-skipping count.

use crate::checksum::{checked_gemm_i64, plain_gemm_i64};
use crate::policy::{AbftEvents, AbftMode, LayerRanges};
use wgft_faultsim::{Arithmetic, OpCount};
use wgft_winograd::{
    integer_transform, ConvShape, MatrixSide, WinogradError, WinogradScratch, WinogradWeights,
};

/// Per-layer protection parameters, resolved from an
/// [`crate::AbftPolicy`] by the caller.
#[derive(Debug, Clone, Copy)]
pub struct AbftRun<'a> {
    /// The layer's protection mode.
    pub mode: AbftMode,
    /// Whether uncorrectable detections trigger a recompute.
    pub recompute: bool,
    /// Headroom multiplier for range clipping.
    pub margin: f64,
    /// Calibrated ranges of this layer (`None` disables clipping even in a
    /// clipping mode).
    pub ranges: Option<&'a LayerRanges>,
}

impl AbftRun<'_> {
    /// An unprotected run (used by calibration passes).
    #[must_use]
    pub fn off() -> Self {
        Self {
            mode: AbftMode::Off,
            recompute: false,
            margin: 1.0,
            ranges: None,
        }
    }
}

/// Reusable buffers for the protected executors (plus an embedded
/// [`WinogradScratch`] so `Off`-mode layers can run the stock instrumented
/// kernel without a second scratch object).
#[derive(Debug, Clone, Default)]
pub struct AbftScratch {
    /// Scratch for unprotected (`Off`-mode) winograd layers.
    pub wino: WinogradScratch,
    /// Scattered winograd-domain inputs, `(t², C, P)`.
    v: Vec<i64>,
    /// Winograd-domain GEMM products, `(t², O, P)`.
    m: Vec<i64>,
    /// Raw input tile, `t×t`.
    d: Vec<i64>,
    /// Transform intermediate, `t×t` (and `m×t` on the output side).
    tmp: Vec<i64>,
    /// One transformed tile, `t×t`.
    vtile: Vec<i64>,
    /// Per-coordinate weight matrix, `O×C`.
    u_k: Vec<i64>,
    /// One winograd-domain fibre, `t×t`.
    fibre: Vec<i64>,
    /// One output tile, `m×m`.
    y: Vec<i64>,
    /// im2col patch matrix for the standard path, `(C·k², P)`.
    im2col: Vec<i64>,
    /// Widened weight matrix for the standard/linear paths.
    a_mat: Vec<i64>,
}

impl AbftScratch {
    /// Fresh scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare_wino(&mut self, t: usize, m: usize, c: usize, o: usize, p: usize) {
        let t2 = t * t;
        resize(&mut self.v, t2 * c * p);
        resize(&mut self.m, t2 * o * p);
        resize(&mut self.d, t2);
        resize(&mut self.tmp, t2.max(m * t));
        resize(&mut self.vtile, t2);
        resize(&mut self.u_k, o * c);
        resize(&mut self.fibre, t2);
        resize(&mut self.y, m * m);
    }
}

fn resize(buf: &mut Vec<i64>, len: usize) {
    buf.clear();
    buf.resize(len, 0);
}

/// Executed-op delta of one layer between two counter snapshots (used to
/// charge recomputed transforms to the overhead tally exactly).
fn ops_since(arith: &impl Arithmetic, layer: usize, before: OpCount) -> OpCount {
    let now = arith.counters().layer(layer).executed;
    OpCount {
        mul: now.mul - before.mul,
        add: now.add - before.add,
    }
}

/// Verify the column-checksum invariant of `result = Coef · data · Coefᵀ`
/// with `Coef (rows×inner)`, `data (inner×inner)`, `result (rows×rows)`:
/// the column sums of `result` must equal `(e^T Coef) · data · Coefᵀ`,
/// computed on hardened arithmetic and charged to the overhead tally.
fn transform_guard_ok(
    coef: &[i32],
    rows: usize,
    inner: usize,
    data: &[i64],
    result: &[i64],
    events: &mut AbftEvents,
) -> bool {
    // e^T Coef — column sums of the constant matrix (free: compile-time
    // constants in hardware, but the data-dependent products below are not).
    let mut ca = vec![0i64; inner];
    for r in 0..rows {
        for (q, c) in ca.iter_mut().enumerate() {
            *c += i64::from(coef[r * inner + q]);
        }
    }
    // s = (e^T Coef) · data.
    let mut s = vec![0i64; inner];
    for (j, sj) in s.iter_mut().enumerate() {
        for (q, &c) in ca.iter().enumerate() {
            *sj += c * data[q * inner + j];
        }
    }
    // expected column sums: s · Coefᵀ.
    let mut ok = true;
    for j in 0..rows {
        let mut exp = 0i64;
        for (q, &sq) in s.iter().enumerate() {
            exp += sq * i64::from(coef[j * inner + q]);
        }
        let mut actual = 0i64;
        for i in 0..rows {
            actual += result[i * rows + j];
        }
        if actual != exp {
            ok = false;
        }
    }
    let (r64, i64n) = (rows as u64, inner as u64);
    events.charge(
        i64n * i64n + r64 * i64n,
        i64n * i64n.saturating_sub(1)
            + r64 * i64n.saturating_sub(1)
            + r64 * r64.saturating_sub(1)
            + r64,
    );
    ok
}

/// Clamp every value to `±bound`, charging one comparator (counted as an
/// add) per element and recording clip events.
fn clip_slice(values: &mut [i64], bound: i64, events: &mut AbftEvents) {
    for v in values.iter_mut() {
        if *v > bound {
            *v = bound;
            events.clipped += 1;
        } else if *v < -bound {
            *v = -bound;
            events.clipped += 1;
        }
    }
    events.charge(0, values.len() as u64);
}

/// Max |value| of a slice of accumulator-domain words, saturating at
/// `i64::MAX` — the observation the calibration recorders fold into
/// [`LayerRanges`]. Public so the fast uninstrumented calibration pass
/// (`QuantizedNetwork::calibrate_abft`) observes *exactly* the same
/// quantity as the instrumented recorders here.
#[must_use]
pub fn observe_max(values: &[i64]) -> i64 {
    values
        .iter()
        .map(|v| v.unsigned_abs().min(i64::MAX as u64) as i64)
        .max()
        .unwrap_or(0)
}

/// A guarded instrumented transform `out = Coef · data · Coefᵀ` with
/// recompute-on-detect: the transform runs through the faulty backend, the
/// guard runs on hardened arithmetic, and a failed guard re-runs the
/// transform once (charging its ops to the overhead tally).
#[allow(clippy::too_many_arguments)]
fn guarded_transform<A: Arithmetic>(
    arith: &mut A,
    layer: usize,
    coef: &[i32],
    rows: usize,
    inner: usize,
    data: &[i64],
    tmp: &mut [i64],
    out: &mut [i64],
    run: &AbftRun<'_>,
    events: &mut AbftEvents,
) {
    let apply = |arith: &mut A, tmp: &mut [i64], out: &mut [i64]| {
        integer_transform(arith, coef, data, tmp, rows, inner, inner, MatrixSide::Left);
        integer_transform(
            arith,
            coef,
            tmp,
            out,
            rows,
            inner,
            rows,
            MatrixSide::RightTransposed,
        );
    };
    apply(arith, tmp, out);
    if !run.mode.checks() {
        return;
    }
    if transform_guard_ok(coef, rows, inner, data, out, events) {
        return;
    }
    events.detected += 1;
    if !run.recompute {
        events.uncorrected += 1;
        return;
    }
    // Same bounded retry loop as the checksummed GEMM: the recompute runs
    // on the faulty backend and may be struck again.
    for _ in 0..crate::checksum::MAX_RECOMPUTES {
        events.recomputes += 1;
        let before = arith.counters().layer(layer).executed;
        apply(arith, tmp, out);
        let delta = ops_since(arith, layer, before);
        events.charge(delta.mul, delta.add);
        if transform_guard_ok(coef, rows, inner, data, out, events) {
            events.corrected += 1;
            return;
        }
    }
    events.uncorrected += 1;
}

/// Protected (or calibrating) winograd convolution: same contract as
/// [`wgft_winograd::winograd_conv_quantized_with_scratch`] — raw quantized
/// input words in, wide accumulators out — with the protection described in
/// the module docs applied according to `run`.
///
/// When `record` is given, fault-free value maxima of every stage are folded
/// into it (the calibration pass that range restriction feeds on).
///
/// # Errors
///
/// Returns [`WinogradError::UnsupportedGeometry`] for non-3x3 or strided
/// convolutions and [`WinogradError::BufferSizeMismatch`] for wrong buffer
/// lengths.
#[allow(clippy::too_many_arguments)]
pub fn abft_winograd_conv<A: Arithmetic>(
    arith: &mut A,
    layer: usize,
    input: &[i32],
    weights: &WinogradWeights,
    shape: &ConvShape,
    scratch: &mut AbftScratch,
    run: AbftRun<'_>,
    mut record: Option<&mut LayerRanges>,
    events: &mut AbftEvents,
) -> Result<Vec<i64>, WinogradError> {
    let g = &shape.geometry;
    if !g.is_unit_stride_3x3() {
        return Err(WinogradError::UnsupportedGeometry {
            kernel: g.k_h,
            stride: g.stride,
        });
    }
    if input.len() != shape.input_len() {
        return Err(WinogradError::BufferSizeMismatch {
            what: "input",
            expected: shape.input_len(),
            actual: input.len(),
        });
    }
    if weights.out_channels() != shape.out_channels || weights.in_channels() != shape.in_channels {
        return Err(WinogradError::BufferSizeMismatch {
            what: "winograd weight",
            expected: shape.out_channels * shape.in_channels,
            actual: weights.out_channels() * weights.in_channels(),
        });
    }
    arith.begin_layer(layer);
    let variant = weights.variant();
    let t = variant.input_tile();
    let t2 = t * t;
    let mt = variant.output_tile();
    let (out_h, out_w) = (g.out_h(), g.out_w());
    let tiles_y = out_h.div_ceil(mt);
    let tiles_x = out_w.div_ceil(mt);
    let p = tiles_y * tiles_x;
    let (o, c) = (shape.out_channels, shape.in_channels);
    let bt = variant.bt();
    let at = variant.at();
    let pad = g.padding as isize;
    scratch.prepare_wino(t, mt, c, o, p);
    let AbftScratch {
        v,
        m,
        d,
        tmp,
        vtile,
        u_k,
        fibre,
        y,
        ..
    } = scratch;

    // ---- Input transform + guard, scattered into the (t², C, P) layout.
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let tile = ty * tiles_x + tx;
            for ic in 0..c {
                for dy in 0..t {
                    for dx in 0..t {
                        let iy = (ty * mt + dy) as isize - pad;
                        let ix = (tx * mt + dx) as isize - pad;
                        d[dy * t + dx] = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < g.in_h
                            && (ix as usize) < g.in_w
                        {
                            i64::from(input[(ic * g.in_h + iy as usize) * g.in_w + ix as usize])
                        } else {
                            0
                        };
                    }
                }
                guarded_transform(
                    arith,
                    layer,
                    bt,
                    t,
                    t,
                    d,
                    &mut tmp[..t2],
                    vtile,
                    &run,
                    events,
                );
                for (k, &value) in vtile.iter().enumerate() {
                    v[(k * c + ic) * p + tile] = value;
                }
            }
        }
    }
    if let Some(record) = record.as_deref_mut() {
        record.v_max = record.v_max.max(observe_max(v));
    }
    if run.mode.clips() {
        if let Some(ranges) = run.ranges {
            clip_slice(v, LayerRanges::bound(ranges.v_max, run.margin), events);
        }
    }

    // ---- The t² winograd-domain GEMMs, checksummed when requested.
    for k in 0..t2 {
        let data = weights.data();
        for oc in 0..o {
            for ic in 0..c {
                u_k[oc * c + ic] = i64::from(data[(oc * c + ic) * t2 + k]);
            }
        }
        let b_k = &v[k * c * p..(k + 1) * c * p];
        let out_k = &mut m[k * o * p..(k + 1) * o * p];
        if run.mode.checks() {
            checked_gemm_i64(arith, u_k, b_k, out_k, o, c, p, run.recompute, events);
        } else {
            plain_gemm_i64(arith, u_k, b_k, out_k, o, c, p);
        }
    }
    if let Some(record) = record.as_deref_mut() {
        record.gemm_max = record.gemm_max.max(observe_max(m));
    }
    if run.mode.clips() {
        if let Some(ranges) = run.ranges {
            clip_slice(m, LayerRanges::bound(ranges.gemm_max, run.margin), events);
        }
    }

    // ---- Output transform + guard, gathered back to pixels.
    let mut output = vec![0i64; shape.output_len()];
    for oc in 0..o {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let tile = ty * tiles_x + tx;
                for (k, value) in fibre.iter_mut().enumerate() {
                    *value = m[(k * o + oc) * p + tile];
                }
                guarded_transform(
                    arith,
                    layer,
                    at,
                    mt,
                    t,
                    fibre,
                    &mut tmp[..mt * t],
                    y,
                    &run,
                    events,
                );
                for dy in 0..mt {
                    for dx in 0..mt {
                        let oy = ty * mt + dy;
                        let ox = tx * mt + dx;
                        if oy < out_h && ox < out_w {
                            output[(oc * out_h + oy) * out_w + ox] = y[dy * mt + dx];
                        }
                    }
                }
            }
        }
    }
    finish_accumulators(&mut output, &run, record, events);
    Ok(output)
}

/// Protected standard convolution via the im2col GEMM factorization: the
/// weight matrix `(O × C·k²)` times the patch matrix `(C·k² × P)`, wrapped
/// in row/column checksums. Same contract as
/// [`wgft_winograd::direct_conv_quantized`] (raw words in, accumulators
/// out); the op count is the dense GEMM's — padding taps are multiplied as
/// zeros rather than skipped, as a matrix engine would.
///
/// # Errors
///
/// Returns [`WinogradError::BufferSizeMismatch`] for wrong buffer lengths.
#[allow(clippy::too_many_arguments)]
pub fn abft_direct_conv<A: Arithmetic>(
    arith: &mut A,
    layer: usize,
    input: &[i32],
    weights: &[i32],
    shape: &ConvShape,
    scratch: &mut AbftScratch,
    run: AbftRun<'_>,
    record: Option<&mut LayerRanges>,
    events: &mut AbftEvents,
) -> Result<Vec<i64>, WinogradError> {
    let g = &shape.geometry;
    if input.len() != shape.input_len() {
        return Err(WinogradError::BufferSizeMismatch {
            what: "input",
            expected: shape.input_len(),
            actual: input.len(),
        });
    }
    if weights.len() != shape.weight_len() {
        return Err(WinogradError::BufferSizeMismatch {
            what: "weight",
            expected: shape.weight_len(),
            actual: weights.len(),
        });
    }
    arith.begin_layer(layer);
    let p = g.out_pixels();
    let o = shape.out_channels;
    let kdim = shape.in_channels * g.k_h * g.k_w;
    resize(&mut scratch.a_mat, o * kdim);
    for (dst, &w) in scratch.a_mat.iter_mut().zip(weights.iter()) {
        *dst = i64::from(w);
    }
    wgft_tensor::im2col_quantized(input, shape.in_channels, g, &mut scratch.im2col);
    let mut output = vec![0i64; shape.output_len()];
    if run.mode.checks() {
        checked_gemm_i64(
            arith,
            &scratch.a_mat,
            &scratch.im2col,
            &mut output,
            o,
            kdim,
            p,
            run.recompute,
            events,
        );
    } else {
        plain_gemm_i64(
            arith,
            &scratch.a_mat,
            &scratch.im2col,
            &mut output,
            o,
            kdim,
            p,
        );
    }
    finish_accumulators(&mut output, &run, record, events);
    Ok(output)
}

/// Protected fully-connected layer: the `(out_features × in_features)`
/// weight matrix times the input vector, with the GEMV column-checksum
/// (detect + recompute) applied in checksummed modes. Returns raw
/// accumulators; the caller adds bias and requantizes exactly like the
/// unprotected path.
#[allow(clippy::too_many_arguments)]
pub fn abft_linear<A: Arithmetic>(
    arith: &mut A,
    layer: usize,
    input: &[i32],
    weights: &[i32],
    in_features: usize,
    out_features: usize,
    scratch: &mut AbftScratch,
    run: AbftRun<'_>,
    record: Option<&mut LayerRanges>,
    events: &mut AbftEvents,
) -> Vec<i64> {
    arith.begin_layer(layer);
    resize(&mut scratch.a_mat, out_features * in_features);
    for (dst, &w) in scratch.a_mat.iter_mut().zip(weights.iter()) {
        *dst = i64::from(w);
    }
    resize(&mut scratch.im2col, in_features);
    for (dst, &x) in scratch.im2col.iter_mut().zip(input.iter()) {
        *dst = i64::from(x);
    }
    let mut output = vec![0i64; out_features];
    if run.mode.checks() {
        checked_gemm_i64(
            arith,
            &scratch.a_mat,
            &scratch.im2col,
            &mut output,
            out_features,
            in_features,
            1,
            run.recompute,
            events,
        );
    } else {
        plain_gemm_i64(
            arith,
            &scratch.a_mat,
            &scratch.im2col,
            &mut output,
            out_features,
            in_features,
            1,
        );
    }
    finish_accumulators(&mut output, &run, record, events);
    output
}

/// Record and/or clip a layer's output accumulators.
fn finish_accumulators(
    output: &mut [i64],
    run: &AbftRun<'_>,
    record: Option<&mut LayerRanges>,
    events: &mut AbftEvents,
) {
    if let Some(record) = record {
        record.acc_max = record.acc_max.max(observe_max(output));
    }
    if run.mode.clips() {
        if let Some(ranges) = run.ranges {
            clip_slice(
                output,
                LayerRanges::bound(ranges.acc_max, run.margin),
                events,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_faultsim::{BitErrorRate, ExactArithmetic, FaultConfig, FaultyArithmetic};
    use wgft_fixedpoint::BitWidth;
    use wgft_tensor::ConvGeometry;
    use wgft_winograd::{
        direct_conv_quantized, transform_weights_f32, winograd_conv_quantized, WinogradVariant,
        F2X2_3X3,
    };

    fn wino_fixture(variant: WinogradVariant) -> (ConvShape, Vec<i32>, WinogradWeights) {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(6, 3, 1, 1));
        let input: Vec<i32> = (0..shape.input_len())
            .map(|i| ((i * 7 % 23) as i32) - 11)
            .collect();
        let weights_q: Vec<i32> = (0..shape.weight_len())
            .map(|i| 4 * (((i * 5 % 9) as i32) - 4))
            .collect();
        let weights_f: Vec<f32> = weights_q.iter().map(|&w| w as f32).collect();
        let u = transform_weights_f32(&weights_f, 3, 2, variant).unwrap();
        let wino =
            WinogradWeights::new(variant, 3, 2, u.iter().map(|&x| x.round() as i32).collect())
                .unwrap();
        (shape, input, wino)
    }

    /// The protected executor is tile-generic: for every variant, every
    /// mode's fault-free output must equal the stock kernel's exactly.
    #[test]
    fn fault_free_protected_winograd_matches_unprotected_exactly() {
        for variant in WinogradVariant::all() {
            let (shape, input, wino) = wino_fixture(variant);
            let mut exact = ExactArithmetic::new();
            let reference = winograd_conv_quantized(&mut exact, 0, &input, &wino, &shape).unwrap();
            for mode in [AbftMode::Off, AbftMode::Checksum, AbftMode::ChecksumRange] {
                let mut arith = ExactArithmetic::new();
                let mut scratch = AbftScratch::new();
                let mut events = AbftEvents::new();
                let mut ranges = LayerRanges::default();
                // Calibrate first so clipping modes have real bounds.
                let mut cal_arith = ExactArithmetic::new();
                abft_winograd_conv(
                    &mut cal_arith,
                    0,
                    &input,
                    &wino,
                    &shape,
                    &mut scratch,
                    AbftRun::off(),
                    Some(&mut ranges),
                    &mut AbftEvents::new(),
                )
                .unwrap();
                let run = AbftRun {
                    mode,
                    recompute: true,
                    margin: 2.0,
                    ranges: Some(&ranges),
                };
                let out = abft_winograd_conv(
                    &mut arith,
                    0,
                    &input,
                    &wino,
                    &shape,
                    &mut scratch,
                    run,
                    None,
                    &mut events,
                )
                .unwrap();
                assert_eq!(
                    out, reference,
                    "{variant} {mode}: fault-free output must agree"
                );
                assert_eq!(
                    events.detected, 0,
                    "{variant} {mode}: zero false detections at BER 0"
                );
                assert_eq!(
                    events.clipped, 0,
                    "{variant} {mode}: calibrated range never clips clean values"
                );
            }
        }
    }

    #[test]
    fn protected_winograd_issues_the_same_backend_ops_as_unprotected() {
        // The backend-visible op sequence of the protected executor's Off
        // mode must match the GEMM-shaped schedule (counts, not order, are
        // compared to the stock kernel: same muls, same adds).
        let (shape, input, wino) = wino_fixture(F2X2_3X3);
        let mut stock = ExactArithmetic::new();
        winograd_conv_quantized(&mut stock, 0, &input, &wino, &shape).unwrap();
        let mut engine = ExactArithmetic::new();
        let mut scratch = AbftScratch::new();
        abft_winograd_conv(
            &mut engine,
            0,
            &input,
            &wino,
            &shape,
            &mut scratch,
            AbftRun::off(),
            None,
            &mut AbftEvents::new(),
        )
        .unwrap();
        assert_eq!(
            stock.counters().layer(0).executed,
            engine.counters().layer(0).executed,
            "same backend work, just batched into GEMMs"
        );
    }

    #[test]
    fn protected_direct_matches_scalar_direct_on_values() {
        let shape = ConvShape::new(2, 3, ConvGeometry::square(5, 3, 1, 1));
        let input: Vec<i32> = (0..shape.input_len())
            .map(|i| ((i * 11 % 19) as i32) - 9)
            .collect();
        let weights: Vec<i32> = (0..shape.weight_len())
            .map(|i| ((i * 3 % 13) as i32) - 6)
            .collect();
        let mut exact = ExactArithmetic::new();
        let reference = direct_conv_quantized(&mut exact, 0, &input, &weights, &shape).unwrap();
        let mut arith = ExactArithmetic::new();
        let mut scratch = AbftScratch::new();
        let mut events = AbftEvents::new();
        let run = AbftRun {
            mode: AbftMode::Checksum,
            recompute: true,
            margin: 2.0,
            ranges: None,
        };
        let out = abft_direct_conv(
            &mut arith,
            0,
            &input,
            &weights,
            &shape,
            &mut scratch,
            run,
            None,
            &mut events,
        )
        .unwrap();
        assert_eq!(out, reference, "im2col GEMM computes the same accumulators");
        assert_eq!(events.detected, 0);
    }

    /// Checksum + recompute must restore exact accumulators under a fault
    /// storm for every tile variant — the larger tiles have more GEMMs per
    /// output and therefore more checksummed surfaces.
    #[test]
    fn heavy_faults_are_detected_and_mostly_repaired() {
        for variant in WinogradVariant::all() {
            let (shape, input, wino) = wino_fixture(variant);
            // A BER high enough that the unprotected kernel is badly
            // corrupted, but low enough that single faults dominate each
            // GEMM. F(6x6,3x3) runs ~10x the operations per layer of
            // F(2x2,3x3) (64 winograd coordinates, 8x8 inverse transform),
            // so it gets a proportionally lower rate — at 2e-4 its
            // multi-fault GEMMs routinely exceed what locate-and-fix plus a
            // recompute under the *same* faulty arithmetic can repair.
            let ber = match variant {
                WinogradVariant::F6x6 => 2e-5,
                _ => 2e-4,
            };
            let config = FaultConfig::new(BitErrorRate::new(ber), BitWidth::W16);
            let mut unprotected = FaultyArithmetic::new(config.clone(), 4);
            let corrupted =
                winograd_conv_quantized(&mut unprotected, 0, &input, &wino, &shape).unwrap();
            let mut exact = ExactArithmetic::new();
            let truth = winograd_conv_quantized(&mut exact, 0, &input, &wino, &shape).unwrap();
            assert!(unprotected.faults_injected() > 0);
            assert_ne!(corrupted, truth, "unprotected execution must be corrupted");

            let mut protected = FaultyArithmetic::new(config, 4);
            let mut scratch = AbftScratch::new();
            let mut events = AbftEvents::new();
            let run = AbftRun {
                mode: AbftMode::Checksum,
                recompute: true,
                margin: 2.0,
                ranges: None,
            };
            let out = abft_winograd_conv(
                &mut protected,
                0,
                &input,
                &wino,
                &shape,
                &mut scratch,
                run,
                None,
                &mut events,
            )
            .unwrap();
            assert!(
                protected.faults_injected() > 0,
                "faults must actually strike"
            );
            assert!(events.detected > 0, "{variant}: strikes must be detected");
            assert_eq!(
                out, truth,
                "{variant}: checksum + recompute must restore the exact accumulators \
             (events: {events})"
            );
            assert_eq!(events.uncorrected, 0);
        }
    }

    #[test]
    fn range_restriction_clips_out_of_range_values() {
        let (shape, input, wino) = wino_fixture(F2X2_3X3);
        let mut ranges = LayerRanges::default();
        let mut scratch = AbftScratch::new();
        abft_winograd_conv(
            &mut ExactArithmetic::new(),
            0,
            &input,
            &wino,
            &shape,
            &mut scratch,
            AbftRun::off(),
            Some(&mut ranges),
            &mut AbftEvents::new(),
        )
        .unwrap();
        assert!(ranges.v_max > 0 && ranges.gemm_max > 0 && ranges.acc_max > 0);
        // Under a heavy fault storm, range-only protection clips.
        let config = FaultConfig::new(BitErrorRate::new(1e-3), BitWidth::W16);
        let mut arith = FaultyArithmetic::new(config, 5);
        let mut events = AbftEvents::new();
        let run = AbftRun {
            mode: AbftMode::Range,
            recompute: false,
            margin: 1.5,
            ranges: Some(&ranges),
        };
        let out = abft_winograd_conv(
            &mut arith,
            0,
            &input,
            &wino,
            &shape,
            &mut scratch,
            run,
            None,
            &mut events,
        )
        .unwrap();
        assert!(events.clipped > 0, "a fault storm must trip the clipper");
        assert_eq!(events.detected, 0, "range mode has no detector");
        let bound = LayerRanges::bound(ranges.acc_max, 1.5);
        assert!(out.iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn protected_linear_detects_and_recomputes() {
        let (in_f, out_f) = (12, 5);
        let input: Vec<i32> = (0..in_f).map(|i| (i as i32 % 7) - 3).collect();
        let weights: Vec<i32> = (0..in_f * out_f).map(|i| (i as i32 % 5) - 2).collect();
        let mut scratch = AbftScratch::new();
        // Exact run for truth.
        let truth = abft_linear(
            &mut ExactArithmetic::new(),
            0,
            &input,
            &weights,
            in_f,
            out_f,
            &mut scratch,
            AbftRun::off(),
            None,
            &mut AbftEvents::new(),
        );
        // Faulty run with checksums: detection fires, recompute repairs (the
        // deterministic seed gives a quiet recompute at this rate).
        let config = FaultConfig::new(BitErrorRate::new(5e-3), BitWidth::W16);
        let mut arith = FaultyArithmetic::new(config, 3);
        let mut events = AbftEvents::new();
        let run = AbftRun {
            mode: AbftMode::Checksum,
            recompute: true,
            margin: 2.0,
            ranges: None,
        };
        let out = abft_linear(
            &mut arith,
            0,
            &input,
            &weights,
            in_f,
            out_f,
            &mut scratch,
            run,
            None,
            &mut events,
        );
        if events.detected > 0 {
            assert!(events.recomputes > 0);
        }
        if events.uncorrected == 0 {
            assert_eq!(out, truth);
        }
    }
}
