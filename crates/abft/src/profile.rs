//! The versioned, serializable per-layer protection profile.
//!
//! A [`ProtectionProfile`] is the artifact the measured planner
//! (`wgft-planner`) emits: one protection choice per compute layer, picked
//! from campaign measurements to hit a target accuracy-under-BER at minimum
//! measured cost, together with the provenance needed to audit the decision
//! (source-campaign config hash, BER grid, per-layer measured deltas). The
//! serving daemon loads one at startup (`wgft-serve --profile`) and applies
//! it through the ordinary [`AbftPolicy`] / `ProtectionPlan` machinery, so a
//! tenant tier can mean "the planned frontier point" instead of one blanket
//! policy.
//!
//! Profiles are versioned: [`PROFILE_VERSION`] is embedded in every file and
//! loading rejects unknown versions with a named error
//! ([`ProfileError::UnsupportedVersion`]) instead of guessing at a foreign
//! layout.

use crate::policy::{AbftMode, AbftPolicy};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use wgft_faultsim::{OpType, ProtectionPlan};

/// Current profile file-format version.
pub const PROFILE_VERSION: u32 = 1;

/// One per-layer protection choice — the planner's decision alphabet.
///
/// The first four map onto executable [`AbftMode`]s (with
/// `ChecksumRecompute` turning the policy's recompute-on-detect switch on);
/// `Tmr` is the idealized triple-modular-redundancy fallback, applied as a
/// full-fraction `ProtectionPlan` entry and charged at two extra copies of
/// the layer's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerChoice {
    /// No protection.
    Off,
    /// Calibrated range restriction only.
    Range,
    /// Huang–Abraham checksums, locate-and-correct, no recompute fallback.
    Checksum,
    /// Checksums with the recompute-on-detect fallback armed.
    ChecksumRecompute,
    /// Idealized TMR of the whole layer (masks faults, costs 2x the layer).
    Tmr,
}

impl LayerChoice {
    /// Every choice, in escalation order.
    #[must_use]
    pub fn all() -> [LayerChoice; 5] {
        [
            LayerChoice::Off,
            LayerChoice::Range,
            LayerChoice::Checksum,
            LayerChoice::ChecksumRecompute,
            LayerChoice::Tmr,
        ]
    }

    /// Short human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LayerChoice::Off => "off",
            LayerChoice::Range => "range",
            LayerChoice::Checksum => "checksum",
            LayerChoice::ChecksumRecompute => "checksum+recompute",
            LayerChoice::Tmr => "tmr",
        }
    }

    /// The executable ABFT mode this choice maps onto (`None` for `Tmr`,
    /// which is applied through the idealized `ProtectionPlan` instead).
    #[must_use]
    pub fn abft_mode(self) -> Option<AbftMode> {
        match self {
            LayerChoice::Off | LayerChoice::Tmr => None,
            LayerChoice::Range => Some(AbftMode::Range),
            LayerChoice::Checksum | LayerChoice::ChecksumRecompute => Some(AbftMode::Checksum),
        }
    }
}

impl fmt::Display for LayerChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One measured cell of the planner's per-layer cost/benefit table: the
/// accuracy of protecting *only* `layer` at `choice` (every other layer
/// unprotected), its gain over the unprotected floor, and its measured
/// per-image cost in weighted operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredDelta {
    /// Compute-layer index.
    pub layer: usize,
    /// The protection level this cell measured.
    pub choice: LayerChoice,
    /// Accuracy with only this layer protected at this level.
    pub accuracy: f64,
    /// `accuracy - floor_accuracy` (may be negative: protection is not
    /// guaranteed to help on every layer).
    pub gain: f64,
    /// Measured per-image protection cost in weighted ops (TMR cells charge
    /// the analytic two extra copies of the layer's arithmetic).
    pub cost: f64,
}

/// Where a profile's numbers came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileProvenance {
    /// FNV-1a hash (hex) of the canonical JSON of the source campaign's
    /// config — ties the profile to exactly one campaign identity.
    pub config_hash: String,
    /// Dataset-source label of the campaign (`synthetic` / `cifar10`).
    pub dataset: String,
    /// BER grid of the campaign data the anchors were read from.
    pub ber_grid: Vec<f64>,
    /// Evaluation images every measurement averaged over.
    pub images: usize,
    /// The full measured per-layer table the solver optimized over.
    pub deltas: Vec<MeasuredDelta>,
}

/// A planned per-layer protection assignment with measured provenance.
///
/// Build one with `wgft-planner`; apply it with [`ProtectionProfile::policy`]
/// (the executable per-layer ABFT modes) plus [`ProtectionProfile::plan`]
/// (the idealized TMR fractions for `Tmr` layers) — the same composition
/// `FaultToleranceCampaign::accuracy_under_abft` evaluates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectionProfile {
    /// File-format version (see [`PROFILE_VERSION`]).
    pub version: u32,
    /// Name of the quantized network the profile was planned for.
    pub model: String,
    /// Quantization width label.
    pub width: String,
    /// Convolution algorithm the measurements ran under.
    pub algo: String,
    /// Bit error rate the profile is planned at.
    pub ber: f64,
    /// The accuracy target the solver was asked to hit.
    pub target_accuracy: f64,
    /// Accuracy the additive model predicts for the chosen assignment.
    pub predicted_accuracy: f64,
    /// Accuracy the chosen assignment actually measured when replayed
    /// (the honest number — the additive prediction is only a solver guide).
    pub achieved_accuracy: f64,
    /// Measured unprotected accuracy at `ber` (the floor anchor).
    pub floor_accuracy: f64,
    /// Measured all-checksum+recompute accuracy at `ber` (the ceiling).
    pub ceiling_accuracy: f64,
    /// Measured per-image cost of the chosen assignment, replayed.
    pub total_cost: f64,
    /// Measured per-image cost of blanket checksum+recompute.
    pub ceiling_cost: f64,
    /// Analytic per-image cost of blanket idealized TMR.
    pub idealized_tmr_cost: f64,
    /// Cost of the greedy fallback's assignment (>= the exact solver's).
    pub greedy_cost: f64,
    /// `greedy_cost - total predicted cost of the exact assignment`: the
    /// optimality gap a greedy-only planner would have left on the table.
    pub optimality_gap: f64,
    /// The chosen protection level of every compute layer, in layer order.
    pub layers: Vec<LayerChoice>,
    /// Measurement provenance.
    pub provenance: ProfileProvenance,
}

impl ProtectionProfile {
    /// The executable per-layer ABFT policy of this assignment. Layers
    /// choosing `Tmr` (or `Off`) stay off here — TMR is applied through
    /// [`ProtectionProfile::plan`]. Recompute-on-detect is policy-global, so
    /// it arms when *any* layer chose `ChecksumRecompute`; plain-`Checksum`
    /// layers then also recompute on detect, which only strengthens them
    /// relative to their measured cell (the replayed `achieved_accuracy` and
    /// `total_cost` record the composed truth).
    #[must_use]
    pub fn policy(&self) -> AbftPolicy {
        let mut policy = AbftPolicy::off();
        let mut recompute = false;
        for (layer, choice) in self.layers.iter().enumerate() {
            if let Some(mode) = choice.abft_mode() {
                policy = policy.with_layer_mode(layer, mode);
            }
            recompute |= *choice == LayerChoice::ChecksumRecompute;
        }
        policy.with_recompute(recompute)
    }

    /// The idealized protection plan of this assignment: full TMR fractions
    /// on every layer that chose `Tmr`, nothing anywhere else.
    #[must_use]
    pub fn plan(&self) -> ProtectionPlan {
        let mut plan = ProtectionPlan::none();
        for (layer, choice) in self.layers.iter().enumerate() {
            if *choice == LayerChoice::Tmr {
                for op in OpType::all() {
                    plan.protect_fraction(layer, op, 1.0)
                        .expect("fraction 1.0 is always valid");
                }
            }
        }
        plan
    }

    /// Whether any layer carries any protection at all.
    #[must_use]
    pub fn is_all_off(&self) -> bool {
        self.layers.iter().all(|c| *c == LayerChoice::Off)
    }

    /// Stable identity hash (FNV-1a hex over the canonical JSON) — what the
    /// serving daemon reports so clients can audit which plan is live.
    #[must_use]
    pub fn hash(&self) -> String {
        let json = serde_json::to_string(self).unwrap_or_default();
        format!("{:016x}", fnv1a64(json.as_bytes()))
    }

    /// Basic structural validation: supported version and a non-empty layer
    /// assignment.
    ///
    /// # Errors
    ///
    /// [`ProfileError::UnsupportedVersion`] for a foreign version field,
    /// [`ProfileError::Invalid`] for an empty assignment.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.version != PROFILE_VERSION {
            return Err(ProfileError::UnsupportedVersion {
                found: self.version,
                supported: PROFILE_VERSION,
            });
        }
        if self.layers.is_empty() {
            return Err(ProfileError::Invalid {
                reason: "profile assigns no layers".to_string(),
            });
        }
        Ok(())
    }

    /// Serialize to canonical JSON and write atomically-enough (single
    /// `write`) to `path`.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] on write failure, plus anything
    /// [`ProtectionProfile::validate`] rejects.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ProfileError> {
        self.validate()?;
        let path = path.as_ref();
        let json = serde_json::to_string(self).map_err(|e| ProfileError::Parse {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        std::fs::write(path, format!("{json}\n")).map_err(|e| ProfileError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })
    }

    /// Load and validate a profile from `path`.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] if the file cannot be read, [`ProfileError::Parse`]
    /// if it is not a profile JSON, [`ProfileError::UnsupportedVersion`] if it
    /// was written by an unknown format version.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ProfileError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ProfileError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        // Surface an unknown version as the named error even when the rest
        // of the layout has drifted beyond what this build can parse.
        let profile: Self = match serde_json::from_str(text.trim()) {
            Ok(profile) => profile,
            Err(e) => {
                if let Some(found) = peek_version(text.trim()) {
                    if found != PROFILE_VERSION {
                        return Err(ProfileError::UnsupportedVersion {
                            found,
                            supported: PROFILE_VERSION,
                        });
                    }
                }
                return Err(ProfileError::Parse {
                    path: path.to_path_buf(),
                    message: e.to_string(),
                });
            }
        };
        profile.validate()?;
        Ok(profile)
    }
}

impl fmt::Display for ProtectionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "protection profile {} — {} {} @ BER {:.2e}: target {:.2} %, achieved {:.2} % \
             (floor {:.2} %, ceiling {:.2} %) at cost {:.1} ops/image \
             (ceiling {:.1}, idealized TMR {:.1})",
            self.hash(),
            self.model,
            self.algo,
            self.ber,
            self.target_accuracy * 100.0,
            self.achieved_accuracy * 100.0,
            self.floor_accuracy * 100.0,
            self.ceiling_accuracy * 100.0,
            self.total_cost,
            self.ceiling_cost,
            self.idealized_tmr_cost,
        )?;
        for (layer, choice) in self.layers.iter().enumerate() {
            writeln!(f, "  layer {layer:>2}: {choice}")?;
        }
        Ok(())
    }
}

/// Pull the `version` field out of a possibly-foreign profile JSON.
fn peek_version(text: &str) -> Option<u32> {
    let value = serde_json::parse(text).ok()?;
    let version = value.get("version")?.as_f64()?;
    if version.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&version) {
        Some(version as u32)
    } else {
        None
    }
}

/// 64-bit FNV-1a (same parameters as the sweep journal's content hash).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors loading, saving or validating a [`ProtectionProfile`].
#[derive(Debug)]
pub enum ProfileError {
    /// File I/O failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error text.
        message: String,
    },
    /// The file exists but is not a parseable profile.
    Parse {
        /// The offending path.
        path: PathBuf,
        /// The parser's complaint.
        message: String,
    },
    /// The profile was written by a format version this build does not read.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// The only version this build supports.
        supported: u32,
    },
    /// The profile parsed but is structurally unusable.
    Invalid {
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Io { path, message } => {
                write!(f, "profile I/O error at {}: {message}", path.display())
            }
            ProfileError::Parse { path, message } => {
                write!(f, "cannot parse profile {}: {message}", path.display())
            }
            ProfileError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported profile version {found} (this build reads version {supported})"
            ),
            ProfileError::Invalid { reason } => write!(f, "invalid profile: {reason}"),
        }
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> ProtectionProfile {
        ProtectionProfile {
            version: PROFILE_VERSION,
            model: "vgg-small-w16".to_string(),
            width: "int16".to_string(),
            algo: "winograd".to_string(),
            ber: 3e-4,
            target_accuracy: 0.95,
            predicted_accuracy: 0.96,
            achieved_accuracy: 0.9375,
            floor_accuracy: 0.8125,
            ceiling_accuracy: 0.96875,
            total_cost: 1234.5,
            ceiling_cost: 4321.0,
            idealized_tmr_cost: 20000.0,
            greedy_cost: 1500.0,
            optimality_gap: 265.5,
            layers: vec![
                LayerChoice::ChecksumRecompute,
                LayerChoice::Checksum,
                LayerChoice::Range,
                LayerChoice::Off,
                LayerChoice::Tmr,
            ],
            provenance: ProfileProvenance {
                config_hash: "0123456789abcdef".to_string(),
                dataset: "synthetic".to_string(),
                ber_grid: vec![1e-6, 3e-4],
                images: 32,
                deltas: vec![MeasuredDelta {
                    layer: 0,
                    choice: LayerChoice::Checksum,
                    accuracy: 0.875,
                    gain: 0.0625,
                    cost: 321.0,
                }],
            },
        }
    }

    #[test]
    fn policy_and_plan_reflect_the_assignment() {
        let profile = sample_profile();
        let policy = profile.policy();
        assert_eq!(policy.mode_for(0), AbftMode::Checksum);
        assert_eq!(policy.mode_for(1), AbftMode::Checksum);
        assert_eq!(policy.mode_for(2), AbftMode::Range);
        assert_eq!(policy.mode_for(3), AbftMode::Off);
        assert_eq!(policy.mode_for(4), AbftMode::Off);
        assert!(policy.recompute_on_detect, "layer 0 armed recompute");
        let plan = profile.plan();
        assert_eq!(plan.tmr_fraction(4, OpType::Mul), 1.0);
        assert_eq!(plan.tmr_fraction(4, OpType::Add), 1.0);
        assert_eq!(plan.tmr_fraction(0, OpType::Mul), 0.0);
        assert!(!profile.is_all_off());

        // Without any ChecksumRecompute layer the recompute switch stays off.
        let mut relaxed = profile.clone();
        relaxed.layers[0] = LayerChoice::Checksum;
        assert!(!relaxed.policy().recompute_on_detect);
    }

    #[test]
    fn round_trips_and_hash_is_stable() {
        let profile = sample_profile();
        let json = serde_json::to_string(&profile).expect("serialize");
        let back: ProtectionProfile = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, profile);
        assert_eq!(back.hash(), profile.hash());
        assert_eq!(profile.hash().len(), 16);

        let dir = std::env::temp_dir().join(format!("wgft-profile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        profile.save(&path).expect("save");
        let loaded = ProtectionProfile::load(&path).expect("load");
        assert_eq!(loaded, profile);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_versions_are_rejected_by_name() {
        let mut future = sample_profile();
        future.version = PROFILE_VERSION + 1;
        let err = future.validate().expect_err("future version");
        assert!(matches!(
            err,
            ProfileError::UnsupportedVersion { found, supported }
                if found == PROFILE_VERSION + 1 && supported == PROFILE_VERSION
        ));

        // Same through the file path, including a layout this build cannot
        // even parse (the version is still surfaced by name).
        let dir = std::env::temp_dir().join(format!("wgft-profile-v-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        std::fs::write(&path, "{\"version\": 99, \"layout\": \"from the future\"}").unwrap();
        let err = ProtectionProfile::load(&path).expect_err("future file");
        assert!(err.to_string().contains("unsupported profile version 99"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Golden-file check: the checked-in v1 fixture must keep loading to
    /// exactly these values. If this test fails, the file format changed —
    /// bump [`PROFILE_VERSION`] and teach `load` the migration instead of
    /// editing the fixture.
    #[test]
    fn golden_v1_fixture_stays_readable() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/profile-v1.json");
        let golden = ProtectionProfile::load(&path).expect("golden fixture must load");
        assert_eq!(golden, sample_profile());
        // And the canonical serialization is byte-identical to the file, so
        // hashes computed over saved profiles are stable across builds.
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            serde_json::to_string(&golden).expect("serialize"),
            on_disk.trim()
        );
    }

    #[test]
    fn empty_assignments_are_invalid() {
        let mut empty = sample_profile();
        empty.layers.clear();
        assert!(matches!(
            empty.validate(),
            Err(ProfileError::Invalid { .. })
        ));
    }

    /// Regenerates the golden fixture after an *intentional* format change
    /// (bump [`PROFILE_VERSION`] first): `cargo test -p wgft-abft
    /// regenerate_golden_fixture -- --ignored`.
    #[test]
    #[ignore = "writes the golden fixture; run explicitly after a format bump"]
    fn regenerate_golden_fixture() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/profile-v1.json");
        sample_profile().save(path).expect("write fixture");
    }
}
