//! Structured serving counters: per-tenant protection events, batching and
//! queueing health, all additive and exported verbatim through the `Status`
//! endpoint (and from there into `BENCH_serve.json`).

use crate::tier::ProtectionTier;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;
use wgft_abft::AbftEvents;

/// Counters of one tenant (additive; merging snapshots is summation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantCounters {
    /// Classify requests answered.
    pub requests: u64,
    /// Requests served at a tier stronger than the tenant's base tier
    /// (escalation promotions).
    pub promoted: u64,
    /// Requests shed with an explicit `Degraded` response.
    pub shed: u64,
    /// Checksum/guard mismatches observed.
    pub detected: u64,
    /// Errors repaired (located-and-corrected or verified recompute).
    pub corrected: u64,
    /// Detections that could not be repaired.
    pub uncorrected: u64,
    /// Recompute fallbacks taken.
    pub recomputes: u64,
    /// Values clamped by range restriction.
    pub clipped: u64,
    /// Summed server-side service time in microseconds (latency =
    /// `service_us / requests`; the load client measures percentiles).
    pub service_us: u64,
}

impl TenantCounters {
    /// Fold one request's protection events into the tally.
    pub fn absorb(&mut self, events: &AbftEvents) {
        self.detected += events.detected;
        self.corrected += events.corrected;
        self.uncorrected += events.uncorrected;
        self.recomputes += events.recomputes;
        self.clipped += events.clipped;
    }
}

/// Daemon-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GlobalCounters {
    /// Classify requests accepted into the queue.
    pub accepted: u64,
    /// Requests refused with `Overloaded` (queue at capacity).
    pub overloaded: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Images summed over executed batches (`batches > 0` implies
    /// `batch fill = batched_images / batches`).
    pub batched_images: u64,
    /// Largest micro-batch executed.
    pub max_batch: u64,
    /// Deepest queue observed at enqueue time.
    pub max_queue_depth: u64,
    /// Escalation promotions applied by the fault monitor.
    pub escalations: u64,
}

/// A point-in-time copy of every counter, as served by `Status`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CountersSnapshot {
    /// Daemon-wide counters.
    pub global: GlobalCounters,
    /// Per-tenant counters, keyed by tenant tag.
    pub tenants: BTreeMap<String, TenantCounters>,
    /// Current queue depth (gauge, not additive).
    pub queue_depth: u64,
    /// Current escalation level (gauge).
    pub escalation_level: u32,
}

impl CountersSnapshot {
    /// Sum of detected events across tenants.
    #[must_use]
    pub fn total_detected(&self) -> u64 {
        self.tenants.values().map(|t| t.detected).sum()
    }

    /// Sum of corrected events across tenants.
    #[must_use]
    pub fn total_corrected(&self) -> u64 {
        self.tenants.values().map(|t| t.corrected).sum()
    }

    /// Sum of answered requests across tenants.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.tenants.values().map(|t| t.requests).sum()
    }
}

/// The live, shared counter store. All writers go through the mutex — the
/// counters are off the per-batch hot path (one lock per batch / response),
/// so contention is negligible next to a forward pass.
#[derive(Debug, Default)]
pub struct ServeCounters {
    inner: Mutex<CountersInner>,
}

#[derive(Debug, Default)]
struct CountersInner {
    global: GlobalCounters,
    tenants: BTreeMap<String, TenantCounters>,
}

impl ServeCounters {
    /// Fresh counters, all zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a request accepted into the queue at `depth`.
    pub fn note_accepted(&self, depth: u64) {
        let mut inner = self.inner.lock().expect("counters mutex");
        inner.global.accepted += 1;
        inner.global.max_queue_depth = inner.global.max_queue_depth.max(depth);
    }

    /// Record a request refused with `Overloaded`.
    pub fn note_overloaded(&self) {
        self.inner.lock().expect("counters mutex").global.overloaded += 1;
    }

    /// Record a request shed with `Degraded` for `tenant`.
    pub fn note_shed(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("counters mutex");
        inner.tenants.entry(tenant.to_string()).or_default().shed += 1;
    }

    /// Record one executed micro-batch of `images` images.
    pub fn note_batch(&self, images: u64) {
        let mut inner = self.inner.lock().expect("counters mutex");
        inner.global.batches += 1;
        inner.global.batched_images += images;
        inner.global.max_batch = inner.global.max_batch.max(images);
    }

    /// Record an escalation promotion.
    pub fn note_escalation(&self) {
        self.inner
            .lock()
            .expect("counters mutex")
            .global
            .escalations += 1;
    }

    /// Record one answered request for `tenant`: its protection events,
    /// whether the serving tier was promoted, and the service time.
    pub fn note_served(&self, tenant: &str, events: &AbftEvents, promoted: bool, service_us: u64) {
        let mut inner = self.inner.lock().expect("counters mutex");
        let tenant = inner.tenants.entry(tenant.to_string()).or_default();
        tenant.requests += 1;
        tenant.promoted += u64::from(promoted);
        tenant.service_us += service_us;
        tenant.absorb(events);
    }

    /// Snapshot everything, attaching the current gauges.
    #[must_use]
    pub fn snapshot(&self, queue_depth: u64, escalation_level: u32) -> CountersSnapshot {
        let inner = self.inner.lock().expect("counters mutex");
        CountersSnapshot {
            global: inner.global,
            tenants: inner.tenants.clone(),
            queue_depth,
            escalation_level,
        }
    }
}

/// Convenience: the tier a tenant maps to, shown in `Health`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantTier {
    /// Tenant tag.
    pub tenant: String,
    /// Configured base tier.
    pub base: ProtectionTier,
    /// Tier currently in effect (base promoted by the escalation level).
    pub effective: ProtectionTier,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let counters = ServeCounters::new();
        counters.note_accepted(3);
        counters.note_accepted(7);
        counters.note_overloaded();
        counters.note_batch(4);
        counters.note_batch(2);
        let mut events = AbftEvents::new();
        events.detected = 2;
        events.corrected = 1;
        counters.note_served("gold", &events, false, 1_500);
        counters.note_served("gold", &AbftEvents::new(), true, 500);
        counters.note_shed("free");
        counters.note_escalation();

        let snap = counters.snapshot(5, 1);
        assert_eq!(snap.global.accepted, 2);
        assert_eq!(snap.global.overloaded, 1);
        assert_eq!(snap.global.batches, 2);
        assert_eq!(snap.global.batched_images, 6);
        assert_eq!(snap.global.max_batch, 4);
        assert_eq!(snap.global.max_queue_depth, 7);
        assert_eq!(snap.global.escalations, 1);
        assert_eq!(snap.queue_depth, 5);
        assert_eq!(snap.escalation_level, 1);
        let gold = &snap.tenants["gold"];
        assert_eq!(gold.requests, 2);
        assert_eq!(gold.promoted, 1);
        assert_eq!(gold.detected, 2);
        assert_eq!(gold.corrected, 1);
        assert_eq!(gold.service_us, 2_000);
        assert_eq!(snap.tenants["free"].shed, 1);
        assert_eq!(snap.total_detected(), 2);
        assert_eq!(snap.total_corrected(), 1);
        assert_eq!(snap.total_requests(), 2);

        // Snapshots are plain serde data: they survive the wire.
        let json = serde_json::to_string(&snap).unwrap();
        let back: CountersSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
