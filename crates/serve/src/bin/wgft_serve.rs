//! `wgft-serve` — CLI for the fault-tolerant inference daemon.
//!
//! ```text
//! wgft-serve daemon --listen ADDR [--port-file FILE] [--model M] [--width 8|16]
//!                   [--scale test|full] [--images N] [--seed S] [--cache-dir DIR]
//!                   [--algo standard|winograd]
//!                   [--tenants free=fast,gold=checksum_recompute]
//!                   [--default-tier TIER] [--max-batch N] [--max-delay-ms N]
//!                   [--max-queue N] [--soft-watermark N]
//!                   [--profile FILE] [--chaos ber=B,seed=S] [--quiet]
//! wgft-serve load   (--connect ADDR | --connect-file FILE)
//!                   [--tenants free,gold] [--threads N]
//!                   [--requests N] [--seed S] [--retry-attempts N]
//!                   [--bench-out FILE] [--quiet]
//! wgft-serve status --connect ADDR [--out FILE]
//! wgft-serve shutdown --connect ADDR
//! ```
//!
//! `daemon` trains/loads the configured model (cacheable via `--cache-dir`),
//! prepares every serving plan, and serves until a `shutdown` request.
//! `load` rebuilds the daemon's evaluation set locally from the `Health`
//! report (dataset generation is deterministic), drives concurrent client
//! threads per tenant, scores accuracy against ground truth, and merges
//! client-side latency percentiles with the daemon's counters into a
//! `BENCH_serve.json` report. Under `--chaos` the daemon injects seeded
//! faults into live traffic; killing and restarting the daemon mid-load is
//! masked by the clients' retry layer (requests are idempotent end to end).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use wgft_core::CampaignConfig;
use wgft_data::Dataset;
use wgft_fabric::{RetryPolicy, SystemClock};
use wgft_fixedpoint::BitWidth;
use wgft_nn::models::ModelKind;
use wgft_serve::{
    BatchConfig, ChaosConfig, CountersSnapshot, ProtectionTier, ServeClient, ServeConfig,
    ServeDaemon, ServeEngine,
};
use wgft_winograd::ConvAlgorithm;

fn usage() -> &'static str {
    concat!(
        "wgft-serve — fault-tolerant inference daemon with protection SLAs\n",
        "\n",
        "USAGE:\n",
        "wgft-serve daemon --listen ADDR [--port-file FILE] [--model vgg_small|\n",
        "                  resnet_small|densenet_small|googlenet_small]\n",
        "                  [--width 8|16] [--scale test|full] [--images N]\n",
        "                  [--seed S] [--cache-dir DIR] [--algo standard|winograd]\n",
        "                  [--tenants free=fast,gold=checksum_recompute]\n",
        "                  [--default-tier fast|range|checksum|profile|checksum_recompute]\n",
        "                  [--max-batch N] [--max-delay-ms N] [--max-queue N]\n",
        "                  [--soft-watermark N] [--escalate-detected N]\n",
        "                  [--escalate-uncorrected N] [--escalate-window-ms MS]\n",
        "                  [--escalate-max-level N] [--profile FILE]\n",
        "                  [--chaos ber=B,seed=S] [--quiet]\n",
        "wgft-serve load   (--connect ADDR | --connect-file FILE)\n",
        "                  [--tenants free,gold] [--threads N]\n",
        "                  [--requests N] [--seed S] [--retry-attempts N]\n",
        "                  [--bench-out FILE] [--quiet]\n",
        "wgft-serve status --connect ADDR [--out FILE]\n",
        "wgft-serve shutdown --connect ADDR\n",
        "\n",
        "The daemon serves classify requests over the WGFB-framed protocol with\n",
        "per-tenant protection tiers, micro-batching, and graceful degradation.\n",
        "`--chaos` injects request-id-seeded faults into live traffic, so\n",
        "retries (and daemon restarts) replay identical fault streams."
    )
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let flag = &raw[i];
            if !flag.starts_with("--") {
                return Err(format!(
                    "unexpected argument `{flag}` (flags start with --)"
                ));
            }
            if flag == "--quiet" {
                flags.push((flag.clone(), String::new()));
                i += 1;
                continue;
            }
            let value = raw
                .get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            flags.push((flag.clone(), value.clone()));
            i += 2;
        }
        Ok(Self { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(flag, _)| flag == name)
            .map(|(_, value)| value.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

fn parse_flag<T: std::str::FromStr>(args: &Args, name: &str) -> Result<Option<T>, String> {
    args.get(name)
        .map(|v| {
            v.parse::<T>()
                .map_err(|_| format!("flag {name}: cannot parse `{v}`"))
        })
        .transpose()
}

fn parse_model(value: &str) -> Result<ModelKind, String> {
    ModelKind::all()
        .into_iter()
        .find(|m| m.label() == value)
        .ok_or_else(|| {
            format!(
                "unknown model `{value}` (expected one of: {})",
                ModelKind::all().map(|m| m.label()).join(", ")
            )
        })
}

fn parse_width(value: &str) -> Result<BitWidth, String> {
    match value {
        "8" | "int8" => Ok(BitWidth::W8),
        "16" | "int16" => Ok(BitWidth::W16),
        other => Err(format!("unknown width `{other}` (expected 8 or 16)")),
    }
}

fn parse_algo(value: &str) -> Result<ConvAlgorithm, String> {
    match value {
        "standard" => Ok(ConvAlgorithm::Standard),
        "winograd" => Ok(ConvAlgorithm::winograd_default()),
        other => Err(format!(
            "unknown algorithm `{other}` (expected standard or winograd)"
        )),
    }
}

/// Parse `free=fast,gold=checksum_recompute` into a tenant tier map.
fn parse_tenant_tiers(value: &str) -> Result<BTreeMap<String, ProtectionTier>, String> {
    let mut tenants = BTreeMap::new();
    for entry in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (tenant, tier) = entry
            .split_once('=')
            .ok_or_else(|| format!("--tenants: `{entry}` is not TENANT=TIER"))?;
        tenants.insert(
            tenant.trim().to_string(),
            ProtectionTier::parse(tier.trim())?,
        );
    }
    Ok(tenants)
}

/// Parse `ber=3e-4,seed=7` into a chaos configuration.
fn parse_chaos(value: &str) -> Result<ChaosConfig, String> {
    let mut ber = None;
    let mut seed = 0u64;
    for entry in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (key, val) = entry
            .split_once('=')
            .ok_or_else(|| format!("--chaos: `{entry}` is not KEY=VALUE"))?;
        match key.trim() {
            "ber" => {
                let b: f64 = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("--chaos: bad ber `{val}`"))?;
                if !b.is_finite() || !(0.0..=1.0).contains(&b) {
                    return Err(format!("--chaos: ber `{val}` is not in [0, 1]"));
                }
                ber = Some(b);
            }
            "seed" => {
                seed = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("--chaos: bad seed `{val}`"))?;
            }
            other => return Err(format!("--chaos: unknown key `{other}`")),
        }
    }
    Ok(ChaosConfig {
        ber: ber.ok_or("--chaos needs ber=RATE")?,
        seed,
    })
}

fn build_campaign_config(args: &Args) -> Result<CampaignConfig, String> {
    let model = args
        .get("--model")
        .map(parse_model)
        .transpose()?
        .unwrap_or(ModelKind::VggSmall);
    let width = args
        .get("--width")
        .map(parse_width)
        .transpose()?
        .unwrap_or(BitWidth::W8);
    let mut config = match args.get("--scale").unwrap_or("test") {
        "test" => CampaignConfig::test_scale(model, width),
        "full" => CampaignConfig::new(model, width),
        other => return Err(format!("unknown scale `{other}` (expected test or full)")),
    };
    if let Some(images) = parse_flag::<usize>(args, "--images")? {
        config = config.with_images(images);
    }
    if let Some(seed) = parse_flag::<u64>(args, "--seed")? {
        config = config.with_seed(seed);
    }
    if let Some(dir) = args.get("--cache-dir") {
        config = config.with_cache_dir(PathBuf::from(dir));
    }
    Ok(config)
}

fn cmd_daemon(args: &Args) -> Result<(), String> {
    let quiet = args.has("--quiet");
    let listen = args.get("--listen").unwrap_or("127.0.0.1:0");
    let algo = args
        .get("--algo")
        .map(parse_algo)
        .transpose()?
        .unwrap_or(ConvAlgorithm::winograd_default());
    let chaos = args.get("--chaos").map(parse_chaos).transpose()?;
    let campaign_config = build_campaign_config(args)?;

    let mut serve_config = ServeConfig {
        tenants: args
            .get("--tenants")
            .map(parse_tenant_tiers)
            .transpose()?
            .unwrap_or_default(),
        ..ServeConfig::default()
    };
    if let Some(tier) = args.get("--default-tier") {
        serve_config.default_tier = ProtectionTier::parse(tier)?;
    }
    let mut batch = BatchConfig::default();
    if let Some(n) = parse_flag::<usize>(args, "--max-batch")? {
        batch.max_batch = n.max(1);
    }
    if let Some(ms) = parse_flag::<u64>(args, "--max-delay-ms")? {
        batch.max_delay_ms = ms;
    }
    if let Some(n) = parse_flag::<usize>(args, "--max-queue")? {
        batch.max_queue = n.max(1);
        batch.soft_watermark = (n * 3 / 4).max(1);
    }
    if let Some(n) = parse_flag::<usize>(args, "--soft-watermark")? {
        batch.soft_watermark = n;
    }
    serve_config.batch = batch;
    if let Some(n) = parse_flag::<u64>(args, "--escalate-detected")? {
        serve_config.monitor.detected_per_window = n;
    }
    if let Some(n) = parse_flag::<u64>(args, "--escalate-uncorrected")? {
        serve_config.monitor.uncorrected_per_window = n;
    }
    if let Some(ms) = parse_flag::<u64>(args, "--escalate-window-ms")? {
        serve_config.monitor.window_ms = ms;
    }
    if let Some(n) = parse_flag::<u32>(args, "--escalate-max-level")? {
        serve_config.monitor.max_level = n;
    }

    if !quiet {
        eprintln!(
            "[wgft-serve] preparing {} ({:?}, {}){}...",
            campaign_config.model.label(),
            campaign_config.width,
            match algo {
                ConvAlgorithm::Standard => "standard",
                ConvAlgorithm::Winograd(_) => "winograd",
            },
            if chaos.is_some() { " with chaos" } else { "" },
        );
    }
    let profile = args
        .get("--profile")
        .map(|path| {
            wgft_abft::ProtectionProfile::load(path)
                .map_err(|e| format!("loading profile `{path}`: {e}"))
        })
        .transpose()?;
    let engine = ServeEngine::prepare_with_profile(&campaign_config, algo, chaos, profile)
        .map_err(|e| e.to_string())?;
    if !quiet {
        eprintln!(
            "[wgft-serve] model ready, clean accuracy {:.4}",
            engine.clean_accuracy()
        );
        if let Some(hash) = engine.profile_hash() {
            eprintln!("[wgft-serve] protection profile loaded (hash {hash})");
        }
    }
    let mut daemon = ServeDaemon::spawn(engine, serve_config, Arc::new(SystemClock::new()), listen)
        .map_err(|e| e.to_string())?;
    let addr = daemon.addr();
    if let Some(port_file) = args.get("--port-file") {
        let tmp = format!("{port_file}.tmp");
        std::fs::write(&tmp, addr.to_string()).map_err(|e| format!("writing port file: {e}"))?;
        std::fs::rename(&tmp, port_file).map_err(|e| format!("writing port file: {e}"))?;
    }
    if !quiet {
        eprintln!("[wgft-serve] listening on {addr}");
    }
    daemon.run_until_shutdown();
    if !quiet {
        eprintln!("[wgft-serve] shutdown complete");
    }
    Ok(())
}

/// Per-tenant client-side results of a load run.
#[derive(Debug, Default, Clone, Serialize)]
struct TenantLoadReport {
    requests: u64,
    correct: u64,
    accuracy: f64,
    promoted: u64,
    retries: u64,
    p50_us: u64,
    p99_us: u64,
    mean_us: u64,
}

/// The merged `BENCH_serve.json` payload.
#[derive(Debug, Serialize)]
struct LoadReport {
    tenants_requested: Vec<String>,
    threads_per_tenant: usize,
    requests_per_tenant: usize,
    elapsed_s: f64,
    throughput_rps: f64,
    clean_accuracy: f64,
    chaos: bool,
    algo: String,
    tenants: BTreeMap<String, TenantLoadReport>,
    server: CountersSnapshot,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

fn cmd_load(args: &Args) -> Result<(), String> {
    let quiet = args.has("--quiet");
    // --connect-file re-resolves the daemon address from its port file on
    // every reconnect, so a daemon restarted on a fresh ephemeral port is
    // picked up transparently by the retry layer (the chaos drill leans on
    // this). --connect pins one address for the whole run.
    let addr_file = args.get("--connect-file").map(std::path::PathBuf::from);
    let addr = match (args.get("--connect"), &addr_file) {
        (Some(addr), _) => addr.to_string(),
        (None, Some(path)) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .trim()
            .to_string(),
        (None, None) => return Err("load needs --connect ADDR or --connect-file FILE".into()),
    };
    let addr = addr.as_str();
    let tenants: Vec<String> = args
        .get("--tenants")
        .unwrap_or("default")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let threads = parse_flag::<usize>(args, "--threads")?.unwrap_or(2).max(1);
    let requests = parse_flag::<usize>(args, "--requests")?
        .unwrap_or(64)
        .max(1);
    let seed = parse_flag::<u64>(args, "--seed")?.unwrap_or(0);
    let retry_attempts = parse_flag::<u32>(args, "--retry-attempts")?.unwrap_or(12);

    // Learn the served configuration and rebuild the evaluation set locally
    // — generation is deterministic and cheap (no training involved).
    let policy = RetryPolicy {
        max_attempts: retry_attempts,
        seed,
        ..RetryPolicy::default()
    };
    let mut probe = ServeClient::with_policy(addr, policy);
    if let Some(path) = &addr_file {
        probe = probe.with_addr_file(path);
    }
    let health = probe.health().map_err(|e| e.to_string())?;
    let config: CampaignConfig = serde_json::from_str(&health.config_json)
        .map_err(|e| format!("cannot parse served config: {e}"))?;
    let eval = {
        let data = Dataset::synthetic(&config.spec, config.train_per_class, config.base_seed);
        let (_, test) = data.split(0.8);
        test.take(config.eval_images)
    };
    if eval.samples().is_empty() {
        return Err("served configuration yields an empty evaluation set".to_string());
    }
    if !quiet {
        eprintln!(
            "[wgft-serve] load: {} tenant(s) x {} thread(s) x {} request(s), \
             {} eval image(s), chaos={}",
            tenants.len(),
            threads,
            requests,
            eval.samples().len(),
            health.chaos,
        );
    }

    struct ThreadOutcome {
        tenant_index: usize,
        correct: u64,
        promoted: u64,
        retries: u64,
        latencies_us: Vec<u64>,
    }

    let eval = Arc::new(eval);
    let started = Instant::now();
    let mut handles = Vec::new();
    for (tenant_index, tenant) in tenants.iter().enumerate() {
        let per_thread = requests / threads + usize::from(requests % threads > 0);
        for thread_index in 0..threads {
            let lo = thread_index * per_thread;
            let hi = ((thread_index + 1) * per_thread).min(requests);
            if lo >= hi {
                continue;
            }
            let tenant = tenant.clone();
            let eval = Arc::clone(&eval);
            let addr = addr.to_string();
            let addr_file = addr_file.clone();
            let policy = RetryPolicy {
                max_attempts: retry_attempts,
                seed: seed ^ ((tenant_index as u64) << 16) ^ thread_index as u64,
                ..RetryPolicy::default()
            };
            handles.push(std::thread::spawn(
                move || -> Result<ThreadOutcome, String> {
                    let mut client = ServeClient::with_policy(&addr, policy);
                    if let Some(path) = &addr_file {
                        client = client.with_addr_file(path);
                    }
                    let mut outcome = ThreadOutcome {
                        tenant_index,
                        correct: 0,
                        promoted: 0,
                        retries: 0,
                        latencies_us: Vec::with_capacity(hi - lo),
                    };
                    for i in lo..hi {
                        let sample = &eval.samples()[i % eval.samples().len()];
                        // Request ids are globally unique per logical request
                        // and stable across retries — the idempotency key.
                        let request_id = ((tenant_index as u64) << 48)
                            | ((thread_index as u64) << 32)
                            | i as u64;
                        let sent = Instant::now();
                        let answer = client
                            .classify(request_id, &tenant, sample.image.data())
                            .map_err(|e| format!("tenant {tenant} request {request_id}: {e}"))?;
                        outcome.latencies_us.push(sent.elapsed().as_micros() as u64);
                        outcome.correct += u64::from(answer.prediction == sample.label);
                        outcome.promoted += u64::from(answer.promoted);
                    }
                    outcome.retries = client.retries();
                    Ok(outcome)
                },
            ));
        }
    }

    let mut reports: BTreeMap<String, TenantLoadReport> = BTreeMap::new();
    let mut all_latencies: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for handle in handles {
        let outcome = handle.join().map_err(|_| "load thread panicked")??;
        let tenant = &tenants[outcome.tenant_index];
        let report = reports.entry(tenant.clone()).or_default();
        report.requests += outcome.latencies_us.len() as u64;
        report.correct += outcome.correct;
        report.promoted += outcome.promoted;
        report.retries += outcome.retries;
        all_latencies
            .entry(outcome.tenant_index)
            .or_default()
            .extend(outcome.latencies_us);
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    for (tenant_index, mut latencies) in all_latencies {
        latencies.sort_unstable();
        let report = reports
            .get_mut(&tenants[tenant_index])
            .expect("report exists");
        report.accuracy = report.correct as f64 / report.requests.max(1) as f64;
        report.p50_us = percentile(&latencies, 0.50);
        report.p99_us = percentile(&latencies, 0.99);
        report.mean_us = latencies.iter().sum::<u64>() / (latencies.len() as u64).max(1);
    }

    let server = probe.status().map_err(|e| e.to_string())?;
    let total_requests: u64 = reports.values().map(|r| r.requests).sum();
    let report = LoadReport {
        tenants_requested: tenants.clone(),
        threads_per_tenant: threads,
        requests_per_tenant: requests,
        elapsed_s,
        throughput_rps: total_requests as f64 / elapsed_s.max(1e-9),
        clean_accuracy: health.clean_accuracy,
        chaos: health.chaos,
        algo: health.algo.clone(),
        tenants: reports,
        server,
    };
    let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
    if let Some(out) = args.get("--bench-out") {
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
        if !quiet {
            eprintln!("[wgft-serve] wrote {out}");
        }
    }
    if !quiet {
        for (tenant, r) in &report.tenants {
            eprintln!(
                "[wgft-serve]   {tenant}: {} req, accuracy {:.4}, p50 {} us, \
                 p99 {} us, {} promoted, {} retries",
                r.requests, r.accuracy, r.p50_us, r.p99_us, r.promoted, r.retries
            );
        }
        eprintln!(
            "[wgft-serve] {} requests in {:.2}s ({:.1} req/s), clean accuracy {:.4}",
            total_requests, elapsed_s, report.throughput_rps, report.clean_accuracy
        );
    }
    if args.get("--bench-out").is_none() {
        println!("{json}");
    }
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let addr = args.get("--connect").ok_or("status needs --connect ADDR")?;
    let mut client = ServeClient::new(addr);
    let snapshot = client.status().map_err(|e| e.to_string())?;
    let json = serde_json::to_string(&snapshot).map_err(|e| e.to_string())?;
    if let Some(out) = args.get("--out") {
        std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    } else {
        println!("{json}");
    }
    Ok(())
}

fn cmd_shutdown(args: &Args) -> Result<(), String> {
    let addr = args
        .get("--connect")
        .ok_or("shutdown needs --connect ADDR")?;
    let mut client = ServeClient::new(addr);
    client.shutdown().map_err(|e| e.to_string())?;
    eprintln!("[wgft-serve] shutdown acknowledged by {addr}");
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().map(String::as_str) else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&raw[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let outcome = match command {
        "daemon" => cmd_daemon(&args),
        "load" => cmd_load(&args),
        "status" => cmd_status(&args),
        "shutdown" => cmd_shutdown(&args),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
