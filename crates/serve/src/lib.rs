//! `wgft-serve` — a fault-tolerant inference daemon over the quantized
//! winograd stack, with per-tenant protection SLAs.
//!
//! The daemon loads one [`wgft_core::FaultToleranceCampaign`] model, builds
//! every plan once at startup (fast winograd plans, ABFT calibration), and
//! serves classify requests over the same `WGFB`-framed TCP protocol as
//! the sweep fabric:
//!
//! * **micro-batching** — concurrent requests coalesce into the planned
//!   winograd engine's GEMM free dimension ([`queue::IntakeQueue`]),
//!   bit-identical to per-request execution for any coalescing schedule;
//! * **protection tiers** — each tenant tag maps to a
//!   [`tier::ProtectionTier`] from the unprotected fast path up to
//!   checksums + range restriction + recompute (the paper's full scheme);
//! * **graceful degradation** — a rolling [`monitor::EscalationMonitor`]
//!   watches detected/uncorrected rates, promotes tenants to stronger
//!   tiers, and sheds load with explicit `Overloaded`/`Degraded` responses
//!   (never a silent drop);
//! * **chaos drills** — `--chaos` drives a seeded fault injector through
//!   live traffic; fault streams are keyed by request id, so retries and
//!   daemon restarts are idempotent end to end.

pub mod client;
pub mod counters;
pub mod daemon;
pub mod engine;
pub mod error;
pub mod monitor;
pub mod proto;
pub mod queue;
pub mod tier;

pub use client::{Classification, HealthReport, ServeClient};
pub use counters::{CountersSnapshot, GlobalCounters, ServeCounters, TenantCounters, TenantTier};
pub use daemon::{ServeConfig, ServeDaemon};
pub use engine::{request_fault_seed, ChaosConfig, ServeEngine};
pub use error::ServeError;
pub use monitor::{EscalationMonitor, MonitorConfig};
pub use proto::{ServeRequest, ServeResponse};
pub use queue::{BatchConfig, IntakeQueue, Job, PushError};
pub use tier::ProtectionTier;
