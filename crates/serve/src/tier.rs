//! Protection tiers: the per-tenant service levels of the daemon.
//!
//! A tier names how much of `wgft-abft`'s machinery runs around a tenant's
//! inferences. The ordering is total and meaningful: escalation promotes a
//! tenant to the *next stronger* tier, so `Fast < Range < Checksum <
//! Profile < ChecksumRecompute`.
//!
//! `Profile` is the measured-planner tier: it serves under the per-layer
//! assignment of the `ProtectionProfile` the daemon loaded at startup
//! (`wgft-serve daemon --profile FILE`), falling back to the strongest
//! blanket policy when no profile is loaded. It sits just below
//! `ChecksumRecompute` in the escalation order: a planned assignment
//! protects selectively, so the blanket scheme remains the strongest answer
//! when the escalation monitor demands more.

use serde::{Deserialize, Serialize};
use std::fmt;
use wgft_abft::AbftPolicy;

/// A protection service level, weakest to strongest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum ProtectionTier {
    /// Unprotected planned fast path (the BER=0 serving configuration):
    /// micro-batched GEMMs, no detection. Cheapest, and exactly the
    /// uninstrumented path `wgft-core` uses for fault-free evaluation.
    #[default]
    Fast,
    /// Range restriction only: calibrated clipping, detector-free.
    Range,
    /// Checksummed GEMMs and transform guards, locate-and-correct for
    /// single errors, no recompute fallback.
    Checksum,
    /// The loaded `ProtectionProfile`'s measured per-layer assignment
    /// (planner frontier point). Resolved by the serving engine, which owns
    /// the loaded profile; falls back to [`ProtectionTier::ChecksumRecompute`]'s
    /// blanket policy when the daemon has no profile.
    Profile,
    /// Checksums + range restriction + recompute-on-detect — the strongest
    /// executable scheme (the paper's full protection).
    ChecksumRecompute,
}

impl ProtectionTier {
    /// Every tier, weakest first.
    pub const ALL: [ProtectionTier; 5] = [
        ProtectionTier::Fast,
        ProtectionTier::Range,
        ProtectionTier::Checksum,
        ProtectionTier::Profile,
        ProtectionTier::ChecksumRecompute,
    ];

    /// The next stronger tier (the strongest promotes to itself).
    ///
    /// Escalation deliberately skips `Profile`: a promoted tenant needs
    /// *more* blanket protection, not a selective assignment, so the chain
    /// is `Fast -> Range -> Checksum -> ChecksumRecompute` and a `Profile`
    /// tenant promotes straight to the blanket scheme.
    #[must_use]
    pub fn promote(self) -> Self {
        match self {
            ProtectionTier::Fast => ProtectionTier::Range,
            ProtectionTier::Range => ProtectionTier::Checksum,
            ProtectionTier::Checksum
            | ProtectionTier::Profile
            | ProtectionTier::ChecksumRecompute => ProtectionTier::ChecksumRecompute,
        }
    }

    /// This tier promoted `levels` times.
    #[must_use]
    pub fn promoted_by(self, levels: u32) -> Self {
        let mut tier = self;
        for _ in 0..levels {
            tier = tier.promote();
        }
        tier
    }

    /// The executable ABFT policy of this tier, or `None` for the
    /// unprotected fast path and for [`ProtectionTier::Profile`], whose
    /// policy lives in the engine's loaded `ProtectionProfile` (the worker
    /// routes `Profile` jobs through the engine's profiled path instead of
    /// this accessor).
    #[must_use]
    pub fn policy(self) -> Option<AbftPolicy> {
        match self {
            ProtectionTier::Fast | ProtectionTier::Profile => None,
            ProtectionTier::Range => Some(AbftPolicy::range_only()),
            ProtectionTier::Checksum => Some(AbftPolicy::checksum().with_recompute(false)),
            ProtectionTier::ChecksumRecompute => Some(AbftPolicy::checksum_range()),
        }
    }

    /// Short label used in flags, counters and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtectionTier::Fast => "fast",
            ProtectionTier::Range => "range",
            ProtectionTier::Checksum => "checksum",
            ProtectionTier::Profile => "profile",
            ProtectionTier::ChecksumRecompute => "checksum_recompute",
        }
    }

    /// Parse a [`Self::label`] back into a tier.
    ///
    /// # Errors
    ///
    /// Returns the unknown label.
    pub fn parse(label: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|t| t.label() == label)
            .ok_or_else(|| {
                format!(
                    "unknown tier `{label}` (expected one of: {})",
                    Self::ALL.map(ProtectionTier::label).join(", ")
                )
            })
    }
}

impl fmt::Display for ProtectionTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_is_monotone_and_saturates() {
        for tier in ProtectionTier::ALL {
            assert!(tier.promote() >= tier);
        }
        assert_eq!(
            ProtectionTier::ChecksumRecompute.promote(),
            ProtectionTier::ChecksumRecompute
        );
        assert_eq!(
            ProtectionTier::Fast.promoted_by(2),
            ProtectionTier::Checksum
        );
        assert_eq!(
            ProtectionTier::Fast.promoted_by(99),
            ProtectionTier::ChecksumRecompute
        );
        // Profile sits below the blanket scheme and escalates straight to it.
        assert!(ProtectionTier::Profile > ProtectionTier::Checksum);
        assert!(ProtectionTier::Profile < ProtectionTier::ChecksumRecompute);
        assert_eq!(
            ProtectionTier::Profile.promote(),
            ProtectionTier::ChecksumRecompute
        );
    }

    #[test]
    fn labels_round_trip_and_policies_match_tiers() {
        for tier in ProtectionTier::ALL {
            assert_eq!(ProtectionTier::parse(tier.label()).unwrap(), tier);
        }
        assert!(ProtectionTier::parse("gold").is_err());
        assert!(ProtectionTier::Fast.policy().is_none());
        assert!(
            !ProtectionTier::Checksum
                .policy()
                .unwrap()
                .recompute_on_detect
        );
        let strongest = ProtectionTier::ChecksumRecompute.policy().unwrap();
        assert!(strongest.recompute_on_detect);
        assert!(strongest.mode_for(0).checks() && strongest.mode_for(0).clips());
    }
}
