//! The serving daemon: a [`FramedTcpServer`] front end feeding a single
//! worker thread that owns the [`ServeEngine`] exclusively.
//!
//! Handler threads (one per connection, inside the fabric's framed server)
//! decode requests, apply admission control (hard-capacity `Overloaded`,
//! escalated `Degraded` sheds — both explicit, never silent), enqueue jobs
//! and block on a per-job channel for the answer. The worker pops
//! micro-batches from the [`IntakeQueue`], routes every job through the
//! tier the escalation level dictates, feeds protection events back into
//! the [`EscalationMonitor`], and publishes the level for the next
//! admission decisions. No lock is held across a forward pass.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use wgft_abft::AbftEvents;
use wgft_fabric::wire::{decode, encode};
use wgft_fabric::{Clock, FrameHandler, FramedTcpServer};
use wgft_tensor::{Shape, Tensor};

use crate::counters::{ServeCounters, TenantTier};
use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::monitor::{EscalationMonitor, MonitorConfig};
use crate::proto::{ServeRequest, ServeResponse};
use crate::queue::{BatchConfig, IntakeQueue, Job, PushError};
use crate::tier::ProtectionTier;

/// Everything the daemon needs besides the engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Tenant tag → base protection tier.
    pub tenants: BTreeMap<String, ProtectionTier>,
    /// Tier of tenants not in the map.
    pub default_tier: ProtectionTier,
    /// Micro-batching and queue capacity.
    pub batch: BatchConfig,
    /// Escalation thresholds.
    pub monitor: MonitorConfig,
    /// How long a handler waits for the worker's answer before giving the
    /// client an explicit error.
    pub response_timeout_ms: u64,
    /// Retry delay suggested in `Overloaded`/`Degraded` responses.
    pub retry_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tenants: BTreeMap::new(),
            default_tier: ProtectionTier::Fast,
            batch: BatchConfig::default(),
            monitor: MonitorConfig::default(),
            response_timeout_ms: 30_000,
            retry_ms: 50,
        }
    }
}

impl ServeConfig {
    /// The base tier of `tenant`.
    #[must_use]
    pub fn base_tier(&self, tenant: &str) -> ProtectionTier {
        self.tenants
            .get(tenant)
            .copied()
            .unwrap_or(self.default_tier)
    }
}

/// Engine facts the handler threads need without touching the engine.
#[derive(Debug, Clone)]
struct EngineMeta {
    config_json: String,
    algo: String,
    clean_accuracy: f64,
    chaos: bool,
    profile_hash: Option<String>,
    image_shape: Shape,
    image_len: usize,
}

/// State shared between handler threads and the worker.
struct DaemonShared {
    config: ServeConfig,
    meta: EngineMeta,
    queue: IntakeQueue,
    counters: ServeCounters,
    /// Escalation level as last published by the worker (admission gauge).
    level: AtomicU32,
    shutdown: AtomicBool,
}

impl DaemonShared {
    fn level(&self) -> u32 {
        self.level.load(Ordering::Relaxed)
    }

    fn tenant_tiers(&self) -> Vec<TenantTier> {
        let level = self.level();
        self.config
            .tenants
            .iter()
            .map(|(tenant, base)| TenantTier {
                tenant: tenant.clone(),
                base: *base,
                effective: base.promoted_by(level),
            })
            .collect()
    }

    fn handle_classify(&self, request_id: u64, tenant: String, image: Vec<f32>) -> ServeResponse {
        if image.len() != self.meta.image_len {
            return ServeResponse::Error {
                message: format!(
                    "image has {} values, the served model expects {}",
                    image.len(),
                    self.meta.image_len
                ),
            };
        }
        let level = self.level();
        let base = self.config.base_tier(&tenant);
        // Degraded mode: once escalated and over the soft watermark, shed
        // unprotected-tier traffic explicitly so protected tenants keep
        // their latency. The client's retry layer absorbs the shed.
        if level > 0
            && base == ProtectionTier::Fast
            && self.queue.depth() >= self.config.batch.soft_watermark
        {
            self.counters.note_shed(&tenant);
            return ServeResponse::Degraded {
                level,
                retry_ms: self.config.retry_ms,
            };
        }
        let image = match Tensor::from_vec(self.meta.image_shape.clone(), image) {
            Ok(tensor) => tensor,
            Err(e) => {
                return ServeResponse::Error {
                    message: format!("bad image: {e}"),
                }
            }
        };
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request_id,
            tenant: tenant.clone(),
            image,
            respond: tx,
            enqueued_at: Instant::now(),
        };
        match self.queue.push(job) {
            Ok(depth) => self.counters.note_accepted(depth as u64),
            Err(PushError::Full) => {
                self.counters.note_overloaded();
                return ServeResponse::Overloaded {
                    retry_ms: self.config.retry_ms,
                };
            }
            Err(PushError::Closed) => {
                return ServeResponse::Error {
                    message: "daemon is shutting down".to_string(),
                }
            }
        }
        match rx.recv_timeout(Duration::from_millis(self.config.response_timeout_ms)) {
            Ok(response) => response,
            Err(_) => ServeResponse::Error {
                message: "timed out waiting for the inference worker".to_string(),
            },
        }
    }

    fn handle_request(&self, request: ServeRequest) -> ServeResponse {
        match request {
            ServeRequest::Classify {
                request_id,
                tenant,
                image,
            } => self.handle_classify(request_id, tenant, image),
            ServeRequest::Status => ServeResponse::Status(
                self.counters
                    .snapshot(self.queue.depth() as u64, self.level()),
            ),
            ServeRequest::Health => ServeResponse::Health {
                config_json: self.meta.config_json.clone(),
                algo: self.meta.algo.clone(),
                clean_accuracy: self.meta.clean_accuracy,
                chaos: self.meta.chaos,
                profile_hash: self.meta.profile_hash.clone(),
                escalation_level: self.level(),
                tenants: self.tenant_tiers(),
            },
            ServeRequest::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                // Jobs still queued get an explicit answer — the daemon
                // never leaves a client hanging on a silent drop.
                for job in self.queue.close() {
                    let _ = job.respond.send(ServeResponse::Error {
                        message: "daemon is shutting down".to_string(),
                    });
                }
                ServeResponse::ShutdownAck
            }
        }
    }
}

impl FrameHandler for DaemonShared {
    fn handle_frame(&self, payload: &[u8]) -> Option<Vec<u8>> {
        let request: ServeRequest = decode(payload).ok()?;
        let response = self.handle_request(request);
        encode(&response).ok()
    }
}

/// The running daemon: framed TCP front end + inference worker.
pub struct ServeDaemon {
    server: FramedTcpServer,
    shared: Arc<DaemonShared>,
    worker: Option<JoinHandle<()>>,
}

impl ServeDaemon {
    /// Bind `addr`, start the worker thread around `engine` and begin
    /// accepting connections. The monitor reads time from `clock`
    /// (pass [`wgft_fabric::SystemClock`] in production,
    /// [`wgft_fabric::ManualClock`] in tests).
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] if the listener cannot bind.
    pub fn spawn(
        engine: ServeEngine,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
        addr: &str,
    ) -> Result<Self, ServeError> {
        let meta = EngineMeta {
            config_json: engine.config_json().to_string(),
            algo: engine.algo_label().to_string(),
            clean_accuracy: engine.clean_accuracy(),
            chaos: engine.chaos_active(),
            profile_hash: engine.profile_hash().map(str::to_string),
            image_shape: engine.image_shape(),
            image_len: engine.image_len(),
        };
        let shared = Arc::new(DaemonShared {
            queue: IntakeQueue::new(config.batch),
            config,
            meta,
            counters: ServeCounters::new(),
            level: AtomicU32::new(0),
            shutdown: AtomicBool::new(false),
        });
        let monitor = EscalationMonitor::new(shared.config.monitor, clock);
        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("wgft-serve-worker".to_string())
                .spawn(move || worker_loop(engine, monitor, &shared))
                .map_err(|e| ServeError::Server(format!("spawning worker: {e}")))?
        };
        let server = FramedTcpServer::spawn(Arc::clone(&shared) as Arc<dyn FrameHandler>, addr)?;
        Ok(Self {
            server,
            shared,
            worker: Some(worker),
        })
    }

    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Whether a `Shutdown` request has been received.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Counter snapshot (same data the `Status` endpoint serves).
    #[must_use]
    pub fn snapshot(&self) -> crate::counters::CountersSnapshot {
        self.shared
            .counters
            .snapshot(self.shared.queue.depth() as u64, self.shared.level())
    }

    /// Block until a `Shutdown` request arrives, then stop.
    pub fn run_until_shutdown(&mut self) {
        while !self.shutdown_requested() {
            thread::sleep(Duration::from_millis(20));
        }
        self.stop();
    }

    /// Drain and stop everything: close the queue (answering any queued
    /// jobs explicitly), join the worker, stop the accept loop.
    pub fn stop(&mut self) {
        for job in self.shared.queue.close() {
            let _ = job.respond.send(ServeResponse::Error {
                message: "daemon is shutting down".to_string(),
            });
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        self.server.stop();
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The worker loop: pop micro-batches until the queue closes, serve every
/// job at its escalation-adjusted tier, feed the monitor, publish the level.
fn worker_loop(mut engine: ServeEngine, mut monitor: EscalationMonitor, shared: &DaemonShared) {
    let mut published_level = 0u32;
    while let Some(batch) = shared.queue.pop_batch() {
        let level = monitor.level();
        if level > published_level {
            shared.counters.note_escalation();
        }
        published_level = level;
        shared.level.store(level, Ordering::Relaxed);
        shared.counters.note_batch(batch.len() as u64);

        // Split the batch: fault-free fast-tier jobs coalesce into one
        // batched forward pass; everything else (protected tiers, and the
        // fast tier under chaos, whose per-request fault streams must not
        // depend on batch composition) runs per job.
        let mut fast_batch: Vec<Job> = Vec::new();
        let mut singles: Vec<(Job, ProtectionTier, bool)> = Vec::new();
        for job in batch {
            let base = shared.config.base_tier(&job.tenant);
            let effective = base.promoted_by(level);
            if effective == ProtectionTier::Fast && !engine.chaos_active() {
                fast_batch.push(job);
            } else {
                singles.push((job, effective, effective != base));
            }
        }

        if !fast_batch.is_empty() {
            let started = Instant::now();
            let images: Vec<&Tensor> = fast_batch.iter().map(|j| &j.image).collect();
            let outcome = engine.classify_fast_batch(&images);
            let per_job_us =
                (started.elapsed().as_micros() as u64) / fast_batch.len().max(1) as u64;
            match outcome {
                Ok(predictions) => {
                    for (job, prediction) in fast_batch.into_iter().zip(predictions) {
                        shared.counters.note_served(
                            &job.tenant,
                            &AbftEvents::new(),
                            false,
                            per_job_us,
                        );
                        let _ = job.respond.send(ServeResponse::Classified {
                            request_id: job.request_id,
                            prediction,
                            tier: ProtectionTier::Fast,
                            promoted: false,
                        });
                    }
                }
                Err(e) => {
                    let message = format!("inference failed: {e}");
                    for job in fast_batch {
                        let _ = job.respond.send(ServeResponse::Error {
                            message: message.clone(),
                        });
                    }
                }
            }
        }

        for (job, effective, promoted) in singles {
            let started = Instant::now();
            let outcome = if effective == ProtectionTier::Profile {
                engine.classify_profiled(job.request_id, &job.image)
            } else {
                match effective.policy() {
                    None => engine
                        .classify_fast_chaos(job.request_id, &job.image)
                        .map(|prediction| (prediction, AbftEvents::new())),
                    Some(policy) => engine.classify_protected(job.request_id, &job.image, &policy),
                }
            };
            let service_us = started.elapsed().as_micros() as u64;
            match outcome {
                Ok((prediction, events)) => {
                    monitor.observe(events.detected, events.uncorrected);
                    shared
                        .counters
                        .note_served(&job.tenant, &events, promoted, service_us);
                    let _ = job.respond.send(ServeResponse::Classified {
                        request_id: job.request_id,
                        prediction,
                        tier: effective,
                        promoted,
                    });
                }
                Err(e) => {
                    let _ = job.respond.send(ServeResponse::Error {
                        message: format!("inference failed: {e}"),
                    });
                }
            }
        }

        // Publish any escalation the batch's own events caused, so the
        // very next admission decision sees it.
        let after = monitor.level();
        if after > published_level {
            shared.counters.note_escalation();
            published_level = after;
        }
        shared.level.store(after, Ordering::Relaxed);
    }
}
