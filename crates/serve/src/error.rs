//! Error type of the serving daemon and client.

use std::fmt;
use wgft_fabric::FabricError;

/// Anything that can go wrong starting, running or calling the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Preparing the model/plans failed.
    Prepare(String),
    /// Transport-level failure (connection, framing, retries exhausted).
    Transport(FabricError),
    /// The daemon refused or could not serve the request.
    Server(String),
    /// Local configuration problem (bad tenant map, bad flags).
    Config(String),
}

impl ServeError {
    /// A [`ServeError::Server`] with the given message.
    #[must_use]
    pub fn server(message: impl Into<String>) -> Self {
        ServeError::Server(message.into())
    }

    /// A [`ServeError::Config`] with the given message.
    #[must_use]
    pub fn config(message: impl Into<String>) -> Self {
        ServeError::Config(message.into())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Prepare(m) => write!(f, "preparation failed: {m}"),
            ServeError::Transport(e) => write!(f, "transport failed: {e}"),
            ServeError::Server(m) => write!(f, "server refused: {m}"),
            ServeError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FabricError> for ServeError {
    fn from(e: FabricError) -> Self {
        ServeError::Transport(e)
    }
}
