//! The serving client: framed TCP calls under the fabric's retry layer.
//!
//! Every request is idempotent at the daemon (chaos fault streams are
//! seeded from the request id), so the client blindly re-sends after any
//! transient failure — torn connections, daemon restarts, `Overloaded` and
//! `Degraded` sheds all look the same to the caller: a slower answer, never
//! a lost one.

use wgft_fabric::wire::{decode, encode};
use wgft_fabric::{Backoff, FabricError, FramedTcpClient, RetryPolicy, ThreadSleeper};

use crate::counters::CountersSnapshot;
use crate::error::ServeError;
use crate::proto::{ServeRequest, ServeResponse};
use crate::tier::ProtectionTier;

/// One answered classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// Predicted class index.
    pub prediction: usize,
    /// Tier the daemon served the request at.
    pub tier: ProtectionTier,
    /// Whether the escalation monitor promoted the request past its
    /// tenant's base tier.
    pub promoted: bool,
}

/// The daemon's health report (see [`ServeResponse::Health`]).
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Served `CampaignConfig`, verbatim JSON.
    pub config_json: String,
    /// Conv algorithm label.
    pub algo: String,
    /// Fault-free baseline accuracy.
    pub clean_accuracy: f64,
    /// Whether chaos injection is active.
    pub chaos: bool,
    /// Identity hash of the loaded planner profile, if any.
    pub profile_hash: Option<String>,
    /// Current escalation level.
    pub escalation_level: u32,
}

/// A retrying client for one daemon.
pub struct ServeClient {
    client: FramedTcpClient,
    backoff: Backoff,
    addr_file: Option<std::path::PathBuf>,
}

impl ServeClient {
    /// A client for the daemon at `addr` with the default retry policy.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// A client with an explicit retry policy (seeded jitter makes load
    /// runs reproducible).
    #[must_use]
    pub fn with_policy(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Self {
            client: FramedTcpClient::new(addr),
            backoff: Backoff::new(policy, std::sync::Arc::new(ThreadSleeper)),
            addr_file: None,
        }
    }

    /// Re-resolve the daemon's address from a port file before every
    /// reconnect attempt. A restarted daemon comes back on a fresh
    /// ephemeral port and rewrites its `--port-file`; clients configured
    /// with this follow it instead of hammering the dead address.
    #[must_use]
    pub fn with_addr_file(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.addr_file = Some(path.into());
        self
    }

    /// Retries performed so far (chaos drills assert on this).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.backoff.retries()
    }

    /// One request/response exchange under the retry layer. Shed responses
    /// (`Overloaded`/`Degraded`) are mapped to retryable connection errors
    /// so the backoff absorbs them.
    fn call(&mut self, request: &ServeRequest) -> Result<ServeResponse, ServeError> {
        let payload = encode(request)?;
        let client = &mut self.client;
        let addr_file = self.addr_file.as_deref();
        let response = self.backoff.run(|| {
            if let (false, Some(path)) = (client.is_connected(), addr_file) {
                let addr = std::fs::read_to_string(path).map_err(|e| {
                    FabricError::connection(format!(
                        "address file {} unreadable: {e}",
                        path.display()
                    ))
                })?;
                let addr = addr.trim();
                if addr.is_empty() {
                    return Err(FabricError::connection(format!(
                        "address file {} is empty",
                        path.display()
                    )));
                }
                client.set_addr(addr);
            }
            let raw = client.call_raw(&payload)?;
            let response: ServeResponse = decode(&raw)?;
            match response {
                ServeResponse::Overloaded { retry_ms } => Err(FabricError::connection(format!(
                    "daemon overloaded (suggested retry {retry_ms} ms)"
                ))),
                ServeResponse::Degraded { level, retry_ms } => Err(FabricError::connection(
                    format!("daemon degraded at level {level} (suggested retry {retry_ms} ms)"),
                )),
                other => Ok(other),
            }
        })?;
        Ok(response)
    }

    /// Classify one image as `tenant`. `request_id` must be unique per
    /// logical request and reused on manual re-sends (the retry layer
    /// already reuses it automatically).
    ///
    /// # Errors
    ///
    /// [`ServeError::Transport`] once retries are exhausted,
    /// [`ServeError::Server`] on an explicit daemon refusal.
    pub fn classify(
        &mut self,
        request_id: u64,
        tenant: &str,
        image: &[f32],
    ) -> Result<Classification, ServeError> {
        let request = ServeRequest::Classify {
            request_id,
            tenant: tenant.to_string(),
            image: image.to_vec(),
        };
        match self.call(&request)? {
            ServeResponse::Classified {
                request_id: echoed,
                prediction,
                tier,
                promoted,
            } => {
                if echoed != request_id {
                    return Err(ServeError::server(format!(
                        "response for request {echoed}, expected {request_id}"
                    )));
                }
                Ok(Classification {
                    prediction,
                    tier,
                    promoted,
                })
            }
            ServeResponse::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::server(format!(
                "unexpected response to classify: {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's counter snapshot.
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::classify`].
    pub fn status(&mut self) -> Result<CountersSnapshot, ServeError> {
        match self.call(&ServeRequest::Status)? {
            ServeResponse::Status(snapshot) => Ok(snapshot),
            ServeResponse::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::server(format!(
                "unexpected response to status: {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's health/configuration report.
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::classify`].
    pub fn health(&mut self) -> Result<HealthReport, ServeError> {
        match self.call(&ServeRequest::Health)? {
            ServeResponse::Health {
                config_json,
                algo,
                clean_accuracy,
                chaos,
                profile_hash,
                escalation_level,
                ..
            } => Ok(HealthReport {
                config_json,
                algo,
                clean_accuracy,
                chaos,
                profile_hash,
                escalation_level,
            }),
            ServeResponse::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::server(format!(
                "unexpected response to health: {other:?}"
            ))),
        }
    }

    /// Ask the daemon to drain and exit. Idempotent.
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::classify`].
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&ServeRequest::Shutdown)? {
            ServeResponse::ShutdownAck => Ok(()),
            ServeResponse::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::server(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }
}
