//! The inference engine behind the daemon: one prepared
//! [`FaultToleranceCampaign`] plus the plans and scratch every serving path
//! needs, owned exclusively by the worker thread (no locks on the hot path).
//!
//! Three serving paths, one per protection family:
//!
//! * **fast batch** — fault-free micro-batched fast path
//!   ([`QuantizedNetwork::forward_fast_batch`]), bit-identical to per-image
//!   execution for any coalescing schedule;
//! * **fast chaos** — the same fast path per image with a
//!   [`GemmFaultInjector`] striking the accumulator latches, seeded from
//!   `(chaos_seed, request_id)` so retries are idempotent;
//! * **protected** — the executable ABFT path
//!   ([`QuantizedNetwork::classify_abft`]) under the tier's policy, with a
//!   [`FaultyArithmetic`] backend carrying the chaos BER (zero when chaos
//!   is off: the protected tiers still pay their detection overhead, which
//!   is exactly what the per-tier latency numbers are for).

use wgft_abft::{AbftEvents, AbftPolicy, AbftScratch, ProtectionProfile};
use wgft_core::{CampaignConfig, FaultToleranceCampaign};
use wgft_faultsim::{
    BitErrorRate, FaultConfig, FaultyArithmetic, GemmFaultInjector, ProtectionPlan,
};
use wgft_nn::{FastInference, NnError};
use wgft_tensor::Tensor;
use wgft_winograd::ConvAlgorithm;

use crate::error::ServeError;

/// Fault-injection settings of `--chaos` mode.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Bit error rate driven into every request.
    pub ber: f64,
    /// Base seed; each request's fault stream is seeded from
    /// `mix(seed, request_id)`.
    pub seed: u64,
}

/// Mix a chaos base seed with a request id into a per-request fault seed
/// (splitmix64 finalizer — a pure function of its inputs, never of arrival
/// order, so a re-sent request replays the identical fault stream).
// wgft-audit: consensus-critical -- chaos drills must replay bit-identically
#[must_use]
pub fn request_fault_seed(seed: u64, request_id: u64) -> u64 {
    let mut z = seed ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The worker thread's prepared serving engine.
pub struct ServeEngine {
    campaign: FaultToleranceCampaign,
    algo: ConvAlgorithm,
    fast: FastInference,
    scratch: AbftScratch,
    chaos: Option<ChaosConfig>,
    config_json: String,
    /// The loaded planner profile (tier `profile`), pre-resolved into the
    /// executable policy + idealized-TMR plan it serves under, plus its
    /// identity hash for `Health`.
    profile: Option<LoadedProfile>,
}

/// A `ProtectionProfile` resolved into its serving form once at prepare
/// time, so the hot path never re-derives policies.
struct LoadedProfile {
    policy: AbftPolicy,
    plan: ProtectionPlan,
    hash: String,
}

impl ServeEngine {
    /// Train/load the model, quantize it, and prepare every plan the
    /// serving paths use (fast winograd plans, ABFT calibration) — all the
    /// one-time cost happens here, before the daemon accepts a connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Prepare`] if campaign preparation or planning fails.
    pub fn prepare(
        config: &CampaignConfig,
        algo: ConvAlgorithm,
        chaos: Option<ChaosConfig>,
    ) -> Result<Self, ServeError> {
        Self::prepare_with_profile(config, algo, chaos, None)
    }

    /// [`ServeEngine::prepare`] plus a planner [`ProtectionProfile`] for the
    /// `profile` tier. The profile must validate and must assign exactly the
    /// served network's compute layers; its recorded model name must match.
    ///
    /// # Errors
    ///
    /// [`ServeError::Prepare`] if campaign preparation fails or the profile
    /// does not fit the served model.
    pub fn prepare_with_profile(
        config: &CampaignConfig,
        algo: ConvAlgorithm,
        chaos: Option<ChaosConfig>,
        profile: Option<ProtectionProfile>,
    ) -> Result<Self, ServeError> {
        let config_json = serde_json::to_string(config)
            .map_err(|e| ServeError::Prepare(format!("config serialization: {e}")))?;
        let campaign = FaultToleranceCampaign::prepare(config)
            .map_err(|e| ServeError::Prepare(e.to_string()))?;
        let fast = campaign
            .quantized()
            .prepare_fast()
            .map_err(|e| ServeError::Prepare(e.to_string()))?;
        // Force the lazy ABFT calibration now: the protected tiers must not
        // pay it on their first request.
        let _ = campaign.abft_calibration(algo);
        let profile = profile
            .map(|profile| {
                profile
                    .validate()
                    .map_err(|e| ServeError::Prepare(format!("profile: {e}")))?;
                let layers = campaign.quantized().compute_layer_count();
                if profile.layers.len() != layers {
                    return Err(ServeError::Prepare(format!(
                        "profile assigns {} layers but the served model has {layers} \
                         compute layers",
                        profile.layers.len()
                    )));
                }
                if profile.model != campaign.quantized().name() {
                    return Err(ServeError::Prepare(format!(
                        "profile was planned for model `{}`, the daemon serves `{}`",
                        profile.model,
                        campaign.quantized().name()
                    )));
                }
                Ok(LoadedProfile {
                    policy: profile.policy(),
                    plan: profile.plan(),
                    hash: profile.hash(),
                })
            })
            .transpose()?;
        Ok(Self {
            campaign,
            algo,
            fast,
            scratch: AbftScratch::new(),
            chaos,
            config_json,
            profile,
        })
    }

    /// The campaign configuration, verbatim JSON (served by `Health`).
    #[must_use]
    pub fn config_json(&self) -> &str {
        &self.config_json
    }

    /// The conv algorithm label (served by `Health`).
    #[must_use]
    pub fn algo_label(&self) -> &'static str {
        match self.algo {
            ConvAlgorithm::Standard => "standard",
            ConvAlgorithm::Winograd(_) => "winograd",
        }
    }

    /// Fault-free baseline accuracy of the served network.
    #[must_use]
    pub fn clean_accuracy(&self) -> f64 {
        self.campaign.clean_accuracy()
    }

    /// Whether chaos injection is active.
    #[must_use]
    pub fn chaos_active(&self) -> bool {
        self.chaos.is_some()
    }

    /// Flattened image length the served spec expects.
    #[must_use]
    pub fn image_len(&self) -> usize {
        self.campaign.config().spec.image_len()
    }

    /// Tensor shape of a served image.
    #[must_use]
    pub fn image_shape(&self) -> wgft_tensor::Shape {
        self.campaign.config().spec.image_shape()
    }

    /// Shape a raw flattened image into the served spec's tensor.
    ///
    /// # Errors
    ///
    /// [`ServeError::Server`] when the length is wrong.
    pub fn shape_image(&self, data: Vec<f32>) -> Result<Tensor, ServeError> {
        let expected = self.image_len();
        if data.len() != expected {
            return Err(ServeError::server(format!(
                "image has {} values, the served model expects {expected}",
                data.len()
            )));
        }
        Tensor::from_vec(self.campaign.config().spec.image_shape(), data)
            .map_err(|e| ServeError::server(format!("bad image: {e}")))
    }

    /// Classify a micro-batch on the unprotected fast path, fault-free.
    /// Bit-identical to per-image execution for any batch schedule.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward_fast_batch`][fb].
    ///
    /// [fb]: wgft_nn::QuantizedNetwork::forward_fast_batch
    pub fn classify_fast_batch(&mut self, images: &[&Tensor]) -> Result<Vec<usize>, NnError> {
        self.campaign
            .quantized()
            .classify_fast_batch(images, self.algo, &mut self.fast)
    }

    /// Classify one image on the fast path with the chaos injector striking
    /// the accumulator latches. Deterministic in `request_id`; falls back
    /// to the clean fast path when chaos is off.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::forward_fast`][ff].
    ///
    /// [ff]: wgft_nn::QuantizedNetwork::forward_fast
    pub fn classify_fast_chaos(
        &mut self,
        request_id: u64,
        image: &Tensor,
    ) -> Result<usize, NnError> {
        let Some(chaos) = self.chaos else {
            return self
                .campaign
                .quantized()
                .classify_fast(image, self.algo, &mut self.fast);
        };
        // Strikes cover the full 32-bit accumulator latch, not just the
        // stored word width: a soft error in the matrix engine's output
        // register can hit any accumulator bit, and the high bits are the
        // ones that survive requantization.
        let mut injector = GemmFaultInjector::new_for_bits(
            BitErrorRate::new(chaos.ber),
            32,
            request_fault_seed(chaos.seed, request_id),
        );
        self.campaign.quantized().classify_fast_with_faults(
            image,
            self.algo,
            &mut self.fast,
            &mut |acc| {
                injector.corrupt_i64(acc);
            },
        )
    }

    /// Identity hash of the loaded planner profile, if any (served by
    /// `Health`).
    #[must_use]
    pub fn profile_hash(&self) -> Option<&str> {
        self.profile.as_ref().map(|p| p.hash.as_str())
    }

    /// Classify one image under the loaded planner profile's measured
    /// per-layer assignment: its ABFT policy plus its idealized-TMR plan
    /// driven through the instrumented arithmetic. Falls back to
    /// [`ProtectionTier::ChecksumRecompute`]'s blanket policy when no
    /// profile is loaded, so the `profile` tier never serves weaker than
    /// configured. Deterministic in `request_id`.
    ///
    /// [`ProtectionTier::ChecksumRecompute`]: crate::ProtectionTier::ChecksumRecompute
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::classify_abft`][ca].
    ///
    /// [ca]: wgft_nn::QuantizedNetwork::classify_abft
    pub fn classify_profiled(
        &mut self,
        request_id: u64,
        image: &Tensor,
    ) -> Result<(usize, AbftEvents), NnError> {
        let Some(profile) = &self.profile else {
            return self.classify_protected(request_id, image, &AbftPolicy::checksum_range());
        };
        let config = self.campaign.config();
        let (ber, seed) = match self.chaos {
            Some(chaos) => (chaos.ber, request_fault_seed(chaos.seed, request_id)),
            None => (0.0, request_fault_seed(0, request_id)),
        };
        let fault_config = FaultConfig::new(BitErrorRate::new(ber), config.width)
            .with_model(config.fault_model)
            .with_protection(profile.plan.clone());
        let policy = profile.policy.clone();
        let mut arith = FaultyArithmetic::new(fault_config, seed);
        let calibration = self.campaign.abft_calibration(self.algo);
        let mut events = AbftEvents::new();
        let prediction = self.campaign.quantized().classify_abft(
            image,
            &mut arith,
            self.algo,
            &policy,
            Some(calibration),
            &mut self.scratch,
            &mut events,
        )?;
        Ok((prediction, events))
    }

    /// Classify one image under an ABFT policy, with the chaos BER (or
    /// zero) driven through the instrumented arithmetic. Returns the
    /// prediction and the request's protection events. Deterministic in
    /// `request_id`.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedNetwork::classify_abft`][ca].
    ///
    /// [ca]: wgft_nn::QuantizedNetwork::classify_abft
    pub fn classify_protected(
        &mut self,
        request_id: u64,
        image: &Tensor,
        policy: &AbftPolicy,
    ) -> Result<(usize, AbftEvents), NnError> {
        let config = self.campaign.config();
        let (ber, seed) = match self.chaos {
            Some(chaos) => (chaos.ber, request_fault_seed(chaos.seed, request_id)),
            None => (0.0, request_fault_seed(0, request_id)),
        };
        let fault_config =
            FaultConfig::new(BitErrorRate::new(ber), config.width).with_model(config.fault_model);
        let mut arith = FaultyArithmetic::new(fault_config, seed);
        let calibration = self.campaign.abft_calibration(self.algo);
        let mut events = AbftEvents::new();
        let prediction = self.campaign.quantized().classify_abft(
            image,
            &mut arith,
            self.algo,
            policy,
            Some(calibration),
            &mut self.scratch,
            &mut events,
        )?;
        Ok((prediction, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_fault_seeds_are_deterministic_and_spread() {
        assert_eq!(request_fault_seed(7, 42), request_fault_seed(7, 42));
        assert_ne!(request_fault_seed(7, 42), request_fault_seed(7, 43));
        assert_ne!(request_fault_seed(7, 42), request_fault_seed(8, 42));
        // Consecutive ids must not produce near-identical streams.
        let a = request_fault_seed(7, 1);
        let b = request_fault_seed(7, 2);
        assert!((a ^ b).count_ones() > 8, "seeds barely differ: {a:x} {b:x}");
    }
}
