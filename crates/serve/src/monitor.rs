//! The fault-escalation monitor: graceful degradation driven by the
//! observed detection stream.
//!
//! The monitor keeps a rolling window of protection events (detected and
//! uncorrected counts with timestamps from a [`Clock`], so tests drive it in
//! zero wall time with [`wgft_fabric::ManualClock`]). When the windowed
//! rates cross the configured thresholds the escalation level rises, which
//! the daemon translates into tenant-tier promotions and (above the soft
//! queue watermark) explicit `Degraded` sheds. Levels decay automatically
//! as the window slides past the burst.

use std::collections::VecDeque;
use std::sync::Arc;
use wgft_fabric::Clock;

/// Escalation thresholds.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Rolling window length.
    pub window_ms: u64,
    /// Windowed detected-event count at which the level reaches 1 (every
    /// further multiple adds a level, capped at [`MonitorConfig::max_level`]).
    pub detected_per_window: u64,
    /// Windowed uncorrected-event count at which the level jumps straight
    /// to the maximum: uncorrected faults mean the current tiers are not
    /// holding the SLA.
    pub uncorrected_per_window: u64,
    /// Highest level (also the most promotions applied to a tenant tier).
    pub max_level: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            window_ms: 2_000,
            detected_per_window: 64,
            uncorrected_per_window: 4,
            max_level: 3,
        }
    }
}

/// One observation in the rolling window.
#[derive(Debug, Clone, Copy)]
struct Observation {
    at_ms: u64,
    detected: u64,
    uncorrected: u64,
}

/// Rolling-window fault-rate watcher.
pub struct EscalationMonitor {
    config: MonitorConfig,
    clock: Arc<dyn Clock>,
    window: VecDeque<Observation>,
    detected_in_window: u64,
    uncorrected_in_window: u64,
}

impl EscalationMonitor {
    /// A monitor reading time from `clock`.
    #[must_use]
    pub fn new(config: MonitorConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            config,
            clock,
            window: VecDeque::new(),
            detected_in_window: 0,
            uncorrected_in_window: 0,
        }
    }

    /// Record the protection events of one served request (no-op when both
    /// counts are zero — fault-free traffic never grows the window).
    pub fn observe(&mut self, detected: u64, uncorrected: u64) {
        if detected == 0 && uncorrected == 0 {
            return;
        }
        let at_ms = self.clock.now_ms();
        self.detected_in_window += detected;
        self.uncorrected_in_window += uncorrected;
        self.window.push_back(Observation {
            at_ms,
            detected,
            uncorrected,
        });
        self.evict(at_ms);
    }

    /// Drop observations older than the window.
    fn evict(&mut self, now_ms: u64) {
        let horizon = now_ms.saturating_sub(self.config.window_ms);
        while let Some(front) = self.window.front() {
            if front.at_ms >= horizon {
                break;
            }
            self.detected_in_window -= front.detected;
            self.uncorrected_in_window -= front.uncorrected;
            self.window.pop_front();
        }
    }

    /// The current escalation level: 0 is nominal; uncorrected events past
    /// their threshold jump to the maximum, detected events add one level
    /// per threshold multiple. Decays as the window slides.
    pub fn level(&mut self) -> u32 {
        self.evict(self.clock.now_ms());
        if self.config.uncorrected_per_window > 0
            && self.uncorrected_in_window >= self.config.uncorrected_per_window
        {
            return self.config.max_level;
        }
        if self.config.detected_per_window == 0 {
            return 0;
        }
        let multiples = self.detected_in_window / self.config.detected_per_window;
        u32::try_from(multiples)
            .unwrap_or(u32::MAX)
            .min(self.config.max_level)
    }

    /// Windowed (detected, uncorrected) counts — diagnostics.
    pub fn windowed(&mut self) -> (u64, u64) {
        self.evict(self.clock.now_ms());
        (self.detected_in_window, self.uncorrected_in_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_fabric::ManualClock;

    fn monitor(clock: &Arc<ManualClock>) -> EscalationMonitor {
        EscalationMonitor::new(
            MonitorConfig {
                window_ms: 1_000,
                detected_per_window: 10,
                uncorrected_per_window: 3,
                max_level: 3,
            },
            Arc::<ManualClock>::clone(clock) as Arc<dyn Clock>,
        )
    }

    #[test]
    fn detected_rate_raises_levels_in_threshold_multiples() {
        let clock = Arc::new(ManualClock::new());
        let mut m = monitor(&clock);
        assert_eq!(m.level(), 0);
        m.observe(9, 0);
        assert_eq!(m.level(), 0, "below threshold");
        m.observe(1, 0);
        assert_eq!(m.level(), 1, "threshold reached");
        m.observe(10, 0);
        assert_eq!(m.level(), 2, "second multiple");
        m.observe(100, 0);
        assert_eq!(m.level(), 3, "capped at max_level");
    }

    #[test]
    fn uncorrected_events_jump_to_max_level() {
        let clock = Arc::new(ManualClock::new());
        let mut m = monitor(&clock);
        m.observe(0, 3);
        assert_eq!(m.level(), 3, "uncorrected faults are an SLA break");
    }

    #[test]
    fn levels_decay_as_the_window_slides_in_zero_wall_time() {
        let clock = Arc::new(ManualClock::new());
        let mut m = monitor(&clock);
        m.observe(10, 0);
        assert_eq!(m.level(), 1);
        clock.advance(500);
        m.observe(10, 0);
        assert_eq!(m.level(), 2, "both bursts inside the window");
        clock.advance(600);
        assert_eq!(m.level(), 1, "first burst aged out");
        assert_eq!(m.windowed(), (10, 0));
        clock.advance(600);
        assert_eq!(m.level(), 0, "fully decayed");
        assert_eq!(m.windowed(), (0, 0));
    }

    #[test]
    fn fault_free_traffic_never_grows_the_window() {
        let clock = Arc::new(ManualClock::new());
        let mut m = monitor(&clock);
        for _ in 0..10_000 {
            m.observe(0, 0);
        }
        assert_eq!(m.window.len(), 0);
        assert_eq!(m.level(), 0);
    }
}
