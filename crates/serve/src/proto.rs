//! The serving wire protocol: JSON messages in the same `WGFB` frames as
//! the sweep fabric (length prefix + FNV-1a checksum, see
//! [`wgft_fabric::wire`]).
//!
//! Every request is idempotent at the daemon: `Classify` is a pure function
//! of `(request_id, tenant, image)` — even under `--chaos`, the injected
//! fault stream is seeded from `request_id`, so a client re-sending after a
//! lost response (or a daemon restart) gets the same answer. That is what
//! lets the retry layer mask a SIGKILL mid-load without any silent drops.

use crate::counters::{CountersSnapshot, TenantTier};
use crate::tier::ProtectionTier;
use serde::{Deserialize, Serialize};

/// A client-to-daemon request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeRequest {
    /// Classify one image under the tenant's protection tier.
    Classify {
        /// Client-chosen id; retries MUST reuse it (it seeds the chaos
        /// fault stream, making re-sends idempotent).
        request_id: u64,
        /// Tenant tag (maps to a configured tier; unknown tenants get the
        /// daemon's default tier).
        tenant: String,
        /// Flattened NCHW image, length = the served spec's image length.
        image: Vec<f32>,
    },
    /// Read every counter.
    Status,
    /// Read the serving configuration (enough for a client to rebuild the
    /// evaluation set and judge accuracy).
    Health,
    /// Ask the daemon to drain and exit its serve loop. Idempotent.
    Shutdown,
}

/// A daemon-to-client response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeResponse {
    /// The classification answer.
    Classified {
        /// Echo of the request id.
        request_id: u64,
        /// Predicted class index.
        prediction: usize,
        /// Tier the request was actually served at.
        tier: ProtectionTier,
        /// Whether that tier is stronger than the tenant's base tier
        /// (the escalation monitor promoted it).
        promoted: bool,
    },
    /// Explicit load shed: the intake queue is at capacity. Retry with
    /// backoff — never a silent drop.
    Overloaded {
        /// Suggested delay before retrying.
        retry_ms: u64,
    },
    /// Explicit degraded-mode shed: the daemon is escalated and over its
    /// soft watermark, and this request's tier is being shed to protect
    /// the stronger tiers' latency. Retry with backoff.
    Degraded {
        /// Current escalation level.
        level: u32,
        /// Suggested delay before retrying.
        retry_ms: u64,
    },
    /// Counter snapshot.
    Status(CountersSnapshot),
    /// Serving configuration and baseline.
    Health {
        /// The `CampaignConfig` the daemon serves, verbatim JSON — a client
        /// can rebuild the synthetic evaluation set from it (dataset
        /// generation is cheap and deterministic; training is not needed).
        config_json: String,
        /// Conv algorithm in use (`standard` or `winograd`).
        algo: String,
        /// Fault-free baseline accuracy measured at startup.
        clean_accuracy: f64,
        /// Whether `--chaos` fault injection is active.
        chaos: bool,
        /// Identity hash of the loaded planner `ProtectionProfile`
        /// (`wgft-serve daemon --profile FILE`), `None` when serving
        /// without one.
        profile_hash: Option<String>,
        /// Current escalation level.
        escalation_level: u32,
        /// Configured tenants and their base/effective tiers.
        tenants: Vec<TenantTier>,
    },
    /// Shutdown recorded (first request and re-sends alike).
    ShutdownAck,
    /// The request was understood but refused.
    Error {
        /// Why.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgft_fabric::wire::{decode, encode, read_frame, write_frame};

    #[test]
    fn serve_messages_roundtrip_through_fabric_frames() {
        let requests = [
            ServeRequest::Classify {
                request_id: 42,
                tenant: "gold".to_string(),
                image: vec![0.5, -1.0, 0.25],
            },
            ServeRequest::Status,
            ServeRequest::Health,
            ServeRequest::Shutdown,
        ];
        for req in &requests {
            let mut buf = Vec::new();
            write_frame(&mut buf, &encode(req).unwrap()).unwrap();
            let payload = read_frame(&mut buf.as_slice()).unwrap();
            let back: ServeRequest = decode(&payload).unwrap();
            assert_eq!(&back, req);
        }

        let responses = [
            ServeResponse::Classified {
                request_id: 42,
                prediction: 3,
                tier: ProtectionTier::Checksum,
                promoted: true,
            },
            ServeResponse::Overloaded { retry_ms: 50 },
            ServeResponse::Degraded {
                level: 1,
                retry_ms: 50,
            },
            ServeResponse::Status(CountersSnapshot::default()),
            ServeResponse::Health {
                config_json: "{}".to_string(),
                algo: "winograd".to_string(),
                clean_accuracy: 0.9,
                chaos: false,
                profile_hash: Some("49786e5095715218".to_string()),
                escalation_level: 0,
                tenants: Vec::new(),
            },
            ServeResponse::ShutdownAck,
            ServeResponse::Error {
                message: "nope".to_string(),
            },
        ];
        for resp in &responses {
            let mut buf = Vec::new();
            write_frame(&mut buf, &encode(resp).unwrap()).unwrap();
            let payload = read_frame(&mut buf.as_slice()).unwrap();
            let back: ServeResponse = decode(&payload).unwrap();
            assert_eq!(&back, resp);
        }
    }
}
