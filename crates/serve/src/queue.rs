//! The intake queue: bounded, condvar-backed, and the place where
//! micro-batches are born.
//!
//! Handler threads push one [`Job`] per classify request; the single worker
//! thread pops *batches*: it blocks for the first job, then coalesces
//! whatever else arrives within the batching window (up to `max_batch`
//! jobs, waiting at most `max_delay_ms` after the first). Closing the queue
//! wakes everyone; jobs still queued at close time are handed back to the
//! caller so the daemon can answer them explicitly — nothing is silently
//! dropped.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use wgft_tensor::Tensor;

use crate::proto::ServeResponse;

/// Batching and capacity knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most jobs coalesced into one micro-batch.
    pub max_batch: usize,
    /// Longest the worker waits for stragglers after the first job of a
    /// batch arrives.
    pub max_delay_ms: u64,
    /// Hard queue capacity; pushes beyond it are refused (`Overloaded`).
    pub max_queue: usize,
    /// Soft watermark: above this depth an escalated daemon sheds
    /// fast-tier requests with `Degraded`.
    pub soft_watermark: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_delay_ms: 2,
            max_queue: 256,
            soft_watermark: 192,
        }
    }
}

/// One queued classify request, with the channel its answer goes back on.
#[derive(Debug)]
pub struct Job {
    /// Client-chosen request id (seeds chaos, echoed in the response).
    pub request_id: u64,
    /// Tenant tag.
    pub tenant: String,
    /// The image, already shaped.
    pub image: Tensor,
    /// Where the handler thread is waiting for the answer.
    pub respond: mpsc::Sender<ServeResponse>,
    /// When the job entered the queue (for queueing-delay accounting).
    pub enqueued_at: Instant,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at `max_queue`.
    Full,
    /// The queue is closed (daemon draining).
    Closed,
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The shared intake queue.
#[derive(Debug)]
pub struct IntakeQueue {
    config: BatchConfig,
    state: Mutex<QueueState>,
    arrived: Condvar,
}

impl IntakeQueue {
    /// An empty open queue.
    #[must_use]
    pub fn new(config: BatchConfig) -> Self {
        Self {
            config,
            state: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
        }
    }

    /// The batching configuration.
    #[must_use]
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Enqueue a job. Returns the queue depth *including* this job, or why
    /// the job was refused (the caller answers the client either way).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`IntakeQueue::close`].
    pub fn push(&self, job: Job) -> Result<usize, PushError> {
        let mut state = self.state.lock().expect("queue mutex");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.jobs.len() >= self.config.max_queue {
            return Err(PushError::Full);
        }
        state.jobs.push_back(job);
        let depth = state.jobs.len();
        drop(state);
        self.arrived.notify_one();
        Ok(depth)
    }

    /// Current depth (gauge).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue mutex").jobs.len()
    }

    /// Block for the next micro-batch: waits for a first job, then
    /// coalesces arrivals for up to `max_delay_ms` or until `max_batch`
    /// jobs are in hand. Returns `None` once the queue is closed *and*
    /// empty — the worker's signal to exit.
    pub fn pop_batch(&self) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("queue mutex");
        // Phase 1: wait for the first job (or close).
        loop {
            if !state.jobs.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            state = self.arrived.wait(state).expect("queue mutex");
        }
        // Phase 2: coalesce stragglers within the batching window.
        let deadline = Instant::now() + Duration::from_millis(self.config.max_delay_ms);
        while state.jobs.len() < self.config.max_batch && !state.closed {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .arrived
                .wait_timeout(state, deadline - now)
                .expect("queue mutex");
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.jobs.len().min(self.config.max_batch);
        Some(state.jobs.drain(..take).collect())
    }

    /// Close the queue and hand back every job still inside it, so the
    /// caller can answer those clients explicitly. Idempotent.
    pub fn close(&self) -> Vec<Job> {
        let mut state = self.state.lock().expect("queue mutex");
        state.closed = true;
        let drained = state.jobs.drain(..).collect();
        drop(state);
        self.arrived.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use wgft_tensor::Shape;

    fn job(id: u64) -> (Job, mpsc::Receiver<ServeResponse>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                request_id: id,
                tenant: "t".to_string(),
                image: Tensor::zeros(Shape::new(vec![1])),
                respond: tx,
                enqueued_at: Instant::now(),
            },
            rx,
        )
    }

    fn config(max_batch: usize, max_queue: usize) -> BatchConfig {
        BatchConfig {
            max_batch,
            max_delay_ms: 5,
            max_queue,
            soft_watermark: max_queue / 2,
        }
    }

    #[test]
    fn batches_coalesce_up_to_max_batch() {
        let queue = IntakeQueue::new(config(3, 16));
        let mut rxs = Vec::new();
        for id in 0..5 {
            let (j, rx) = job(id);
            queue.push(j).unwrap();
            rxs.push(rx);
        }
        let first = queue.pop_batch().unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(
            first.iter().map(|j| j.request_id).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "FIFO order"
        );
        let second = queue.pop_batch().unwrap();
        assert_eq!(second.len(), 2);
    }

    #[test]
    fn push_refuses_at_capacity_and_after_close() {
        let queue = IntakeQueue::new(config(4, 2));
        let (j0, _rx0) = job(0);
        let (j1, _rx1) = job(1);
        let (j2, _rx2) = job(2);
        assert_eq!(queue.push(j0), Ok(1));
        assert_eq!(queue.push(j1), Ok(2));
        assert!(matches!(queue.push(j2), Err(PushError::Full)));
        let drained = queue.close();
        assert_eq!(drained.len(), 2, "close hands queued jobs back");
        let (j3, _rx3) = job(3);
        assert!(matches!(queue.push(j3), Err(PushError::Closed)));
        assert_eq!(queue.close().len(), 0, "close is idempotent");
    }

    #[test]
    fn close_wakes_a_blocked_worker() {
        let queue = Arc::new(IntakeQueue::new(config(4, 16)));
        let waiter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || queue.pop_batch())
        };
        // Give the worker a moment to block, then close.
        thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(waiter.join().unwrap().is_none());
    }

    #[test]
    fn worker_drains_jobs_queued_before_close() {
        let queue = Arc::new(IntakeQueue::new(config(8, 16)));
        let (j, _rx) = job(7);
        queue.push(j).unwrap();
        let batch = queue.pop_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert!(queue.close().is_empty());
        assert!(queue.pop_batch().is_none(), "closed and empty");
    }
}
