//! End-to-end tests of the serving daemon over loopback TCP: batched
//! serving bit-identity, chaos idempotency, escalation, explicit sheds
//! and shutdown draining.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread;

use wgft_core::{CampaignConfig, FaultToleranceCampaign};
use wgft_fabric::wire::{decode, encode};
use wgft_fabric::{FramedTcpClient, ManualClock, SystemClock};
use wgft_fixedpoint::BitWidth;
use wgft_nn::models::ModelKind;
use wgft_serve::{
    BatchConfig, ChaosConfig, MonitorConfig, ProtectionTier, ServeClient, ServeConfig, ServeDaemon,
    ServeEngine, ServeRequest, ServeResponse,
};
use wgft_winograd::ConvAlgorithm;

fn tiny_config(seed: u64) -> CampaignConfig {
    CampaignConfig::test_scale(ModelKind::VggSmall, BitWidth::W8)
        .with_images(8)
        .with_seed(seed)
}

fn tenant_map(pairs: &[(&str, ProtectionTier)]) -> BTreeMap<String, ProtectionTier> {
    pairs
        .iter()
        .map(|(tenant, tier)| ((*tenant).to_string(), *tier))
        .collect()
}

#[test]
fn concurrent_batched_serving_matches_the_local_fast_path_exactly() {
    let config = tiny_config(11);
    let algo = ConvAlgorithm::winograd_default();

    // Ground truth: the same deterministic campaign prepared locally.
    let local = FaultToleranceCampaign::prepare(&config).expect("local campaign");
    let mut fast = local.quantized().prepare_fast().expect("fast plans");
    let images: Vec<_> = local
        .eval_set()
        .samples()
        .iter()
        .map(|s| s.image.clone())
        .collect();
    let expected: Vec<usize> = images
        .iter()
        .map(|image| {
            local
                .quantized()
                .classify_fast(image, algo, &mut fast)
                .expect("local classify")
        })
        .collect();

    let engine = ServeEngine::prepare(&config, algo, None).expect("engine");
    let serve_config = ServeConfig {
        tenants: tenant_map(&[("free", ProtectionTier::Fast)]),
        batch: BatchConfig {
            max_batch: 4,
            max_delay_ms: 5,
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let daemon = ServeDaemon::spawn(
        engine,
        serve_config,
        Arc::new(SystemClock::new()),
        "127.0.0.1:0",
    )
    .expect("daemon");
    let addr = daemon.addr().to_string();

    // Four concurrent clients hammer the daemon so batches actually
    // coalesce; every answer must equal the sequential local fast path,
    // whatever the coalescing schedule was.
    let images = Arc::new(images);
    let expected = Arc::new(expected);
    let rounds = 3usize;
    let handles: Vec<_> = (0..4u64)
        .map(|client_idx| {
            let addr = addr.clone();
            let images = Arc::clone(&images);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                let mut client = ServeClient::new(&addr);
                for round in 0..rounds {
                    for (i, image) in images.iter().enumerate() {
                        let request_id = (client_idx << 32) | ((round as u64) << 16) | i as u64;
                        let answer = client
                            .classify(request_id, "free", image.data())
                            .expect("classify");
                        assert_eq!(
                            answer.prediction, expected[i],
                            "batched prediction diverged from the local fast path"
                        );
                        assert_eq!(answer.tier, ProtectionTier::Fast);
                        assert!(!answer.promoted);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let total = (4 * rounds * images.len()) as u64;
    let snap = daemon.snapshot();
    assert_eq!(snap.global.accepted, total);
    assert_eq!(snap.tenants["free"].requests, total);
    assert_eq!(snap.global.batched_images, total);
    assert!(snap.global.batches > 0);
    assert!(
        snap.global.batches <= total,
        "batches cannot exceed requests"
    );
    assert_eq!(snap.global.overloaded, 0);
    assert_eq!(
        snap.escalation_level, 0,
        "fault-free traffic never escalates"
    );
}

#[test]
fn chaos_serving_is_idempotent_and_protection_tiers_report_events() {
    let config = tiny_config(23);
    let algo = ConvAlgorithm::winograd_default();
    let chaos = ChaosConfig { ber: 2e-3, seed: 7 };
    let engine = ServeEngine::prepare(&config, algo, Some(chaos)).expect("engine");
    let serve_config = ServeConfig {
        tenants: tenant_map(&[
            ("free", ProtectionTier::Fast),
            ("gold", ProtectionTier::ChecksumRecompute),
        ]),
        // Escalate on the very first detection so the test sees promotions
        // deterministically.
        monitor: MonitorConfig {
            window_ms: 3_600_000,
            detected_per_window: 1,
            uncorrected_per_window: 1_000_000,
            max_level: 3,
        },
        ..ServeConfig::default()
    };
    let daemon = ServeDaemon::spawn(
        engine,
        serve_config,
        Arc::new(ManualClock::new()) as Arc<dyn wgft_fabric::Clock>,
        "127.0.0.1:0",
    )
    .expect("daemon");
    let addr = daemon.addr().to_string();

    let local = FaultToleranceCampaign::prepare(&config).expect("local campaign");
    let images: Vec<_> = local
        .eval_set()
        .samples()
        .iter()
        .map(|s| s.image.clone())
        .collect();

    let mut client = ServeClient::new(&addr);

    // Idempotency: the same request id replays the identical fault stream,
    // so re-sending must return the identical answer.
    for (i, image) in images.iter().enumerate() {
        let first = client
            .classify(1000 + i as u64, "free", image.data())
            .expect("classify");
        let again = client
            .classify(1000 + i as u64, "free", image.data())
            .expect("re-classify");
        assert_eq!(
            first.prediction, again.prediction,
            "chaos fault streams must be keyed by request id"
        );
    }

    // The protected tier detects the injected faults and reports events.
    for (i, image) in images.iter().enumerate() {
        client
            .classify(2000 + i as u64, "gold", image.data())
            .expect("gold classify");
    }
    let snap = daemon.snapshot();
    let gold = &snap.tenants["gold"];
    assert_eq!(gold.requests, images.len() as u64);
    assert!(
        gold.detected > 0,
        "BER 2e-3 over {} images produced no detections",
        images.len()
    );
    assert!(
        gold.detected >= gold.uncorrected,
        "uncorrected cannot exceed detected"
    );
    assert!(
        snap.escalation_level > 0,
        "detections past the threshold must escalate"
    );
    assert!(snap.global.escalations > 0);

    // After escalation, a fast-tier tenant is served at a promoted tier.
    let promoted = client
        .classify(3000, "free", images[0].data())
        .expect("promoted classify");
    assert!(promoted.promoted, "escalation must promote the fast tier");
    assert!(promoted.tier > ProtectionTier::Fast);
    assert!(daemon.snapshot().tenants["free"].promoted > 0);
}

#[test]
fn profile_tier_serves_the_planned_assignment_and_health_reports_its_hash() {
    let config = tiny_config(53);
    let algo = ConvAlgorithm::winograd_default();

    // Plan a real profile on the identical campaign the daemon will serve.
    let local = FaultToleranceCampaign::prepare(&config).expect("local campaign");
    let profile = wgft_planner::plan_profile(&local, wgft_planner::PlanRequest::new(3e-4, 0.9))
        .expect("plan profile");
    let hash = profile.hash();

    let engine = ServeEngine::prepare_with_profile(&config, algo, None, Some(profile.clone()))
        .expect("engine with profile");
    let serve_config = ServeConfig {
        tenants: tenant_map(&[("planned", ProtectionTier::Profile)]),
        ..ServeConfig::default()
    };
    let daemon = ServeDaemon::spawn(
        engine,
        serve_config,
        Arc::new(SystemClock::new()),
        "127.0.0.1:0",
    )
    .expect("daemon");
    let addr = daemon.addr().to_string();
    let images: Vec<_> = local
        .eval_set()
        .samples()
        .iter()
        .map(|s| s.image.clone())
        .collect();

    let mut client = ServeClient::new(&addr);
    let health = client.health().expect("health");
    assert_eq!(
        health.profile_hash.as_deref(),
        Some(hash.as_str()),
        "health must report the loaded profile's identity hash"
    );

    // The profiled tier serves every image at its own tier, unpromoted, and
    // re-sends are idempotent (no chaos here, but the path is the
    // instrumented one).
    for (i, image) in images.iter().enumerate() {
        let answer = client
            .classify(9000 + i as u64, "planned", image.data())
            .expect("profiled classify");
        assert_eq!(answer.tier, ProtectionTier::Profile);
        assert!(!answer.promoted);
        let again = client
            .classify(9000 + i as u64, "planned", image.data())
            .expect("profiled re-classify");
        assert_eq!(answer.prediction, again.prediction);
    }
    assert_eq!(
        daemon.snapshot().tenants["planned"].requests,
        2 * images.len() as u64
    );

    // A profile that does not fit the served model is refused at prepare
    // time, not at serve time.
    let mut truncated = profile;
    truncated.layers.pop();
    let refused = ServeEngine::prepare_with_profile(&config, algo, None, Some(truncated));
    assert!(
        refused.is_err(),
        "a profile with the wrong layer count must be refused"
    );

    // Without a loaded profile, health reports no hash and the profile tier
    // still serves (blanket fallback).
    let engine = ServeEngine::prepare(&config, algo, None).expect("engine without profile");
    let daemon2 = ServeDaemon::spawn(
        engine,
        ServeConfig {
            tenants: tenant_map(&[("planned", ProtectionTier::Profile)]),
            ..ServeConfig::default()
        },
        Arc::new(SystemClock::new()),
        "127.0.0.1:0",
    )
    .expect("fallback daemon");
    let mut client2 = ServeClient::new(daemon2.addr().to_string());
    assert_eq!(client2.health().expect("health").profile_hash, None);
    let fallback = client2
        .classify(9500, "planned", images[0].data())
        .expect("fallback classify");
    assert_eq!(fallback.tier, ProtectionTier::Profile);
}

#[test]
fn degraded_sheds_are_explicit_and_shutdown_drains_idempotently() {
    let config = tiny_config(37);
    let algo = ConvAlgorithm::winograd_default();
    let chaos = ChaosConfig { ber: 2e-3, seed: 5 };
    let engine = ServeEngine::prepare(&config, algo, Some(chaos)).expect("engine");
    let image_len = engine.image_len();
    let serve_config = ServeConfig {
        tenants: tenant_map(&[
            ("free", ProtectionTier::Fast),
            ("gold", ProtectionTier::ChecksumRecompute),
        ]),
        monitor: MonitorConfig {
            window_ms: 3_600_000,
            detected_per_window: 1,
            uncorrected_per_window: 1_000_000,
            max_level: 3,
        },
        // Watermark zero: once escalated, every fast-tier request sheds.
        batch: BatchConfig {
            soft_watermark: 0,
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let daemon = ServeDaemon::spawn(
        engine,
        serve_config,
        Arc::new(ManualClock::new()) as Arc<dyn wgft_fabric::Clock>,
        "127.0.0.1:0",
    )
    .expect("daemon");
    let addr = daemon.addr().to_string();

    let local = FaultToleranceCampaign::prepare(&config).expect("local campaign");
    let images: Vec<_> = local
        .eval_set()
        .samples()
        .iter()
        .map(|s| s.image.clone())
        .collect();

    // Drive gold traffic until the monitor escalates.
    let mut client = ServeClient::new(&addr);
    for (i, image) in images.iter().enumerate() {
        client
            .classify(4000 + i as u64, "gold", image.data())
            .expect("gold classify");
        if daemon.snapshot().escalation_level > 0 {
            break;
        }
    }
    assert!(daemon.snapshot().escalation_level > 0, "never escalated");

    // A raw client (no retry layer) sees the explicit Degraded shed for
    // fast-tier traffic.
    let mut raw = FramedTcpClient::new(&addr);
    let shed_request = ServeRequest::Classify {
        request_id: 5000,
        tenant: "free".to_string(),
        image: vec![0.0; image_len],
    };
    let response: ServeResponse = decode(
        &raw.call_raw(&encode(&shed_request).expect("encode"))
            .expect("call"),
    )
    .expect("decode");
    match response {
        ServeResponse::Degraded { level, .. } => assert!(level > 0),
        other => panic!("expected Degraded, got {other:?}"),
    }
    assert!(daemon.snapshot().tenants["free"].shed > 0);

    // Gold traffic still flows while free is shed.
    client
        .classify(6000, "gold", images[0].data())
        .expect("gold still served");

    // Shutdown is idempotent; afterwards classifies are refused with an
    // explicit error, never silently dropped.
    client.shutdown().expect("first shutdown");
    assert!(daemon.shutdown_requested());
    client.shutdown().expect("second shutdown (idempotent)");
    let refused = client.classify(7000, "gold", images[0].data());
    assert!(refused.is_err(), "post-shutdown classify must be refused");

    // Wrong-sized images are refused with an explicit error too.
    let mut raw = FramedTcpClient::new(&addr);
    let bad = ServeRequest::Classify {
        request_id: 8000,
        tenant: "gold".to_string(),
        image: vec![0.0; image_len + 1],
    };
    let response: ServeResponse =
        decode(&raw.call_raw(&encode(&bad).expect("encode")).expect("call")).expect("decode");
    assert!(
        matches!(response, ServeResponse::Error { .. }),
        "expected explicit error, got {response:?}"
    );
}
