//! Generation of Winograd F(m, r) transform matrices over configurable
//! interpolation points, in exact rational arithmetic.
//!
//! The minimal filtering algorithm F(m, r) computes `m` outputs of a valid
//! 1-D correlation with an `r`-tap filter using `t = m + r - 1`
//! multiplications:
//!
//! ```text
//! y = Aᵀ [ (G g) ⊙ (Bᵀ d) ]
//! ```
//!
//! The matrices follow from Lagrange interpolation over `t - 1` distinct
//! points plus the point at infinity (the Cook–Toom construction; see
//! Lavin & Gray, and Barabasz et al. "Error Analysis and Improving the
//! Accuracy of Winograd Convolution" / "Efficient Point Selection" for why
//! the *choice* of points governs float accuracy at larger tiles):
//!
//! * `Aᵀ (m×t)`: column `k` evaluates the output polynomial at point `p_k`
//!   (`Aᵀ[i][k] = p_k^i`); the infinity column is `e_{m-1}`.
//! * `G (t×r)`: row `k` evaluates the filter polynomial at `p_k` scaled by
//!   the Lagrange denominator `N_k = Π_{l≠k}(p_k - p_l)`
//!   (`G[k][j] = p_k^j / N_k`); the infinity row is `e_{r-1}`. Following the
//!   standard published form, the denominator of the first point is
//!   sign-normalized (row 0 of `G` and `Bᵀ` flip together, which leaves the
//!   algorithm unchanged).
//! * `Bᵀ (t×t)` is **uniquely determined** by the correctness identity
//!   `Σ_k Aᵀ[i,k]·G[k,j]·Bᵀ[k,l] = [l == i+j]` once `Aᵀ` and `G` are fixed;
//!   it is recovered here by exact rational Gaussian elimination, so the
//!   generated matrices provably implement the algorithm *by construction*
//!   and reproduce hand-published constants bit-for-bit.
//!
//! Fractional points (e.g. ±1/2, which Barabasz et al. show are essential
//! for accurate F(6, 3)) would make `Bᵀ`/`Aᵀ` fractional; integer transforms
//! are restored by scaling each `Bᵀ` row and `Aᵀ` column to clear
//! denominators, folding the compensation into `G` — so the input and output
//! transforms stay exact on the quantized integer datapath for every point
//! set, and only the offline filter transform carries fractions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rational;

pub use rational::Rational;

use rational::lcm;
use std::fmt;

/// Errors from tile-spec validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// Output count and filter taps must both be at least one, with at least
    /// two multiplications total.
    DegenerateShape {
        /// Requested output count `m`.
        m: usize,
        /// Requested filter taps `r`.
        r: usize,
    },
    /// The spec needs exactly `t - 1` finite points.
    WrongPointCount {
        /// Points required (`m + r - 2`).
        expected: usize,
        /// Points supplied.
        found: usize,
    },
    /// Interpolation points must be pairwise distinct.
    DuplicatePoint(Rational),
    /// No canonical point set of the requested size is defined.
    NoCanonicalPoints(usize),
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::DegenerateShape { m, r } => {
                write!(f, "degenerate tile shape F({m}, {r})")
            }
            TileError::WrongPointCount { expected, found } => {
                write!(f, "expected {expected} interpolation points, found {found}")
            }
            TileError::DuplicatePoint(p) => write!(f, "duplicate interpolation point {p}"),
            TileError::NoCanonicalPoints(n) => {
                write!(f, "no canonical point set of size {n} is defined")
            }
        }
    }
}

impl std::error::Error for TileError {}

/// The canonical interpolation-point sequence, in the order the published
/// F(2, 3) and F(4, 3) constants use and extended per Barabasz et al.'s
/// point-selection analysis (small magnitudes first, then reciprocal pairs
/// to balance transform magnitudes at t = 8).
const CANONICAL_POINTS: [(i64, i64); 13] = [
    (0, 1),
    (1, 1),
    (-1, 1),
    (2, 1),
    (-2, 1),
    (1, 2),
    (-1, 2),
    (3, 2),
    (-3, 2),
    (4, 1),
    (-4, 1),
    (1, 4),
    (-1, 4),
];

/// The first `count` canonical interpolation points.
///
/// # Errors
///
/// Returns [`TileError::NoCanonicalPoints`] when `count` exceeds the defined
/// sequence.
pub fn canonical_points(count: usize) -> Result<Vec<Rational>, TileError> {
    if count > CANONICAL_POINTS.len() {
        return Err(TileError::NoCanonicalPoints(count));
    }
    Ok(CANONICAL_POINTS[..count]
        .iter()
        .map(|&(n, d)| Rational::new(n, d))
        .collect())
}

/// A fully specified 1-D tile: output count `m`, filter taps `r`, and the
/// `t - 1` finite interpolation points (the point at infinity is implicit).
///
/// 2-D F(m×m, r×r) engines use the same matrices on rows and columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileSpec {
    m: usize,
    r: usize,
    points: Vec<Rational>,
}

impl TileSpec {
    /// Build a spec from explicit points.
    ///
    /// # Errors
    ///
    /// Fails on a degenerate shape, the wrong number of points, or duplicate
    /// points.
    pub fn new(m: usize, r: usize, points: Vec<Rational>) -> Result<Self, TileError> {
        if m < 1 || r < 1 || m + r < 3 {
            return Err(TileError::DegenerateShape { m, r });
        }
        let expected = m + r - 2;
        if points.len() != expected {
            return Err(TileError::WrongPointCount {
                expected,
                found: points.len(),
            });
        }
        for (i, p) in points.iter().enumerate() {
            if points[..i].contains(p) {
                return Err(TileError::DuplicatePoint(*p));
            }
        }
        Ok(Self { m, r, points })
    }

    /// The spec for F(m, r) over the canonical point set.
    ///
    /// # Errors
    ///
    /// Fails on a degenerate shape or when the canonical sequence is too
    /// short for `t - 1` points.
    pub fn with_canonical_points(m: usize, r: usize) -> Result<Self, TileError> {
        if m < 1 || r < 1 || m + r < 3 {
            return Err(TileError::DegenerateShape { m, r });
        }
        Self::new(m, r, canonical_points(m + r - 2)?)
    }

    /// Output count `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Filter taps `r`.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Multiplication count `t = m + r - 1` (the 1-D input-tile size).
    #[must_use]
    pub fn t(&self) -> usize {
        self.m + self.r - 1
    }

    /// The finite interpolation points.
    #[must_use]
    pub fn points(&self) -> &[Rational] {
        &self.points
    }

    /// Stable identifier of the point set (`"0,1,-1,2,-2"` style), recorded
    /// in sweep manifests so resumed runs can verify they regenerate the
    /// same transforms.
    #[must_use]
    pub fn point_set_id(&self) -> String {
        let parts: Vec<String> = self.points.iter().map(Rational::to_string).collect();
        parts.join(",")
    }

    /// Generate the transform matrices (see the crate docs for the
    /// construction and its guarantees).
    ///
    /// # Panics
    ///
    /// Panics only if the internal consistency checks fail, which would mean
    /// the construction itself is wrong — never on a valid spec.
    #[must_use]
    pub fn generate(&self) -> Transforms {
        let (m, r, t) = (self.m, self.r, self.t());

        // Aᵀ (m×t): powers of each point; infinity column is ±e_{m-1}. The
        // sign (-1)^((t-1)(t-2)/2) matches the published Lavin & Gray
        // constants for both F(2, 3) (flipped) and F(4, 3) (unflipped); the
        // Bᵀ solve below flips its infinity row in lockstep, so either
        // choice yields a correct algorithm — this one is bit-compatible
        // with the hand-coded matrices.
        let mut at = vec![Rational::ZERO; m * t];
        for (k, p) in self.points.iter().enumerate() {
            for (i, row) in at.chunks_exact_mut(t).enumerate() {
                row[k] = p.pow(u32::try_from(i).expect("tiny exponent"));
            }
        }
        at[(m - 1) * t + (t - 1)] = if ((t - 1) * (t - 2) / 2) % 2 == 1 {
            -Rational::ONE
        } else {
            Rational::ONE
        };

        // Lagrange denominators, with the published sign normalization on
        // the first point (flips G row 0 and, through the Bᵀ solve below,
        // Bᵀ row 0 — the algorithm is unchanged).
        let mut denom = Vec::with_capacity(t - 1);
        for (k, p) in self.points.iter().enumerate() {
            let mut n = Rational::ONE;
            for (l, q) in self.points.iter().enumerate() {
                if l != k {
                    n = n * (*p - *q);
                }
            }
            denom.push(n);
        }
        if denom[0] < Rational::ZERO {
            denom[0] = -denom[0];
        }

        // G (t×r): filter-polynomial evaluation over the denominators;
        // infinity row is e_{r-1}.
        let mut g = vec![Rational::ZERO; t * r];
        for (k, p) in self.points.iter().enumerate() {
            for j in 0..r {
                g[k * r + j] = p.pow(u32::try_from(j).expect("tiny exponent")) / denom[k];
            }
        }
        g[(t - 1) * r + (r - 1)] = Rational::ONE;

        let bt = solve_bt(&at, &g, m, r, t);
        let mut transforms = Transforms { m, r, t, bt, g, at };
        transforms.scale_to_integer();
        transforms.assert_identity();
        transforms
    }
}

impl fmt::Display for TileSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F({}, {}) @ [{}]", self.m, self.r, self.point_set_id())
    }
}

/// Recover `Bᵀ` from the correctness identity
/// `Σ_k Aᵀ[i,k]·G[k,j]·Bᵀ[k,l] = [l == i+j]` by exact Gauss–Jordan
/// elimination: one `(m·r) × t` coefficient matrix `M[(i,j),k] =
/// Aᵀ[i,k]·G[k,j]` shared by all `t` right-hand-side columns.
fn solve_bt(at: &[Rational], g: &[Rational], m: usize, r: usize, t: usize) -> Vec<Rational> {
    let rows = m * r;
    let mut mat = vec![Rational::ZERO; rows * t];
    let mut rhs = vec![Rational::ZERO; rows * t];
    for i in 0..m {
        for j in 0..r {
            let row = i * r + j;
            for k in 0..t {
                mat[row * t + k] = at[i * t + k] * g[k * r + j];
            }
            if i + j < t {
                rhs[row * t + (i + j)] = Rational::ONE;
            }
        }
    }

    // Gauss–Jordan with pivot bookkeeping: pivot_row[col] = row that owns
    // the column after elimination.
    let mut pivot_row = vec![usize::MAX; t];
    let mut used = vec![false; rows];
    for col in 0..t {
        let pivot = (0..rows)
            .find(|&row| !used[row] && !mat[row * t + col].is_zero())
            .unwrap_or_else(|| panic!("transform system is rank-deficient at column {col}"));
        used[pivot] = true;
        pivot_row[col] = pivot;
        let p = mat[pivot * t + col];
        for row in 0..rows {
            if row == pivot || mat[row * t + col].is_zero() {
                continue;
            }
            let factor = mat[row * t + col] / p;
            for k in 0..t {
                let delta = factor * mat[pivot * t + k];
                mat[row * t + k] = mat[row * t + k] - delta;
            }
            for l in 0..t {
                let delta = factor * rhs[pivot * t + l];
                rhs[row * t + l] = rhs[row * t + l] - delta;
            }
        }
    }
    // Overdetermined rows must have been eliminated to zero on both sides —
    // the identity is solvable exactly.
    for row in 0..rows {
        if used[row] {
            continue;
        }
        for k in 0..t {
            assert!(
                mat[row * t + k].is_zero() && rhs[row * t + k].is_zero(),
                "transform system is inconsistent at row {row}"
            );
        }
    }

    let mut bt = vec![Rational::ZERO; t * t];
    for k in 0..t {
        let row = pivot_row[k];
        let p = mat[row * t + k];
        for l in 0..t {
            bt[k * t + l] = rhs[row * t + l] / p;
        }
    }
    bt
}

/// Generated transform matrices for one [`TileSpec`], in exact rationals.
///
/// `Bᵀ` and `Aᵀ` are integer-valued by construction (fractional point sets
/// are cleared by row/column scaling with the compensation folded into `G`),
/// so the input and output transforms run exactly on integer datapaths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transforms {
    m: usize,
    r: usize,
    t: usize,
    /// Input transform `Bᵀ`, row-major `t × t`.
    bt: Vec<Rational>,
    /// Filter transform `G`, row-major `t × r`.
    g: Vec<Rational>,
    /// Output transform `Aᵀ`, row-major `m × t`.
    at: Vec<Rational>,
}

impl Transforms {
    /// Clear denominators from `Bᵀ` rows and `Aᵀ` columns, compensating in
    /// `G` (`y_i = Σ_k Aᵀ[i,k]·u_k·v_k` is invariant under scaling `Bᵀ` row
    /// `k` by `s`, `Aᵀ` column `k` by `c`, and `G` row `k` by `1/(s·c)`).
    ///
    /// Integer point sets (the published F(2, 3) and F(4, 3) constants) are
    /// already integral, so this is the identity for them and bit-identity
    /// with the hand-coded matrices is preserved.
    fn scale_to_integer(&mut self) {
        let (m, r, t) = (self.m, self.r, self.t);
        for k in 0..t {
            let mut s = 1i64;
            for l in 0..t {
                s = lcm(s, self.bt[k * t + l].den());
            }
            let mut c = 1i64;
            for i in 0..m {
                c = lcm(c, self.at[i * t + k].den());
            }
            if s != 1 {
                let scale = Rational::integer(s);
                for l in 0..t {
                    self.bt[k * t + l] = self.bt[k * t + l] * scale;
                }
            }
            if c != 1 {
                let scale = Rational::integer(c);
                for i in 0..m {
                    self.at[i * t + k] = self.at[i * t + k] * scale;
                }
            }
            if s != 1 || c != 1 {
                let inv = Rational::new(1, s) * Rational::new(1, c);
                for j in 0..r {
                    self.g[k * r + j] = self.g[k * r + j] * inv;
                }
            }
        }
    }

    /// Verify the defining identity `Σ_k Aᵀ[i,k]·G[k,j]·Bᵀ[k,l] = [l == i+j]`
    /// in exact arithmetic.
    fn assert_identity(&self) {
        let (m, r, t) = (self.m, self.r, self.t);
        for i in 0..m {
            for j in 0..r {
                for l in 0..t {
                    let mut sum = Rational::ZERO;
                    for k in 0..t {
                        sum = sum + self.at[i * t + k] * self.g[k * r + j] * self.bt[k * t + l];
                    }
                    let expect = if l == i + j {
                        Rational::ONE
                    } else {
                        Rational::ZERO
                    };
                    assert!(
                        sum == expect,
                        "identity violated at (i={i}, j={j}, l={l}): {sum}"
                    );
                }
            }
        }
    }

    /// Output count `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Filter taps `r`.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Input-tile size `t`.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// The exact input transform `Bᵀ` (row-major `t × t`).
    #[must_use]
    pub fn bt(&self) -> &[Rational] {
        &self.bt
    }

    /// The exact filter transform `G` (row-major `t × r`).
    #[must_use]
    pub fn g(&self) -> &[Rational] {
        &self.g
    }

    /// The exact output transform `Aᵀ` (row-major `m × t`).
    #[must_use]
    pub fn at(&self) -> &[Rational] {
        &self.at
    }

    /// `Bᵀ` as `i32` coefficients (integral by construction).
    ///
    /// # Panics
    ///
    /// Panics if a coefficient does not fit `i32`, which no supported tile
    /// produces.
    #[must_use]
    pub fn bt_i32(&self) -> Vec<i32> {
        to_i32(&self.bt, "Bᵀ")
    }

    /// `Aᵀ` as `i32` coefficients (integral by construction).
    ///
    /// # Panics
    ///
    /// Panics if a coefficient does not fit `i32`, which no supported tile
    /// produces.
    #[must_use]
    pub fn at_i32(&self) -> Vec<i32> {
        to_i32(&self.at, "Aᵀ")
    }

    /// `G` rounded to `f32` (the offline filter transform).
    #[must_use]
    pub fn g_f32(&self) -> Vec<f32> {
        self.g.iter().map(Rational::to_f32).collect()
    }

    /// Smallest positive integer `D` such that any filter with all taps
    /// divisible by `D` has an exactly integral transformed filter
    /// `G g Gᵀ` — the divisor quantized exactness tests build weights from.
    /// (`D = L²` with `L` the least common multiple of the `G`
    /// denominators: every 2-D coefficient is a product of two `G` entries.)
    #[must_use]
    pub fn weight_divisor(&self) -> i64 {
        let mut l = 1i64;
        for v in &self.g {
            l = lcm(l, v.den());
        }
        l.checked_mul(l).expect("weight divisor overflow")
    }

    /// Worst-case growth of the 2-D input transform `Bᵀ d B` relative to
    /// `max |d|`: the squared maximum absolute row sum of `Bᵀ`. Quantized
    /// engines bound their inputs by `i32::MAX /` this to rule out overflow.
    #[must_use]
    pub fn input_amplification(&self) -> i64 {
        let mut worst = 0i64;
        for row in self.bt.chunks_exact(self.t) {
            let sum: i64 = row
                .iter()
                .map(|v| v.as_integer().expect("Bᵀ is integral").abs())
                .sum();
            worst = worst.max(sum);
        }
        worst.checked_mul(worst).expect("amplification overflow")
    }
}

fn to_i32(values: &[Rational], label: &str) -> Vec<i32> {
    values
        .iter()
        .map(|v| {
            let n = v
                .as_integer()
                .unwrap_or_else(|| panic!("{label} entry {v} is not integral"));
            i32::try_from(n).unwrap_or_else(|_| panic!("{label} entry {v} does not fit i32"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    /// Exact 1-D check on arbitrary rational data: the generated algorithm
    /// must equal the direct correlation coefficient-for-coefficient.
    #[allow(clippy::needless_range_loop)] // indices mirror the math
    fn check_exact_1d(spec: &TileSpec) {
        let tf = spec.generate();
        let (m, r, t) = (tf.m(), tf.r(), tf.t());
        let d: Vec<Rational> = (0..t).map(|i| rat(2 * i as i64 - 3, 7)).collect();
        let g: Vec<Rational> = (0..r).map(|j| rat(3 * j as i64 + 1, 5)).collect();
        // u = G g, v = Bᵀ d, y = Aᵀ (u ⊙ v).
        for i in 0..m {
            let mut y = Rational::ZERO;
            for k in 0..t {
                let mut u = Rational::ZERO;
                for j in 0..r {
                    u = u + tf.g()[k * r + j] * g[j];
                }
                let mut v = Rational::ZERO;
                for l in 0..t {
                    v = v + tf.bt()[k * t + l] * d[l];
                }
                y = y + tf.at()[i * t + k] * u * v;
            }
            let mut direct = Rational::ZERO;
            for j in 0..r {
                direct = direct + d[i + j] * g[j];
            }
            assert!(y == direct, "{spec}: output {i} got {y}, want {direct}");
        }
    }

    #[test]
    fn f2_matches_published_constants() {
        let tf = TileSpec::with_canonical_points(2, 3).unwrap().generate();
        assert_eq!(
            tf.bt_i32(),
            vec![1, 0, -1, 0, 0, 1, 1, 0, 0, -1, 1, 0, 0, 1, 0, -1]
        );
        assert_eq!(tf.at_i32(), vec![1, 1, 1, 0, 0, 1, -1, -1]);
        let g: Vec<Rational> = vec![
            rat(1, 1),
            rat(0, 1),
            rat(0, 1),
            rat(1, 2),
            rat(1, 2),
            rat(1, 2),
            rat(1, 2),
            rat(-1, 2),
            rat(1, 2),
            rat(0, 1),
            rat(0, 1),
            rat(1, 1),
        ];
        assert_eq!(tf.g(), &g[..]);
        assert_eq!(tf.weight_divisor(), 4);
        // Row sums of Bᵀ are at most 2 -> 2-D amplification 4.
        assert_eq!(tf.input_amplification(), 4);
    }

    #[test]
    fn f4_matches_published_constants() {
        let tf = TileSpec::with_canonical_points(4, 3).unwrap().generate();
        #[rustfmt::skip]
        let bt = vec![
            4,  0, -5,  0, 1, 0,
            0, -4, -4,  1, 1, 0,
            0,  4, -4, -1, 1, 0,
            0, -2, -1,  2, 1, 0,
            0,  2, -1, -2, 1, 0,
            0,  4,  0, -5, 0, 1,
        ];
        assert_eq!(tf.bt_i32(), bt);
        #[rustfmt::skip]
        let at = vec![
            1, 1,  1, 1,  1, 0,
            0, 1, -1, 2, -2, 0,
            0, 1,  1, 4,  4, 0,
            0, 1, -1, 8, -8, 1,
        ];
        assert_eq!(tf.at_i32(), at);
        #[rustfmt::skip]
        let g = vec![
            rat(1, 4),  rat(0, 1),   rat(0, 1),
            rat(-1, 6), rat(-1, 6),  rat(-1, 6),
            rat(-1, 6), rat(1, 6),   rat(-1, 6),
            rat(1, 24), rat(1, 12),  rat(1, 6),
            rat(1, 24), rat(-1, 12), rat(1, 6),
            rat(0, 1),  rat(0, 1),   rat(1, 1),
        ];
        assert_eq!(tf.g(), &g[..]);
        assert_eq!(tf.weight_divisor(), 24 * 24);
        // Worst Bᵀ row |4| + |-5| + |1| = 10 -> 100 in 2-D.
        assert_eq!(tf.input_amplification(), 100);
    }

    #[test]
    fn f6_has_integral_transforms_and_exact_algebra() {
        let spec = TileSpec::with_canonical_points(6, 3).unwrap();
        assert_eq!(spec.t(), 8);
        assert_eq!(spec.point_set_id(), "0,1,-1,2,-2,1/2,-1/2");
        let tf = spec.generate();
        // Fractional points ±1/2 are cleared into integers by the scaling.
        assert_eq!(tf.bt_i32().len(), 64);
        assert_eq!(tf.at_i32().len(), 48);
        check_exact_1d(&spec);
    }

    #[test]
    fn exactness_holds_across_shapes_and_point_sets() {
        for (m, r) in [(2, 3), (3, 3), (4, 3), (5, 3), (6, 3), (2, 5), (4, 5)] {
            check_exact_1d(&TileSpec::with_canonical_points(m, r).unwrap());
        }
        // A deliberately non-canonical (and fully fractional) point set.
        let spec = TileSpec::new(2, 3, vec![rat(1, 3), rat(-1, 3), rat(3, 1)]).unwrap();
        check_exact_1d(&spec);
    }

    #[test]
    fn spec_validation() {
        assert_eq!(
            TileSpec::new(2, 3, vec![rat(0, 1), rat(1, 1)]),
            Err(TileError::WrongPointCount {
                expected: 3,
                found: 2
            })
        );
        assert_eq!(
            TileSpec::new(2, 3, vec![rat(0, 1), rat(1, 1), rat(2, 2)]),
            Err(TileError::DuplicatePoint(rat(1, 1)))
        );
        assert_eq!(
            TileSpec::new(1, 1, vec![]),
            Err(TileError::DegenerateShape { m: 1, r: 1 })
        );
        assert!(canonical_points(CANONICAL_POINTS.len() + 1).is_err());
        let err = TileSpec::with_canonical_points(20, 3).unwrap_err();
        assert!(matches!(err, TileError::NoCanonicalPoints(_)));
    }

    #[test]
    fn display_and_errors_format() {
        let spec = TileSpec::with_canonical_points(4, 3).unwrap();
        assert_eq!(spec.to_string(), "F(4, 3) @ [0,1,-1,2,-2]");
        assert_eq!(spec.m(), 4);
        assert_eq!(spec.r(), 3);
        assert_eq!(spec.points().len(), 5);
        assert!(TileError::DuplicatePoint(rat(1, 2))
            .to_string()
            .contains("1/2"));
    }
}
