//! Exact rational arithmetic on `i64` numerator/denominator pairs.
//!
//! The transform-generation pipeline only ever manipulates tiny matrices
//! (t ≤ 8 for the tile sizes any 3x3 engine would run), so values stay far
//! from `i64` range; every operation still computes through `i128` and
//! asserts the reduced result fits, so silent wraparound is impossible.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number: reduced `num / den` with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Exact zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// Exact one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Build `num / den`, reduced to lowest terms with a positive denominator.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "rational denominator must be non-zero");
        Self::from_i128(i128::from(num), i128::from(den))
    }

    fn from_i128(num: i128, den: i128) -> Self {
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        let num = sign * num / g;
        let den = sign * den / g;
        assert!(
            i64::try_from(num).is_ok() && i64::try_from(den).is_ok(),
            "rational overflow: {num}/{den} does not fit i64"
        );
        #[allow(clippy::cast_possible_truncation)]
        Self {
            num: num as i64,
            den: den as i64,
        }
    }

    /// Whole number `n`.
    #[must_use]
    pub fn integer(n: i64) -> Self {
        Self { num: n, den: 1 }
    }

    /// Reduced numerator (sign carrier).
    #[must_use]
    pub fn num(&self) -> i64 {
        self.num
    }

    /// Reduced denominator (always positive).
    #[must_use]
    pub fn den(&self) -> i64 {
        self.den
    }

    /// `Some(n)` iff the value is a whole number.
    #[must_use]
    pub fn as_integer(&self) -> Option<i64> {
        (self.den == 1).then_some(self.num)
    }

    /// True iff the value is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    #[must_use]
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        Self::from_i128(i128::from(self.den), i128::from(self.num))
    }

    /// `self^exp` for a small non-negative exponent.
    #[must_use]
    pub fn pow(&self, exp: u32) -> Self {
        let mut acc = Self::ONE;
        for _ in 0..exp {
            acc = acc * *self;
        }
        acc
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Self {
        Self {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Nearest `f64` (exact when numerator and denominator are small, which
    /// every generated coefficient is).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Nearest `f32`.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::from_i128(
            i128::from(self.num) * i128::from(rhs.den) + i128::from(rhs.num) * i128::from(self.den),
            i128::from(self.den) * i128::from(rhs.den),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::from_i128(
            i128::from(self.num) * i128::from(rhs.num),
            i128::from(self.den) * i128::from(rhs.den),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::from_i128(
            i128::from(self.num) * i128::from(rhs.den),
            i128::from(self.den) * i128::from(rhs.num),
        )
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = i128::from(self.num) * i128::from(other.den);
        let rhs = i128::from(other.num) * i128::from(self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Least common multiple of two positive integers.
#[must_use]
pub(crate) fn lcm(a: i64, b: i64) -> i64 {
    let g = gcd(i128::from(a), i128::from(b)).max(1);
    let l = i128::from(a) / g * i128::from(b);
    i64::try_from(l.abs()).expect("lcm overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces_and_normalizes_sign() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(1, -2), Rational::new(-1, 2));
        assert_eq!(Rational::new(-1, -2), Rational::new(1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert!(Rational::new(1, -2).den() > 0);
    }

    #[test]
    fn field_operations_are_exact() {
        let a = Rational::new(1, 6);
        let b = Rational::new(1, 10);
        assert_eq!(a + b, Rational::new(4, 15));
        assert_eq!(a - b, Rational::new(1, 15));
        assert_eq!(a * b, Rational::new(1, 60));
        assert_eq!(a / b, Rational::new(5, 3));
        assert_eq!(-a, Rational::new(-1, 6));
        assert_eq!(a.recip(), Rational::integer(6));
        assert_eq!(Rational::new(-2, 3).pow(3), Rational::new(-8, 27));
        assert_eq!(Rational::new(-2, 3).pow(0), Rational::ONE);
    }

    #[test]
    fn ordering_and_queries() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(Rational::new(6, 3).as_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).as_integer(), None);
        assert!(Rational::ZERO.is_zero());
        assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(Rational::new(1, 2).to_f32(), 0.5);
        assert_eq!(Rational::new(-1, 4).to_f64(), -0.25);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn lcm_of_denominators() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 9), 9);
    }
}
