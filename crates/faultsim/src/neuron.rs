//! Neuron-level fault injection — the coarse baseline of Figure 1.
//!
//! Frameworks such as TensorFI and PyTorchFI flip bits in *neuron values*
//! (layer outputs) rather than in the primitive operations that computed
//! them. Because standard convolution and winograd convolution produce the
//! same neurons, such a platform reports identical resilience for both — the
//! paper's Figure 1 demonstrates exactly this blind spot. This module
//! reimplements that style of injector so the comparison can be reproduced.

use crate::{flip_bit_within, BitErrorRate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wgft_fixedpoint::BitWidth;

/// Injects bit flips directly into quantized neuron (activation) values.
///
/// To make the neuron-level platform comparable with the operation-level
/// platform, each neuron absorbs the fault opportunities of the operations
/// that produced it: the per-neuron fault probability is
/// `1 - (1 - BER)^(W * ops_per_neuron)` where `ops_per_neuron` is derived
/// from the *standard* convolution operation count — a generic framework has
/// no visibility into the conv algorithm actually used, which is precisely
/// why it cannot differentiate the two.
#[derive(Debug, Clone)]
pub struct NeuronLevelInjector {
    ber: BitErrorRate,
    width: BitWidth,
    rng: SmallRng,
}

impl NeuronLevelInjector {
    /// Create an injector with a deterministic seed.
    #[must_use]
    pub fn new(ber: BitErrorRate, width: BitWidth, seed: u64) -> Self {
        Self {
            ber,
            width,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The configured bit error rate.
    #[must_use]
    pub fn ber(&self) -> BitErrorRate {
        self.ber
    }

    /// Corrupt a layer's quantized output values in place.
    ///
    /// `ops_per_neuron` is the number of primitive operations a standard
    /// convolution spends per output value of this layer (used to scale the
    /// per-neuron fault probability, see the type-level documentation).
    /// Returns the number of values that were corrupted.
    pub fn corrupt_layer(&mut self, values: &mut [i32], ops_per_neuron: u64) -> u64 {
        if self.ber.is_zero() || values.is_empty() {
            return 0;
        }
        let bits_per_neuron = u64::from(self.width.bits()) * ops_per_neuron.max(1);
        // Probability that a given neuron sees at least one flip.
        let p = per_neuron_probability(self.ber, bits_per_neuron);
        if p <= 0.0 {
            return 0;
        }
        let w = self.width.bits();
        let mut corrupted = 0;
        if p >= 1e-2 {
            // Dense regime: visit every neuron.
            for v in values.iter_mut() {
                if self.rng.gen::<f64>() < p {
                    let bit = self.rng.gen_range(0..w);
                    *v = flip_bit_within(i64::from(*v), bit, w) as i32;
                    corrupted += 1;
                }
            }
        } else {
            // Sparse regime: jump between corrupted neurons geometrically.
            let mut idx = sample_gap(p, &mut self.rng);
            while (idx as usize) < values.len() {
                let i = idx as usize;
                let bit = self.rng.gen_range(0..w);
                values[i] = flip_bit_within(i64::from(values[i]), bit, w) as i32;
                corrupted += 1;
                idx += sample_gap(p, &mut self.rng) + 1;
            }
        }
        corrupted
    }
}

fn per_neuron_probability(ber: BitErrorRate, bits: u64) -> f64 {
    let log_no_flip = bits as f64 * (-ber.rate()).ln_1p();
    -log_no_flip.exp_m1()
}

fn sample_gap<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ber_corrupts_nothing() {
        let mut inj = NeuronLevelInjector::new(BitErrorRate::ZERO, BitWidth::W8, 1);
        let mut values = vec![5i32; 1000];
        assert_eq!(inj.corrupt_layer(&mut values, 100), 0);
        assert!(values.iter().all(|&v| v == 5));
    }

    #[test]
    fn high_ber_corrupts_most_neurons() {
        let mut inj = NeuronLevelInjector::new(BitErrorRate::new(0.5), BitWidth::W8, 2);
        let mut values = vec![1i32; 1000];
        let corrupted = inj.corrupt_layer(&mut values, 10);
        assert!(
            corrupted > 900,
            "expected nearly all corrupted, got {corrupted}"
        );
    }

    #[test]
    fn corruption_count_scales_with_ops_per_neuron() {
        let run = |ops| {
            let mut inj = NeuronLevelInjector::new(BitErrorRate::new(1e-6), BitWidth::W16, 3);
            let mut values = vec![7i32; 200_000];
            inj.corrupt_layer(&mut values, ops)
        };
        let few = run(1);
        let many = run(1000);
        assert!(
            many > few * 10,
            "ops_per_neuron=1000 ({many}) should corrupt far more than 1 ({few})"
        );
    }

    #[test]
    fn corrupted_values_stay_within_storage_width() {
        let mut inj = NeuronLevelInjector::new(BitErrorRate::new(0.9), BitWidth::W8, 4);
        let mut values = vec![100i32; 500];
        inj.corrupt_layer(&mut values, 5);
        for &v in &values {
            assert!(
                (-128..=255).contains(&v),
                "value {v} escaped the modelled word width"
            );
        }
    }

    #[test]
    fn sparse_and_dense_regimes_agree_statistically() {
        // Choose parameters so p sits near the regime boundary and compare
        // the corruption fraction against the analytic expectation.
        let expect = |ber: f64, ops: u64, n: usize, seed: u64| {
            let mut inj = NeuronLevelInjector::new(BitErrorRate::new(ber), BitWidth::W8, seed);
            let mut values = vec![3i32; n];
            inj.corrupt_layer(&mut values, ops) as f64 / n as f64
        };
        let p_dense = expect(2e-3, 1, 100_000, 5); // p ~ 1.6e-2 -> dense path
        let p_sparse = expect(2e-4, 1, 100_000, 6); // p ~ 1.6e-3 -> sparse path
        assert!((p_dense - 0.016).abs() < 0.004, "dense fraction {p_dense}");
        assert!(
            (p_sparse - 0.0016).abs() < 0.0008,
            "sparse fraction {p_sparse}"
        );
    }

    #[test]
    fn accessor_returns_configured_ber() {
        let inj = NeuronLevelInjector::new(BitErrorRate::new(1e-5), BitWidth::W16, 0);
        assert_eq!(inj.ber(), BitErrorRate::new(1e-5));
    }
}
