//! Operation and fault counters gathered during instrumented execution.

use crate::OpType;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Multiplication / addition counts for one scope (a layer or a whole network).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCount {
    /// Number of multiplications.
    pub mul: u64,
    /// Number of additions.
    pub add: u64,
}

impl OpCount {
    /// Total number of primitive operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.mul + self.add
    }

    /// Count for a specific operation type.
    #[must_use]
    pub fn of(&self, op: OpType) -> u64 {
        match op {
            OpType::Mul => self.mul,
            OpType::Add => self.add,
        }
    }

    /// Weighted hardware cost of the counted operations.
    ///
    /// A multiplier is substantially more expensive than an adder; the paper's
    /// TMR overhead accounting therefore weights the two differently. The
    /// default weights used by `wgft-core` are 1.0 per multiplication and 0.25
    /// per addition.
    #[must_use]
    pub fn weighted_cost(&self, mul_weight: f64, add_weight: f64) -> f64 {
        self.mul as f64 * mul_weight + self.add as f64 * add_weight
    }
}

impl Add for OpCount {
    type Output = OpCount;

    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            mul: self.mul + rhs.mul,
            add: self.add + rhs.add,
        }
    }
}

impl AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        self.mul += rhs.mul;
        self.add += rhs.add;
    }
}

/// Per-layer operation and fault statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerOpCount {
    /// Executed operations.
    pub executed: OpCount,
    /// Faults that were injected (struck an unprotected operation).
    pub faults_injected: OpCount,
    /// Faults that struck a protected operation and were therefore corrected.
    pub faults_masked: OpCount,
}

/// Counters indexed by layer, recorded by an [`crate::Arithmetic`] backend.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    layers: Vec<LayerOpCount>,
}

impl OpCounters {
    /// Empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-layer statistics, indexed by layer id.
    #[must_use]
    pub fn layers(&self) -> &[LayerOpCount] {
        &self.layers
    }

    /// Statistics for one layer (zero if the layer never executed).
    #[must_use]
    pub fn layer(&self, layer: usize) -> LayerOpCount {
        self.layers.get(layer).copied().unwrap_or_default()
    }

    /// Total executed operations across all layers.
    #[must_use]
    pub fn total(&self) -> OpCount {
        self.layers
            .iter()
            .fold(OpCount::default(), |acc, l| acc + l.executed)
    }

    /// Total faults injected across all layers.
    #[must_use]
    pub fn total_faults_injected(&self) -> OpCount {
        self.layers
            .iter()
            .fold(OpCount::default(), |acc, l| acc + l.faults_injected)
    }

    /// Total faults masked by protection across all layers.
    #[must_use]
    pub fn total_faults_masked(&self) -> OpCount {
        self.layers
            .iter()
            .fold(OpCount::default(), |acc, l| acc + l.faults_masked)
    }

    /// Record one executed operation.
    pub fn record_op(&mut self, layer: usize, op: OpType) {
        let entry = self.entry(layer);
        match op {
            OpType::Mul => entry.executed.mul += 1,
            OpType::Add => entry.executed.add += 1,
        }
    }

    /// Record a fault that was injected into an unprotected operation.
    pub fn record_fault_injected(&mut self, layer: usize, op: OpType) {
        let entry = self.entry(layer);
        match op {
            OpType::Mul => entry.faults_injected.mul += 1,
            OpType::Add => entry.faults_injected.add += 1,
        }
    }

    /// Record a fault that struck a protected operation and was corrected.
    pub fn record_fault_masked(&mut self, layer: usize, op: OpType) {
        let entry = self.entry(layer);
        match op {
            OpType::Mul => entry.faults_masked.mul += 1,
            OpType::Add => entry.faults_masked.add += 1,
        }
    }

    /// Merge another counter set into this one (used to accumulate statistics
    /// over a whole evaluation set).
    pub fn merge(&mut self, other: &OpCounters) {
        if other.layers.len() > self.layers.len() {
            self.layers
                .resize(other.layers.len(), LayerOpCount::default());
        }
        for (dst, src) in self.layers.iter_mut().zip(other.layers.iter()) {
            dst.executed += src.executed;
            dst.faults_injected += src.faults_injected;
            dst.faults_masked += src.faults_masked;
        }
    }

    /// Reset all counters to zero, keeping the allocation.
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            *layer = LayerOpCount::default();
        }
    }

    fn entry(&mut self, layer: usize) -> &mut LayerOpCount {
        if layer >= self.layers.len() {
            self.layers.resize(layer + 1, LayerOpCount::default());
        }
        &mut self.layers[layer]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcount_arithmetic() {
        let a = OpCount { mul: 3, add: 5 };
        let b = OpCount { mul: 1, add: 2 };
        assert_eq!((a + b).total(), 11);
        let mut c = a;
        c += b;
        assert_eq!(c, OpCount { mul: 4, add: 7 });
        assert_eq!(a.of(OpType::Mul), 3);
        assert_eq!(a.of(OpType::Add), 5);
    }

    #[test]
    fn weighted_cost_reflects_mul_dominance() {
        let c = OpCount { mul: 10, add: 40 };
        assert!((c.weighted_cost(1.0, 0.25) - 20.0).abs() < 1e-12);
        assert!((c.weighted_cost(1.0, 1.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn counters_grow_on_demand_and_total() {
        let mut c = OpCounters::new();
        c.record_op(2, OpType::Mul);
        c.record_op(0, OpType::Add);
        c.record_op(2, OpType::Add);
        assert_eq!(c.layers().len(), 3);
        assert_eq!(c.layer(2).executed, OpCount { mul: 1, add: 1 });
        assert_eq!(c.layer(5).executed, OpCount::default());
        assert_eq!(c.total(), OpCount { mul: 1, add: 2 });
    }

    #[test]
    fn fault_records_are_separate_from_executed() {
        let mut c = OpCounters::new();
        c.record_fault_injected(1, OpType::Mul);
        c.record_fault_masked(1, OpType::Add);
        assert_eq!(c.total_faults_injected(), OpCount { mul: 1, add: 0 });
        assert_eq!(c.total_faults_masked(), OpCount { mul: 0, add: 1 });
        assert_eq!(c.total(), OpCount::default());
    }

    #[test]
    fn merge_and_reset() {
        let mut a = OpCounters::new();
        a.record_op(0, OpType::Mul);
        let mut b = OpCounters::new();
        b.record_op(1, OpType::Add);
        b.record_fault_injected(1, OpType::Add);
        a.merge(&b);
        assert_eq!(a.total(), OpCount { mul: 1, add: 1 });
        assert_eq!(a.total_faults_injected().add, 1);
        a.reset();
        assert_eq!(a.total(), OpCount::default());
        assert_eq!(a.layers().len(), 2);
    }
}
