//! Protection plans: which operations are shielded from soft errors.
//!
//! The paper exploits three protection granularities:
//!
//! * whole layers kept fault-free (the layer-wise vulnerability analysis of
//!   Figure 3),
//! * whole operation types kept fault-free (the multiplication/addition
//!   sensitivity analysis of Figure 4),
//! * a *fraction* of a layer's operations of a given type protected by TMR
//!   (the fine-grained TMR of Figure 5 — "protecting only a fraction of the
//!   operations in the layer rather than the entire layer", selected randomly
//!   so the scheme maps onto any computing engine).
//!
//! A [`ProtectionPlan`] expresses all three with per-(layer, op-type)
//! protection fractions plus global op-type masks.

use crate::{FaultSimError, OpCount};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The primitive operation types the paper distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpType {
    /// A multiplication.
    Mul,
    /// An addition.
    Add,
}

impl OpType {
    /// Both operation types.
    #[must_use]
    pub const fn all() -> [OpType; 2] {
        [OpType::Mul, OpType::Add]
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpType::Mul => write!(f, "mul"),
            OpType::Add => write!(f, "add"),
        }
    }
}

/// Protection fractions for one layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct LayerProtection {
    mul_fraction: f64,
    add_fraction: f64,
}

/// Describes which operations are protected (and therefore immune to the
/// injected soft errors).
///
/// Protection composes: an operation is protected if its layer is fault-free,
/// **or** its op-type is globally fault-free, **or** it falls inside the
/// TMR-protected fraction of its (layer, op-type) bucket.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProtectionPlan {
    fault_free_layers: Vec<usize>,
    mul_fault_free: bool,
    add_fault_free: bool,
    layer_fractions: BTreeMap<usize, LayerProtection>,
}

impl ProtectionPlan {
    /// A plan with no protection at all.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Mark an entire layer as fault-free.
    #[must_use]
    pub fn with_fault_free_layer(mut self, layer: usize) -> Self {
        if !self.fault_free_layers.contains(&layer) {
            self.fault_free_layers.push(layer);
        }
        self
    }

    /// Mark an entire operation type as fault-free across the whole network.
    #[must_use]
    pub fn with_fault_free_op_type(mut self, op: OpType) -> Self {
        match op {
            OpType::Mul => self.mul_fault_free = true,
            OpType::Add => self.add_fault_free = true,
        }
        self
    }

    /// Protect a fraction of a layer's operations of one type (fine-grained TMR).
    ///
    /// # Errors
    ///
    /// Returns [`FaultSimError::InvalidProtectionFraction`] if `fraction` is
    /// not in `[0, 1]`.
    pub fn protect_fraction(
        &mut self,
        layer: usize,
        op: OpType,
        fraction: f64,
    ) -> Result<(), FaultSimError> {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(FaultSimError::InvalidProtectionFraction { fraction });
        }
        let entry = self.layer_fractions.entry(layer).or_default();
        match op {
            OpType::Mul => entry.mul_fraction = fraction,
            OpType::Add => entry.add_fraction = fraction,
        }
        Ok(())
    }

    /// Builder-style variant of [`ProtectionPlan::protect_fraction`].
    ///
    /// # Errors
    ///
    /// Same as [`ProtectionPlan::protect_fraction`].
    pub fn with_fraction(
        mut self,
        layer: usize,
        op: OpType,
        fraction: f64,
    ) -> Result<Self, FaultSimError> {
        self.protect_fraction(layer, op, fraction)?;
        Ok(self)
    }

    /// Layers marked entirely fault-free.
    #[must_use]
    pub fn fault_free_layers(&self) -> &[usize] {
        &self.fault_free_layers
    }

    /// Whether an op type is globally fault-free.
    #[must_use]
    pub fn is_op_type_fault_free(&self, op: OpType) -> bool {
        match op {
            OpType::Mul => self.mul_fault_free,
            OpType::Add => self.add_fault_free,
        }
    }

    /// The protection probability for an operation of type `op` in `layer`.
    ///
    /// A fault striking such an operation is corrected with this probability
    /// (the protected subset is chosen uniformly at random, as in the paper).
    #[must_use]
    pub fn protection_probability(&self, layer: usize, op: OpType) -> f64 {
        if self.fault_free_layers.contains(&layer) || self.is_op_type_fault_free(op) {
            return 1.0;
        }
        match self.layer_fractions.get(&layer) {
            Some(entry) => match op {
                OpType::Mul => entry.mul_fraction,
                OpType::Add => entry.add_fraction,
            },
            None => 0.0,
        }
    }

    /// The protected fraction configured by fine-grained TMR for a
    /// (layer, op-type) bucket — *excluding* fault-free layer / op-type masks.
    #[must_use]
    pub fn tmr_fraction(&self, layer: usize, op: OpType) -> f64 {
        match self.layer_fractions.get(&layer) {
            Some(entry) => match op {
                OpType::Mul => entry.mul_fraction,
                OpType::Add => entry.add_fraction,
            },
            None => 0.0,
        }
    }

    /// Whether the plan protects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fault_free_layers.is_empty()
            && !self.mul_fault_free
            && !self.add_fault_free
            && self
                .layer_fractions
                .values()
                .all(|e| e.mul_fraction == 0.0 && e.add_fraction == 0.0)
    }

    /// Number of operations this plan triplicates for a network whose
    /// per-layer operation counts are `layer_ops`, reported as the *expected*
    /// protected count per layer/op-type (TMR fractions only — fault-free
    /// masks are analysis devices, not hardware redundancy).
    #[must_use]
    pub fn protected_ops(&self, layer_ops: &[OpCount]) -> OpCount {
        let mut out = OpCount::default();
        for (layer, ops) in layer_ops.iter().enumerate() {
            let mul_frac = self.tmr_fraction(layer, OpType::Mul);
            let add_frac = self.tmr_fraction(layer, OpType::Add);
            out.mul += (ops.mul as f64 * mul_frac).round() as u64;
            out.add += (ops.add as f64 * add_frac).round() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_type_display_and_all() {
        assert_eq!(OpType::Mul.to_string(), "mul");
        assert_eq!(OpType::Add.to_string(), "add");
        assert_eq!(OpType::all(), [OpType::Mul, OpType::Add]);
    }

    #[test]
    fn empty_plan_protects_nothing() {
        let plan = ProtectionPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.protection_probability(3, OpType::Mul), 0.0);
        assert_eq!(plan.protection_probability(0, OpType::Add), 0.0);
    }

    #[test]
    fn fault_free_layer_protects_both_op_types() {
        let plan = ProtectionPlan::none().with_fault_free_layer(2);
        assert_eq!(plan.protection_probability(2, OpType::Mul), 1.0);
        assert_eq!(plan.protection_probability(2, OpType::Add), 1.0);
        assert_eq!(plan.protection_probability(1, OpType::Mul), 0.0);
        assert_eq!(plan.fault_free_layers(), &[2]);
        assert!(!plan.is_empty());
    }

    #[test]
    fn fault_free_op_type_is_global() {
        let plan = ProtectionPlan::none().with_fault_free_op_type(OpType::Mul);
        assert!(plan.is_op_type_fault_free(OpType::Mul));
        assert!(!plan.is_op_type_fault_free(OpType::Add));
        assert_eq!(plan.protection_probability(7, OpType::Mul), 1.0);
        assert_eq!(plan.protection_probability(7, OpType::Add), 0.0);
    }

    #[test]
    fn fraction_validation_and_lookup() {
        let mut plan = ProtectionPlan::none();
        assert!(plan.protect_fraction(1, OpType::Mul, 1.5).is_err());
        assert!(plan.protect_fraction(1, OpType::Mul, -0.1).is_err());
        plan.protect_fraction(1, OpType::Mul, 0.4).unwrap();
        plan.protect_fraction(1, OpType::Add, 0.1).unwrap();
        assert_eq!(plan.protection_probability(1, OpType::Mul), 0.4);
        assert_eq!(plan.protection_probability(1, OpType::Add), 0.1);
        assert_eq!(plan.tmr_fraction(1, OpType::Mul), 0.4);
        assert_eq!(plan.tmr_fraction(0, OpType::Mul), 0.0);
    }

    #[test]
    fn builder_variant_composes() {
        let plan = ProtectionPlan::none()
            .with_fraction(0, OpType::Mul, 0.5)
            .unwrap()
            .with_fault_free_layer(3);
        assert_eq!(plan.protection_probability(0, OpType::Mul), 0.5);
        assert_eq!(plan.protection_probability(3, OpType::Add), 1.0);
    }

    #[test]
    fn duplicate_fault_free_layer_is_ignored() {
        let plan = ProtectionPlan::none()
            .with_fault_free_layer(1)
            .with_fault_free_layer(1);
        assert_eq!(plan.fault_free_layers(), &[1]);
    }

    /// The sweep journal and the ABFT trade-off campaign both serialize
    /// protection plans; the round trip must be lossless for every
    /// granularity the plan expresses, and canonical (re-serializing the
    /// round-tripped plan yields the same bytes — what journal content
    /// hashes rely on).
    #[test]
    fn protection_plan_serde_round_trips_losslessly() {
        let mut plan = ProtectionPlan::none()
            .with_fault_free_layer(3)
            .with_fault_free_layer(0)
            .with_fault_free_op_type(OpType::Add);
        plan.protect_fraction(2, OpType::Mul, 0.25).unwrap();
        plan.protect_fraction(5, OpType::Add, 1.0).unwrap();
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: ProtectionPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
        assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
        // Behaviour survives the round trip, not just equality.
        assert_eq!(back.protection_probability(2, OpType::Mul), 0.25);
        assert_eq!(back.protection_probability(7, OpType::Add), 1.0);
        assert_eq!(back.fault_free_layers(), &[3, 0]);
    }

    #[test]
    fn empty_plan_serde_round_trip_stays_empty() {
        let plan = ProtectionPlan::none();
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: ProtectionPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
        assert!(back.is_empty());
    }

    /// Boundary fractions (exactly 0.0 and 1.0) are valid, survive the round
    /// trip exactly, and a fraction of 0.0 still leaves the plan "empty".
    #[test]
    fn boundary_fractions_round_trip_exactly() {
        let mut plan = ProtectionPlan::none();
        plan.protect_fraction(1, OpType::Mul, 0.0).unwrap();
        plan.protect_fraction(1, OpType::Add, 1.0).unwrap();
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: ProtectionPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(
            back.tmr_fraction(1, OpType::Mul).to_bits(),
            0.0f64.to_bits()
        );
        assert_eq!(
            back.tmr_fraction(1, OpType::Add).to_bits(),
            1.0f64.to_bits()
        );
        let mut zero_only = ProtectionPlan::none();
        zero_only.protect_fraction(4, OpType::Mul, 0.0).unwrap();
        let back: ProtectionPlan =
            serde_json::from_str(&serde_json::to_string(&zero_only).unwrap()).unwrap();
        assert!(
            back.is_empty(),
            "an all-zero-fraction plan protects nothing"
        );
    }

    /// Layer ids with no entry in the plan — e.g. a plan serialized for a
    /// deeper network and applied to a shallower one — degrade to
    /// "unprotected", never panic.
    #[test]
    fn unknown_layer_ids_are_unprotected_after_round_trip() {
        let plan = ProtectionPlan::none()
            .with_fraction(1000, OpType::Mul, 0.5)
            .unwrap();
        let back: ProtectionPlan =
            serde_json::from_str(&serde_json::to_string(&plan).unwrap()).unwrap();
        assert_eq!(back.protection_probability(1000, OpType::Mul), 0.5);
        assert_eq!(back.protection_probability(0, OpType::Mul), 0.0);
        assert_eq!(back.protection_probability(usize::MAX, OpType::Add), 0.0);
        assert_eq!(back.tmr_fraction(999, OpType::Mul), 0.0);
    }

    #[test]
    fn protected_ops_counts_expected_tmr_coverage() {
        let mut plan = ProtectionPlan::none();
        plan.protect_fraction(0, OpType::Mul, 0.5).unwrap();
        plan.protect_fraction(1, OpType::Add, 1.0).unwrap();
        let layer_ops = vec![OpCount { mul: 100, add: 200 }, OpCount { mul: 10, add: 40 }];
        let protected = plan.protected_ops(&layer_ops);
        assert_eq!(protected.mul, 50);
        assert_eq!(protected.add, 40);
    }
}
