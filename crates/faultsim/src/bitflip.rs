//! Bit-flip primitives and the configurable fault model.

use serde::{Deserialize, Serialize};

/// Which datapath location a soft error corrupts.
///
/// The paper's platform injects errors into the results of primitive
/// operations and motivates the asymmetry between multiplication and addition
/// by the amplification a corrupted multiplication *operand* experiences.
/// [`FaultModel::OperandMulResultAdd`] (the default used throughout the
/// reproduction) captures exactly that; the other variants exist for ablation
/// studies (`cargo bench -p wgft-bench --bench ablation_studies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FaultModel {
    /// Multiplications: flip a bit of one input operand (amplified by the
    /// other operand). Additions: flip a bit of the result.
    #[default]
    OperandMulResultAdd,
    /// Flip a bit of the result word for both multiplications and additions.
    ResultOnly,
    /// Flip a bit of one input operand for both multiplications and additions.
    OperandOnly,
}

impl FaultModel {
    /// All supported fault models (used by the ablation bench).
    #[must_use]
    pub const fn all() -> [FaultModel; 3] {
        [
            FaultModel::OperandMulResultAdd,
            FaultModel::ResultOnly,
            FaultModel::OperandOnly,
        ]
    }

    /// Human-readable label.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            FaultModel::OperandMulResultAdd => "operand-mul/result-add",
            FaultModel::ResultOnly => "result-only",
            FaultModel::OperandOnly => "operand-only",
        }
    }
}

/// Flip bit `bit` of the two's-complement representation of `value` truncated
/// to `width_bits`, then sign-extend back to `i64`.
///
/// The storage words of a quantized network are 8 or 16 bits wide; a soft
/// error in such a word can only touch one of those bits, so the flip is
/// performed inside the truncated representation. Accumulator values wider
/// than the storage word are flipped in their low `width_bits` bits, which
/// bounds the injected magnitude the same way a fault in the storage register
/// would.
///
/// # Panics
///
/// Panics (debug assertion) if `bit >= width_bits` or `width_bits > 63`.
#[must_use]
pub fn flip_bit_within(value: i64, bit: u32, width_bits: u32) -> i64 {
    debug_assert!(bit < width_bits, "bit index must lie inside the word");
    debug_assert!(width_bits <= 63, "width must fit in i64");
    let mask: u64 = (1u64 << width_bits) - 1;
    let truncated = (value as u64) & mask;
    let sign_bit = 1u64 << (width_bits - 1);
    let sign_extended = if truncated & sign_bit != 0 {
        (truncated | !mask) as i64
    } else {
        truncated as i64
    };
    if sign_extended == value {
        // The value fits in the storage word: flip inside the word and
        // sign-extend the result, exactly as the hardware register would hold it.
        let flipped = truncated ^ (1u64 << bit);
        if flipped & sign_bit != 0 {
            (flipped | !mask) as i64
        } else {
            flipped as i64
        }
    } else {
        // Wide accumulator value: flip the selected low bit in place, which
        // bounds the injected magnitude to 2^bit just like a register fault.
        value ^ (1i64 << bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_single_bits_of_small_positive_value() {
        assert_eq!(flip_bit_within(0b0000_0101, 1, 8), 0b0000_0111);
        assert_eq!(flip_bit_within(0b0000_0101, 0, 8), 0b0000_0100);
    }

    #[test]
    fn flip_sign_bit_makes_value_negative() {
        // 8-bit word: flipping bit 7 of 1 gives 0x81 = -127.
        assert_eq!(flip_bit_within(1, 7, 8), -127);
        // 16-bit word: flipping bit 15 of 0 gives -32768.
        assert_eq!(flip_bit_within(0, 15, 16), -32768);
    }

    #[test]
    fn flip_is_an_involution_for_storage_words() {
        // Values representable in the 16-bit storage word: flipping the same
        // bit twice must restore the original value.
        for &v in &[0i64, 1, -1, 127, -128, 300, -20_000, 32_767, -32_768] {
            for bit in 0..16 {
                let once = flip_bit_within(v, bit, 16);
                let twice = flip_bit_within(once, bit, 16);
                assert_eq!(twice, v, "double flip must restore value {v} bit {bit}");
            }
        }
    }

    #[test]
    fn flip_on_negative_values_respects_twos_complement() {
        // -1 in 8 bits is 0xFF; flipping bit 0 gives 0xFE = -2.
        assert_eq!(flip_bit_within(-1, 0, 8), -2);
        // Flipping bit 7 of -1 (0xFF) gives 0x7F = 127.
        assert_eq!(flip_bit_within(-1, 7, 8), 127);
    }

    #[test]
    fn flip_bounded_magnitude_for_wide_accumulators() {
        // A wide positive accumulator: flipping a low bit changes it by at most 2^bit.
        let acc = 1 << 30;
        let flipped = flip_bit_within(acc, 3, 16);
        assert_eq!((flipped - acc).abs(), 8);
    }

    #[test]
    fn fault_model_labels_and_all() {
        assert_eq!(FaultModel::default(), FaultModel::OperandMulResultAdd);
        assert_eq!(FaultModel::all().len(), 3);
        for m in FaultModel::all() {
            assert!(!m.label().is_empty());
        }
    }
}
