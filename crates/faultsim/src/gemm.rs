//! Fault hooks for GEMM output buffers: attack the *fast planned* winograd
//! path, not just the scalar instrumented kernel.
//!
//! The instrumented datapath ([`crate::FaultyArithmetic`]) corrupts every
//! primitive operation, but the planned scatter–GEMM–gather engine runs on
//! plain `f32` kernels that never touch an [`crate::Arithmetic`] backend.
//! [`GemmFaultInjector`] models soft errors striking a matrix engine's
//! output latches instead: each element of a freshly produced GEMM product
//! flips a uniformly chosen bit of its 32-bit word with probability
//! `1 - (1 - BER)^32`, using the same geometric gap sampling as the
//! operation-level injector so the common no-fault path is a single counter
//! decrement per element.

use crate::BitErrorRate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bit-flip injector for GEMM output buffers (`f32` words or `i64` wide
/// accumulators).
#[derive(Debug, Clone)]
pub struct GemmFaultInjector {
    ber: BitErrorRate,
    bits: u32,
    probability: f64,
    rng: SmallRng,
    elements_until_fault: u64,
    faults: u64,
}

impl GemmFaultInjector {
    /// An injector for 32-bit output words with a deterministic seed.
    #[must_use]
    pub fn new(ber: BitErrorRate, seed: u64) -> Self {
        Self::new_for_bits(ber, 32, seed)
    }

    /// An injector whose per-element strike probability is
    /// `1 - (1 - BER)^bits` — pick `bits` to match the width of the output
    /// latch being attacked (32 for `f32` GEMMs via [`Self::corrupt`], 64
    /// for the quantized engine's `i64` accumulators via
    /// [`Self::corrupt_i64`]).
    #[must_use]
    pub fn new_for_bits(ber: BitErrorRate, bits: u32, seed: u64) -> Self {
        let bits = bits.clamp(1, 64);
        let probability = ber.fault_probability(bits);
        let mut rng = SmallRng::seed_from_u64(seed);
        let elements_until_fault = sample_gap(probability, &mut rng);
        Self {
            ber,
            bits,
            probability,
            rng,
            elements_until_fault,
            faults: 0,
        }
    }

    /// The configured bit error rate.
    #[must_use]
    pub fn ber(&self) -> BitErrorRate {
        self.ber
    }

    /// Number of elements corrupted so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults
    }

    /// Corrupt an `f32` GEMM output buffer in place; returns how many
    /// elements were struck. Deterministic given the construction seed and
    /// the sequence of buffer lengths — independent of the values themselves.
    pub fn corrupt(&mut self, out: &mut [f32]) -> u64 {
        let bits = self.bits.min(32);
        self.walk(out.len(), |index, rng| {
            let bit = rng.gen_range(0..bits);
            out[index] = f32::from_bits(out[index].to_bits() ^ (1 << bit));
        })
    }

    /// Corrupt an `i64` accumulator buffer in place — the output-latch
    /// fault model applied to the quantized engine's wide accumulators
    /// (construct with [`Self::new_for_bits`]`(ber, 64, seed)` so the
    /// per-element probability covers the full word). Same determinism
    /// contract as [`Self::corrupt`].
    pub fn corrupt_i64(&mut self, out: &mut [i64]) -> u64 {
        let bits = self.bits;
        self.walk(out.len(), |index, rng| {
            let bit = rng.gen_range(0..bits);
            out[index] ^= 1i64 << bit;
        })
    }

    /// Walk `len` elements, striking according to the geometric gap stream
    /// and applying `flip` at each struck index.
    fn walk(&mut self, len: usize, mut flip: impl FnMut(usize, &mut SmallRng)) -> u64 {
        if self.probability <= 0.0 {
            return 0;
        }
        let mut struck = 0u64;
        let mut index = 0usize;
        loop {
            let remaining = (len - index) as u64;
            if self.elements_until_fault > remaining {
                self.elements_until_fault -= remaining;
                break;
            }
            index += (self.elements_until_fault - 1) as usize;
            flip(index, &mut self.rng);
            struck += 1;
            self.faults += 1;
            index += 1;
            self.elements_until_fault = sample_gap(self.probability, &mut self.rng);
            if index >= len {
                break;
            }
        }
        struck
    }
}

/// Elements until the next fault (inclusive), geometric with parameter `p`.
fn sample_gap<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let gap = (u.ln() / (1.0 - p).ln()).floor();
    if gap >= u64::MAX as f64 - 1.0 {
        u64::MAX
    } else {
        gap as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ber_never_corrupts() {
        let mut injector = GemmFaultInjector::new(BitErrorRate::ZERO, 1);
        let mut buf = vec![1.5f32; 4096];
        assert_eq!(injector.corrupt(&mut buf), 0);
        assert!(buf.iter().all(|&v| v == 1.5));
        assert_eq!(injector.faults_injected(), 0);
        assert_eq!(injector.ber(), BitErrorRate::ZERO);
    }

    #[test]
    fn certain_ber_corrupts_every_element() {
        let mut injector = GemmFaultInjector::new(BitErrorRate::new(1.0), 2);
        let mut buf = vec![1.0f32; 64];
        assert_eq!(injector.corrupt(&mut buf), 64);
        assert!(
            buf.iter().all(|&v| v != 1.0),
            "a flipped bit always changes the word"
        );
    }

    #[test]
    fn fault_count_matches_expectation_statistically() {
        let ber = BitErrorRate::new(1e-4);
        let p = ber.fault_probability(32);
        let mut injector = GemmFaultInjector::new(ber, 3);
        let n = 400_000usize;
        let mut buf = vec![0.25f32; 4096];
        let mut total = 0u64;
        for _ in 0..n / buf.len() {
            total += injector.corrupt(&mut buf);
            buf.fill(0.25);
        }
        let expected = p * n as f64;
        let sigma = expected.sqrt();
        assert!(
            (total as f64 - expected).abs() < 5.0 * sigma + 5.0,
            "expected ~{expected} faults, got {total}"
        );
    }

    #[test]
    fn deterministic_given_seed_and_independent_of_values() {
        let run = |seed: u64, fill: f32| {
            let mut injector = GemmFaultInjector::new(BitErrorRate::new(5e-3), seed);
            let mut struck_at = Vec::new();
            for round in 0..8 {
                let mut buf = vec![fill; 257];
                injector.corrupt(&mut buf);
                for (i, &v) in buf.iter().enumerate() {
                    if v != fill {
                        struck_at.push((round, i));
                    }
                }
            }
            struck_at
        };
        assert_eq!(run(7, 1.0), run(7, 1.0));
        assert_eq!(
            run(7, 1.0),
            run(7, -3.25),
            "positions depend only on the seed"
        );
        assert_ne!(run(7, 1.0), run(8, 1.0));
    }

    #[test]
    fn i64_corruption_flips_exactly_one_bit_per_strike() {
        let mut injector = GemmFaultInjector::new_for_bits(BitErrorRate::new(1.0), 64, 5);
        let mut buf = vec![0i64; 128];
        assert_eq!(injector.corrupt_i64(&mut buf), 128);
        assert!(
            buf.iter().all(|&v| v.count_ones() == 1),
            "each struck word differs from 0 in exactly one bit"
        );
        // With 64-bit words and enough strikes, the high half must be hit
        // too — the attack covers the full accumulator, not an i32 subset.
        assert!(
            buf.iter().any(|&v| (v as u64) >> 32 != 0),
            "some strikes must land in the high 32 bits"
        );
    }

    #[test]
    fn i64_corruption_is_deterministic_and_value_independent() {
        let run = |seed: u64, fill: i64| {
            let mut injector = GemmFaultInjector::new_for_bits(BitErrorRate::new(5e-3), 64, seed);
            let mut struck_at = Vec::new();
            for round in 0..8 {
                let mut buf = vec![fill; 257];
                injector.corrupt_i64(&mut buf);
                for (i, &v) in buf.iter().enumerate() {
                    if v != fill {
                        struck_at.push((round, i, v ^ fill));
                    }
                }
            }
            struck_at
        };
        assert_eq!(run(7, 42), run(7, 42));
        assert_eq!(
            run(7, 42)
                .iter()
                .map(|&(r, i, _)| (r, i))
                .collect::<Vec<_>>(),
            run(7, -1)
                .iter()
                .map(|&(r, i, _)| (r, i))
                .collect::<Vec<_>>(),
            "strike positions depend only on the seed"
        );
        assert_ne!(run(7, 42), run(9, 42));
    }

    #[test]
    fn zero_ber_never_corrupts_i64() {
        let mut injector = GemmFaultInjector::new_for_bits(BitErrorRate::ZERO, 64, 1);
        let mut buf = vec![7i64; 512];
        assert_eq!(injector.corrupt_i64(&mut buf), 0);
        assert!(buf.iter().all(|&v| v == 7));
    }

    #[test]
    fn gap_sampler_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sample_gap(0.0, &mut rng), u64::MAX);
        assert_eq!(sample_gap(1.0, &mut rng), 1);
        assert!(sample_gap(0.5, &mut rng) >= 1);
    }
}
