//! Error type for fault-injection configuration.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring fault injection.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSimError {
    /// A bit error rate outside `[0, 1]` or non-finite was supplied.
    InvalidBitErrorRate {
        /// The offending value.
        value: f64,
    },
    /// A protection fraction outside `[0, 1]` was supplied.
    InvalidProtectionFraction {
        /// The offending value.
        fraction: f64,
    },
}

impl fmt::Display for FaultSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSimError::InvalidBitErrorRate { value } => {
                write!(f, "bit error rate {value} is not a probability in [0, 1]")
            }
            FaultSimError::InvalidProtectionFraction { fraction } => {
                write!(f, "protection fraction {fraction} is not in [0, 1]")
            }
        }
    }
}

impl Error for FaultSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_value() {
        let e = FaultSimError::InvalidBitErrorRate { value: 2.0 };
        assert!(e.to_string().contains('2'));
        let e = FaultSimError::InvalidProtectionFraction { fraction: -0.5 };
        assert!(e.to_string().contains("-0.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<FaultSimError>();
    }
}
