//! The instrumented scalar datapath: exact and faulty arithmetic backends.

use crate::{flip_bit_within, BitErrorRate, FaultModel, OpCounters, OpType, ProtectionPlan};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wgft_fixedpoint::BitWidth;

/// The primitive-operation datapath that every convolution and fully-connected
/// kernel in the workspace executes through.
///
/// Implementations count operations per layer so that the same execution can
/// drive the paper's operation-count analysis (Figure 3) and the TMR overhead
/// accounting (Figure 5).
///
/// Values are raw quantized words (activations, weights, winograd-transformed
/// tiles) carried in `i64`; products and running sums stay in the `i64`
/// accumulator domain until the layer requantizes them.
pub trait Arithmetic {
    /// Inform the backend which layer subsequent operations belong to.
    fn begin_layer(&mut self, layer: usize);

    /// Multiply two raw words, returning the wide product.
    fn mul(&mut self, a: i64, b: i64) -> i64;

    /// Add two accumulator values.
    fn add(&mut self, a: i64, b: i64) -> i64;

    /// Counters recorded so far.
    fn counters(&self) -> &OpCounters;

    /// Reset all counters (e.g. between evaluation images).
    fn reset_counters(&mut self);
}

/// Golden, fault-free arithmetic with operation counting.
///
/// # Example
///
/// ```
/// use wgft_faultsim::{Arithmetic, ExactArithmetic};
///
/// let mut arith = ExactArithmetic::new();
/// arith.begin_layer(0);
/// assert_eq!(arith.mul(3, -4), -12);
/// assert_eq!(arith.add(10, -12), -2);
/// assert_eq!(arith.counters().total().mul, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactArithmetic {
    counters: OpCounters,
    current_layer: usize,
}

impl ExactArithmetic {
    /// A fresh exact backend.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Arithmetic for ExactArithmetic {
    fn begin_layer(&mut self, layer: usize) {
        self.current_layer = layer;
    }

    fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.counters.record_op(self.current_layer, OpType::Mul);
        a * b
    }

    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counters.record_op(self.current_layer, OpType::Add);
        a + b
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }
}

/// Configuration of the operation-level fault injector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-bit soft error probability.
    pub ber: BitErrorRate,
    /// Storage width of the quantized words (determines both the
    /// per-operation fault probability and the bit positions a flip can hit).
    pub width: BitWidth,
    /// Where the flip lands (see [`FaultModel`]).
    pub model: FaultModel,
    /// Which operations are protected.
    pub protection: ProtectionPlan,
}

impl FaultConfig {
    /// A configuration with the default (paper) fault model and no protection.
    #[must_use]
    pub fn new(ber: BitErrorRate, width: BitWidth) -> Self {
        Self {
            ber,
            width,
            model: FaultModel::default(),
            protection: ProtectionPlan::none(),
        }
    }

    /// Replace the fault model.
    #[must_use]
    pub fn with_model(mut self, model: FaultModel) -> Self {
        self.model = model;
        self
    }

    /// Replace the protection plan.
    #[must_use]
    pub fn with_protection(mut self, protection: ProtectionPlan) -> Self {
        self.protection = protection;
        self
    }

    /// Per-operation fault probability implied by the BER and word width.
    #[must_use]
    pub fn fault_probability(&self) -> f64 {
        self.ber.fault_probability(self.width.bits())
    }
}

/// Operation-level fault injection backend.
///
/// The per-operation fault probability `p` is usually tiny (the paper sweeps
/// bit error rates down to 1e-11), so the injector samples the *gap* between
/// consecutive faults from a geometric distribution and only touches the RNG
/// when a fault actually strikes. The fast path per operation is a single
/// counter decrement plus the operation-count bookkeeping, which keeps
/// whole-network fault-injection campaigns tractable.
#[derive(Debug, Clone)]
pub struct FaultyArithmetic {
    config: FaultConfig,
    rng: SmallRng,
    counters: OpCounters,
    current_layer: usize,
    // Cached per-layer protection probabilities.
    mul_protection: f64,
    add_protection: f64,
    fault_probability: f64,
    ops_until_fault: u64,
}

impl FaultyArithmetic {
    /// Create a faulty backend with a deterministic seed.
    #[must_use]
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        let fault_probability = config.fault_probability();
        let mut rng = SmallRng::seed_from_u64(seed);
        let ops_until_fault = sample_geometric_gap(fault_probability, &mut rng);
        let mut this = Self {
            config,
            rng,
            counters: OpCounters::new(),
            current_layer: 0,
            mul_protection: 0.0,
            add_protection: 0.0,
            fault_probability,
            ops_until_fault,
        };
        this.refresh_protection();
        this
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of faults injected so far (unprotected strikes only).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.counters.total_faults_injected().total()
    }

    /// Number of faults that struck protected operations and were corrected.
    #[must_use]
    pub fn faults_masked(&self) -> u64 {
        self.counters.total_faults_masked().total()
    }

    fn refresh_protection(&mut self) {
        self.mul_protection = self
            .config
            .protection
            .protection_probability(self.current_layer, OpType::Mul);
        self.add_protection = self
            .config
            .protection
            .protection_probability(self.current_layer, OpType::Add);
    }

    /// Decrement the fault countdown; returns true when a fault strikes this op.
    #[inline]
    fn fault_strikes(&mut self) -> bool {
        if self.ops_until_fault == u64::MAX {
            return false;
        }
        self.ops_until_fault -= 1;
        if self.ops_until_fault == 0 {
            self.ops_until_fault = sample_geometric_gap(self.fault_probability, &mut self.rng);
            true
        } else {
            false
        }
    }

    fn random_bit(&mut self, width_bits: u32) -> u32 {
        self.rng.gen_range(0..width_bits)
    }

    fn fault_is_masked(&mut self, op: OpType) -> bool {
        let protection = match op {
            OpType::Mul => self.mul_protection,
            OpType::Add => self.add_protection,
        };
        if protection <= 0.0 {
            false
        } else if protection >= 1.0 {
            true
        } else {
            self.rng.gen::<f64>() < protection
        }
    }
}

impl Arithmetic for FaultyArithmetic {
    fn begin_layer(&mut self, layer: usize) {
        self.current_layer = layer;
        self.refresh_protection();
    }

    fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.counters.record_op(self.current_layer, OpType::Mul);
        if !self.fault_strikes() {
            return a * b;
        }
        if self.fault_is_masked(OpType::Mul) {
            self.counters
                .record_fault_masked(self.current_layer, OpType::Mul);
            return a * b;
        }
        self.counters
            .record_fault_injected(self.current_layer, OpType::Mul);
        let w = self.config.width.bits();
        match self.config.model {
            FaultModel::OperandMulResultAdd | FaultModel::OperandOnly => {
                // Either input register of the multiplier may be struck.
                let bit = self.random_bit(w);
                if self.rng.gen::<bool>() {
                    flip_bit_within(a, bit, w) * b
                } else {
                    a * flip_bit_within(b, bit, w)
                }
            }
            FaultModel::ResultOnly => {
                // A multiplier produces a double-width product; a latch fault
                // can hit any of those bits.
                let bit = self.random_bit(2 * w);
                flip_bit_within(a * b, bit, 2 * w)
            }
        }
    }

    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counters.record_op(self.current_layer, OpType::Add);
        if !self.fault_strikes() {
            return a + b;
        }
        if self.fault_is_masked(OpType::Add) {
            self.counters
                .record_fault_masked(self.current_layer, OpType::Add);
            return a + b;
        }
        self.counters
            .record_fault_injected(self.current_layer, OpType::Add);
        let w = self.config.width.bits();
        match self.config.model {
            FaultModel::OperandMulResultAdd | FaultModel::ResultOnly => {
                let bit = self.random_bit(w);
                flip_bit_within(a + b, bit, w)
            }
            FaultModel::OperandOnly => {
                let bit = self.random_bit(w);
                flip_bit_within(a, bit, w) + b
            }
        }
    }

    fn counters(&self) -> &OpCounters {
        &self.counters
    }

    fn reset_counters(&mut self) {
        self.counters.reset();
    }
}

/// Sample the number of operations until the next fault (inclusive) for a
/// per-operation fault probability `p`.
fn sample_geometric_gap<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let gap = (u.ln() / (1.0 - p).ln()).floor();
    if gap >= u64::MAX as f64 - 1.0 {
        u64::MAX
    } else {
        gap as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_arithmetic_counts_and_computes() {
        let mut a = ExactArithmetic::new();
        a.begin_layer(1);
        assert_eq!(a.mul(6, 7), 42);
        assert_eq!(a.add(40, 2), 42);
        a.begin_layer(2);
        assert_eq!(a.mul(-3, 3), -9);
        assert_eq!(a.counters().layer(1).executed.mul, 1);
        assert_eq!(a.counters().layer(2).executed.mul, 1);
        assert_eq!(a.counters().total().add, 1);
        a.reset_counters();
        assert_eq!(a.counters().total().total(), 0);
    }

    #[test]
    fn zero_ber_is_exact() {
        let config = FaultConfig::new(BitErrorRate::ZERO, BitWidth::W8);
        let mut f = FaultyArithmetic::new(config, 1);
        let mut exact = ExactArithmetic::new();
        for i in -50i64..50 {
            assert_eq!(f.mul(i, 3), exact.mul(i, 3));
            assert_eq!(f.add(i, -7), exact.add(i, -7));
        }
        assert_eq!(f.faults_injected(), 0);
        assert_eq!(f.faults_masked(), 0);
    }

    #[test]
    fn certain_fault_rate_corrupts_every_operation_possible() {
        // BER of 1.0 means every op faults.
        let config = FaultConfig::new(BitErrorRate::new(1.0), BitWidth::W8);
        let mut f = FaultyArithmetic::new(config, 3);
        f.begin_layer(0);
        for i in 0..100i64 {
            let _ = f.mul(i % 100, 3);
        }
        assert_eq!(f.faults_injected(), 100);
    }

    #[test]
    fn fault_count_matches_expectation_statistically() {
        // p(op fault) = 1-(1-ber)^8; choose ber so p ~= 1e-3 and run 1e6 ops.
        let ber = BitErrorRate::new(1.25e-4);
        let config = FaultConfig::new(ber, BitWidth::W8);
        let p = config.fault_probability();
        let mut f = FaultyArithmetic::new(config, 7);
        f.begin_layer(0);
        let n = 1_000_000u64;
        for i in 0..n {
            let _ = f.mul((i % 100) as i64, 3);
        }
        let expected = p * n as f64;
        let got = f.faults_injected() as f64;
        // Poisson-ish fluctuation: allow 5 sigma.
        let sigma = expected.sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma + 5.0,
            "expected ~{expected} faults, got {got}"
        );
    }

    #[test]
    fn protected_layer_masks_all_faults() {
        let protection = ProtectionPlan::none().with_fault_free_layer(0);
        let config =
            FaultConfig::new(BitErrorRate::new(1.0), BitWidth::W8).with_protection(protection);
        let mut f = FaultyArithmetic::new(config, 11);
        f.begin_layer(0);
        for i in 0..100i64 {
            assert_eq!(
                f.mul(i % 50, 2),
                (i % 50) * 2,
                "protected op must stay correct"
            );
        }
        assert_eq!(f.faults_injected(), 0);
        assert_eq!(f.faults_masked(), 100);
        // Layer 1 is unprotected: faults flow again.
        f.begin_layer(1);
        for i in 0..100i64 {
            let _ = f.mul(i % 50, 2);
        }
        assert_eq!(f.faults_injected(), 100);
    }

    #[test]
    fn fault_free_op_type_masks_only_that_type() {
        let protection = ProtectionPlan::none().with_fault_free_op_type(OpType::Mul);
        let config =
            FaultConfig::new(BitErrorRate::new(1.0), BitWidth::W8).with_protection(protection);
        let mut f = FaultyArithmetic::new(config, 5);
        f.begin_layer(0);
        for i in 0..50i64 {
            assert_eq!(f.mul(i, 2), i * 2);
            let _ = f.add(i, 1);
        }
        assert_eq!(f.counters().total_faults_masked().mul, 50);
        assert_eq!(f.counters().total_faults_injected().add, 50);
    }

    #[test]
    fn fractional_protection_masks_roughly_that_fraction() {
        let protection = ProtectionPlan::none()
            .with_fraction(0, OpType::Mul, 0.7)
            .unwrap();
        let config =
            FaultConfig::new(BitErrorRate::new(1.0), BitWidth::W8).with_protection(protection);
        let mut f = FaultyArithmetic::new(config, 13);
        f.begin_layer(0);
        let n = 10_000;
        for i in 0..n {
            let _ = f.mul(i % 100, 3);
        }
        let masked = f.faults_masked() as f64;
        let ratio = masked / n as f64;
        assert!(
            (ratio - 0.7).abs() < 0.03,
            "masked ratio {ratio} should be close to 0.7"
        );
    }

    #[test]
    fn corrupted_mul_differs_from_exact_product() {
        let config = FaultConfig::new(BitErrorRate::new(1.0), BitWidth::W8);
        let mut f = FaultyArithmetic::new(config, 17);
        f.begin_layer(0);
        let mut corrupted = 0;
        for i in 1..200i64 {
            let a = i % 100 + 1;
            if f.mul(a, 3) != a * 3 {
                corrupted += 1;
            }
        }
        // With operand flips and a non-zero operand, virtually every fault
        // changes the product (a flipped bit always changes the operand).
        assert!(corrupted > 150, "corrupted {corrupted} of 199 products");
    }

    #[test]
    fn deterministic_given_seed() {
        let config = FaultConfig::new(BitErrorRate::new(1e-2), BitWidth::W16);
        let run = |seed| {
            let mut f = FaultyArithmetic::new(config.clone(), seed);
            f.begin_layer(0);
            let mut acc = 0i64;
            for i in 0..10_000i64 {
                let p = f.mul(i % 31, 7);
                acc = f.add(acc, p);
            }
            (acc, f.faults_injected())
        };
        assert_eq!(run(42), run(42));
        // Different seeds virtually always see different fault patterns.
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn geometric_gap_sampler_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sample_geometric_gap(0.0, &mut rng), u64::MAX);
        assert_eq!(sample_geometric_gap(1.0, &mut rng), 1);
        let g = sample_geometric_gap(0.5, &mut rng);
        assert!(g >= 1);
    }

    #[test]
    fn geometric_gap_mean_matches_inverse_probability() {
        let mut rng = SmallRng::seed_from_u64(99);
        let p = 0.01;
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| sample_geometric_gap(p, &mut rng) as f64)
            .sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / p).abs() < 5.0,
            "mean gap {mean} should be near {}",
            1.0 / p
        );
    }

    #[test]
    fn fault_config_accessors() {
        let c = FaultConfig::new(BitErrorRate::new(1e-3), BitWidth::W16)
            .with_model(FaultModel::ResultOnly);
        assert_eq!(c.model, FaultModel::ResultOnly);
        assert!(c.fault_probability() > 0.0);
        let f = FaultyArithmetic::new(c.clone(), 0);
        assert_eq!(f.config(), &c);
    }
}
